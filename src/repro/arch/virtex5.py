"""Virtex-5-like reference constants.

The paper quotes its run-time numbers for "a Xilinx Virtex-5 FPGA": 176 ms
full reconfiguration and ≤50 µs PConf evaluation.  This module centralizes
the corresponding architecture spec (K=6 LUTs, large CLBs) and the derived
cost model so every experiment prices device time identically.
"""

from __future__ import annotations

from repro.arch.spec import ArchSpec
from repro.core.costmodel import Virtex5Model

__all__ = ["VIRTEX5_LIKE", "VIRTEX5_MODEL"]

#: Architecture spec used when experiments need a concrete device: 6-input
#: LUTs in 8-BLE clusters — the Virtex-5 CLB provides 8 six-input LUTs
#: (two SLICEs of four), which this mirrors at the abstraction level of the
#: academic model.
VIRTEX5_LIKE = ArchSpec(
    k=6,
    n_ble=8,
    n_cluster_inputs=26,
    channel_width=48,
    fc_in=0.5,
    fc_out=0.25,
    io_capacity=8,
    switch_fanout=3,
)

#: Timing model calibrated to the paper's quoted device numbers.
VIRTEX5_MODEL = Virtex5Model()
