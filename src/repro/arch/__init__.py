"""Island-style FPGA architecture model.

The device model follows the academic VPR template the paper's TPaR tools
target: a square grid of CLBs (each with N basic logic elements of one
K-LUT + one flip-flop), an I/O ring, horizontal/vertical routing channels
of W bidirectional single-length wires, Wilton-style switch boxes, and
connection boxes with configurable pin flexibility.

Every configuration cell of the device — LUT masks, BLE pin selectors,
flip-flop controls and routing switches — has an explicit bitstream
address (:mod:`repro.arch.config_cells`), organized in per-column frames
like real devices, so partial reconfiguration works at frame granularity.
"""

from repro.arch.spec import ArchSpec
from repro.arch.device import DeviceGrid, TileType
from repro.arch.routing_graph import RRGraph, RRNodeType, build_rr_graph
from repro.arch.config_cells import ConfigLayout, build_config_layout
from repro.arch.virtex5 import VIRTEX5_LIKE

__all__ = [
    "ArchSpec",
    "DeviceGrid",
    "TileType",
    "RRGraph",
    "RRNodeType",
    "build_rr_graph",
    "ConfigLayout",
    "build_config_layout",
    "VIRTEX5_LIKE",
]
