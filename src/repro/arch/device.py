"""Device grid: tile layout and sizing.

A device is a ``(size+2) × (size+2)`` grid: CLBs occupy the inner
``size × size`` square, I/O tiles line the perimeter, and the four corners
are empty.  :func:`DeviceGrid.for_design` sizes the smallest square device
fitting a given CLB and pad demand (with a utilization margin so placement
has slack — fully-packed devices are unroutable in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
import math

from repro.arch.spec import ArchSpec
from repro.errors import ArchitectureError

__all__ = ["TileType", "DeviceGrid"]


class TileType(IntEnum):
    EMPTY = 0
    CLB = 1
    IO = 2


@dataclass(frozen=True)
class DeviceGrid:
    """A sized device: architecture + grid dimensions."""

    spec: ArchSpec
    size: int
    """CLB columns/rows (grid is (size+2)² including the I/O ring)."""

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ArchitectureError("device must have at least one CLB")

    # -- geometry ------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.size + 2

    @property
    def height(self) -> int:
        return self.size + 2

    def tile_type(self, x: int, y: int) -> TileType:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ArchitectureError(f"tile ({x},{y}) outside device")
        on_x_edge = x in (0, self.width - 1)
        on_y_edge = y in (0, self.height - 1)
        if on_x_edge and on_y_edge:
            return TileType.EMPTY
        if on_x_edge or on_y_edge:
            return TileType.IO
        return TileType.CLB

    def clb_positions(self) -> list[tuple[int, int]]:
        return [
            (x, y)
            for x in range(1, self.width - 1)
            for y in range(1, self.height - 1)
        ]

    def io_positions(self) -> list[tuple[int, int]]:
        out = []
        for x in range(self.width):
            for y in range(self.height):
                if self.tile_type(x, y) == TileType.IO:
                    out.append((x, y))
        return out

    # -- capacities -------------------------------------------------------------

    @property
    def n_clbs(self) -> int:
        return self.size * self.size

    @property
    def n_io_tiles(self) -> int:
        return 4 * self.size

    @property
    def n_pads(self) -> int:
        return self.n_io_tiles * self.spec.io_capacity

    @property
    def lut_capacity(self) -> int:
        return self.n_clbs * self.spec.n_ble

    # -- sizing ------------------------------------------------------------------

    @staticmethod
    def for_design(
        spec: ArchSpec,
        n_clbs: int,
        n_pads: int,
        *,
        utilization: float = 0.7,
    ) -> "DeviceGrid":
        """Smallest square device fitting the demand at ≤ ``utilization``.

        >>> g = DeviceGrid.for_design(ArchSpec(), n_clbs=10, n_pads=8)
        >>> g.n_clbs >= 10 and g.n_pads >= 8
        True
        """
        if n_clbs < 1:
            n_clbs = 1
        if not 0.0 < utilization <= 1.0:
            raise ArchitectureError("utilization must be in (0, 1]")
        size = max(
            1,
            math.ceil(math.sqrt(n_clbs / utilization)),
            math.ceil(n_pads / (4 * spec.io_capacity)),
        )
        grid = DeviceGrid(spec, size)
        while grid.n_clbs * utilization < n_clbs or grid.n_pads < n_pads:
            size += 1
            grid = DeviceGrid(spec, size)
        return grid

    def __repr__(self) -> str:
        return (
            f"DeviceGrid({self.size}x{self.size} CLBs, "
            f"{self.n_pads} pads, W={self.spec.channel_width})"
        )
