"""Architecture specification.

All device parameters in one immutable dataclass, validated on
construction.  The defaults describe the K=6, N=8 cluster architecture the
VTR flow ships (and the paper maps to), with a routing fabric small enough
to route our benchmark set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError

__all__ = ["ArchSpec"]


@dataclass(frozen=True)
class ArchSpec:
    """Island-style FPGA parameters.

    Attributes
    ----------
    k:
        LUT input count.
    n_ble:
        BLEs (K-LUT + FF pairs) per CLB.
    n_cluster_inputs:
        Distinct external input signals a CLB may consume (the cluster
        input bandwidth; VPR convention ≈ K/2 × N + 2).
    channel_width:
        Bidirectional wires per routing channel (W).
    fc_in / fc_out:
        Connection-box flexibility: fraction of adjacent channel tracks an
        input pin listens to / an output pin can drive.
    io_capacity:
        Pads per I/O tile on the perimeter.
    switch_fanout:
        Switch-box connections per wire end (3 = Wilton).
    """

    k: int = 6
    n_ble: int = 8
    n_cluster_inputs: int = 26
    channel_width: int = 48
    fc_in: float = 0.5
    fc_out: float = 0.25
    io_capacity: int = 8
    switch_fanout: int = 3

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ArchitectureError(f"k must be >= 2, got {self.k}")
        if self.n_ble < 1:
            raise ArchitectureError("n_ble must be >= 1")
        if self.n_cluster_inputs < self.k:
            raise ArchitectureError(
                "cluster must accept at least one LUT's worth of inputs"
            )
        if self.channel_width < 2:
            raise ArchitectureError("channel_width must be >= 2")
        if not 0.0 < self.fc_in <= 1.0 or not 0.0 < self.fc_out <= 1.0:
            raise ArchitectureError("fc_in/fc_out must be in (0, 1]")
        if self.io_capacity < 1:
            raise ArchitectureError("io_capacity must be >= 1")
        if self.switch_fanout < 1:
            raise ArchitectureError("switch_fanout must be >= 1")

    @property
    def lut_bits(self) -> int:
        """Configuration bits of one LUT mask."""
        return 1 << self.k

    @property
    def ble_select_bits(self) -> int:
        """Bits selecting each BLE input pin from the cluster crossbar.

        Encoding: 0 = unconnected (the all-zero erased state), 1..I = cluster
        input pins, I+1..I+N = BLE feedback outputs.
        """
        max_code = self.n_cluster_inputs + self.n_ble + 1
        return max(1, max_code.bit_length())

    @property
    def ble_config_bits(self) -> int:
        """All config bits of one BLE: LUT mask + pin selects + FF controls.

        FF controls: 1 bit output-select (LUT vs FF), 1 bit initial state.
        """
        return self.lut_bits + self.k * self.ble_select_bits + 2

    def clb_config_bits(self) -> int:
        return self.n_ble * self.ble_config_bits
