"""Routing-resource graph (RRG).

The RRG is the classic VPR representation: every physical routing object —
logic-block output pin (OPIN), channel wire (CHANX/CHANY), input pin
(IPIN) and the per-block SOURCE/SINK aggregation nodes — is a graph node,
and every programmable switch is a directed edge.  The router works purely
on this graph; the bitstream generator assigns one configuration bit per
programmable edge.

Storage is flat numpy arrays plus CSR adjacency (per the HPC guides: dense
integer indexing, no per-node Python objects), with dictionaries only at
the lookup boundary (pin/wire coordinates → node id).

Wire model: bidirectional single-length segments.  A wire at (x, y, t) in a
horizontal channel connects through switch boxes to the collinear wire in
the next tile and to crossing vertical wires via a Wilton-style permutation
(three connections per wire end, ``spec.switch_fanout``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.arch.device import DeviceGrid, TileType
from repro.errors import ArchitectureError

__all__ = ["RRNodeType", "RRGraph", "build_rr_graph"]


class RRNodeType(IntEnum):
    SOURCE = 0
    OPIN = 1
    CHANX = 2
    CHANY = 3
    IPIN = 4
    SINK = 5


#: Hoisted plain-int values: ``RRNodeType.X`` goes through
#: ``enum.__getattr__`` on every access, which is measurable when node
#: kinds are tested millions of times in routing inner loops.
_CHANX = int(RRNodeType.CHANX)
_CHANY = int(RRNodeType.CHANY)


@dataclass
class RRGraph:
    """The routing-resource graph with CSR adjacency in both directions."""

    grid: DeviceGrid
    ntype: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    xs: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    ys: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    ptc: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    capacity: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int16))
    # CSR out-edges
    edge_offsets: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    edge_dst: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    edge_programmable: np.ndarray = field(
        default_factory=lambda: np.zeros(0, np.bool_)
    )
    # lookups
    source_of: dict = field(default_factory=dict)   # (x,y,ble) -> node
    opin_of: dict = field(default_factory=dict)     # (x,y,ble) -> node
    sink_of: dict = field(default_factory=dict)     # (x,y) -> node
    ipins_of: dict = field(default_factory=dict)    # (x,y) -> [nodes]
    pad_source: dict = field(default_factory=dict)  # (x,y,i) -> node (input pad)
    pad_opin: dict = field(default_factory=dict)
    pad_ipin: dict = field(default_factory=dict)    # (x,y,i) -> node (output pad)
    pad_sink: dict = field(default_factory=dict)
    chanx_id: dict = field(default_factory=dict)    # (x,y,t) -> node
    chany_id: dict = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return int(self.ntype.shape[0])

    @property
    def n_edges(self) -> int:
        return int(self.edge_dst.shape[0])

    def out_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(edge indices, destination nodes) leaving ``node``."""
        a, b = int(self.edge_offsets[node]), int(self.edge_offsets[node + 1])
        return np.arange(a, b), self.edge_dst[a:b]

    def edge_src_array(self) -> np.ndarray:
        """Source node per edge (derived from the CSR offsets)."""
        src = np.zeros(self.n_edges, dtype=np.int32)
        counts = np.diff(self.edge_offsets)
        src = np.repeat(np.arange(self.n_nodes, dtype=np.int32), counts)
        return src

    def node_str(self, node: int) -> str:
        t = RRNodeType(int(self.ntype[node]))
        return (
            f"{t.name}({int(self.xs[node])},{int(self.ys[node])},"
            f"{int(self.ptc[node])})"
        )

    def is_wire(self, node: int) -> bool:
        t = self.ntype[node]
        return t == _CHANX or t == _CHANY

    def wirelength_nodes(self, nodes) -> int:
        """Number of channel-wire nodes among ``nodes`` (wirelength metric)."""
        ntype = self.ntype
        return sum(
            1
            for n in nodes
            if ntype[n] == _CHANX or ntype[n] == _CHANY
        )


def _spread(n_choose: int, total: int, offset: int) -> list[int]:
    """Deterministically pick ``n_choose`` of ``total`` indices, offset-rotated."""
    if n_choose >= total:
        return list(range(total))
    step = total / n_choose
    return sorted({(offset + int(i * step)) % total for i in range(n_choose)})


def build_rr_graph(grid: DeviceGrid) -> RRGraph:
    """Construct the full routing-resource graph for a device."""
    spec = grid.spec
    W = spec.channel_width
    width, height = grid.width, grid.height

    g = RRGraph(grid=grid)
    ntypes: list[int] = []
    xs: list[int] = []
    ys: list[int] = []
    ptcs: list[int] = []
    caps: list[int] = []

    def new_node(t: RRNodeType, x: int, y: int, ptc: int, cap: int = 1) -> int:
        nid = len(ntypes)
        ntypes.append(int(t))
        xs.append(x)
        ys.append(y)
        ptcs.append(ptc)
        caps.append(cap)
        return nid

    # ---- block pins ------------------------------------------------------
    for (x, y) in grid.clb_positions():
        g.sink_of[(x, y)] = new_node(
            RRNodeType.SINK, x, y, 0, cap=spec.n_cluster_inputs
        )
        g.ipins_of[(x, y)] = [
            new_node(RRNodeType.IPIN, x, y, i)
            for i in range(spec.n_cluster_inputs)
        ]
        for b in range(spec.n_ble):
            # SOURCE/OPIN carry one signal but may belong to several route
            # trees of that same signal (e.g. a tapped net plus its tunable
            # branch), so they are exempt from congestion via high capacity.
            g.source_of[(x, y, b)] = new_node(
                RRNodeType.SOURCE, x, y, b, cap=1024
            )
            g.opin_of[(x, y, b)] = new_node(RRNodeType.OPIN, x, y, b, cap=1024)

    for (x, y) in grid.io_positions():
        for i in range(spec.io_capacity):
            g.pad_source[(x, y, i)] = new_node(
                RRNodeType.SOURCE, x, y, i, cap=1024
            )
            g.pad_opin[(x, y, i)] = new_node(RRNodeType.OPIN, x, y, i, cap=1024)
            g.pad_ipin[(x, y, i)] = new_node(RRNodeType.IPIN, x, y, i)
            g.pad_sink[(x, y, i)] = new_node(RRNodeType.SINK, x, y, i)

    # ---- channel wires ------------------------------------------------------
    # chanx(x, y): horizontal wire in the channel above row y, tile column x
    for y in range(0, height - 1):
        for x in range(1, width - 1):
            for t in range(W):
                g.chanx_id[(x, y, t)] = new_node(RRNodeType.CHANX, x, y, t)
    # chany(x, y): vertical wire in the channel right of column x, row y
    for x in range(0, width - 1):
        for y in range(1, height - 1):
            for t in range(W):
                g.chany_id[(x, y, t)] = new_node(RRNodeType.CHANY, x, y, t)

    edges: list[tuple[int, int, bool]] = []

    def connect(a: int, b: int, programmable: bool) -> None:
        edges.append((a, b, programmable))

    def connect_bidir(a: int, b: int, programmable: bool) -> None:
        edges.append((a, b, programmable))
        edges.append((b, a, programmable))

    # ---- intra-block hardwired edges ---------------------------------------
    for (x, y) in grid.clb_positions():
        sink = g.sink_of[(x, y)]
        for ip in g.ipins_of[(x, y)]:
            connect(ip, sink, False)
        for b in range(spec.n_ble):
            connect(g.source_of[(x, y, b)], g.opin_of[(x, y, b)], False)
    for key, src in g.pad_source.items():
        connect(src, g.pad_opin[key], False)
    for key, ip in g.pad_ipin.items():
        connect(ip, g.pad_sink[key], False)

    # ---- connection boxes -----------------------------------------------------
    n_in = max(1, round(spec.fc_in * W))
    n_out = max(1, round(spec.fc_out * W))

    def adjacent_channels(x: int, y: int) -> list[tuple[dict, tuple[int, int]]]:
        """Channels bordering tile (x, y): [(wire-dict, (cx, cy)), ...]."""
        out = []
        if 0 <= y - 1 and (x, y - 1, 0) in g.chanx_id:
            out.append((g.chanx_id, (x, y - 1)))
        if (x, y, 0) in g.chanx_id:
            out.append((g.chanx_id, (x, y)))
        if (x - 1, y, 0) in g.chany_id:
            out.append((g.chany_id, (x - 1, y)))
        if (x, y, 0) in g.chany_id:
            out.append((g.chany_id, (x, y)))
        return out

    for (x, y) in grid.clb_positions():
        chans = adjacent_channels(x, y)
        for i, ip in enumerate(g.ipins_of[(x, y)]):
            wires, (cx, cy) = chans[i % len(chans)]
            for t in _spread(n_in, W, i):
                connect(wires[(cx, cy, t)], ip, True)
        for b in range(spec.n_ble):
            op = g.opin_of[(x, y, b)]
            for j, (wires, (cx, cy)) in enumerate(chans):
                for t in _spread(n_out, W, b + j):
                    connect(op, wires[(cx, cy, t)], True)

    for (x, y) in grid.io_positions():
        chans = adjacent_channels(x, y)
        if not chans:
            raise ArchitectureError(f"I/O tile ({x},{y}) has no channel")
        for i in range(spec.io_capacity):
            op = g.pad_opin[(x, y, i)]
            ip = g.pad_ipin[(x, y, i)]
            for j, (wires, (cx, cy)) in enumerate(chans):
                for t in _spread(n_out, W, i + j):
                    connect(op, wires[(cx, cy, t)], True)
                for t in _spread(n_in, W, i + j + 1):
                    connect(wires[(cx, cy, t)], ip, True)

    # ---- switch boxes -----------------------------------------------------------
    # Straight-through connections between collinear wires.
    for (x, y, t), a in g.chanx_id.items():
        b = g.chanx_id.get((x + 1, y, t))
        if b is not None:
            connect_bidir(a, b, True)
    for (x, y, t), a in g.chany_id.items():
        b = g.chany_id.get((x, y + 1, t))
        if b is not None:
            connect_bidir(a, b, True)
    # Wilton-style turns at each switch point (x, y): between chanx(x, y)/
    # chanx(x+1, y) and chany(x, y)/chany(x, y+1).
    for x in range(0, width - 1):
        for y in range(0, height - 1):
            for t in range(W):
                hx = g.chanx_id.get((x, y, t)) or g.chanx_id.get((x + 1, y, t))
                if hx is None:
                    continue
                turns = [
                    g.chany_id.get((x, y, (W - t) % W)),
                    g.chany_id.get((x, y + 1, (t + 1) % W)),
                ]
                for v in turns:
                    if v is not None:
                        connect_bidir(hx, v, True)

    # ---- freeze into CSR --------------------------------------------------------
    n = len(ntypes)
    g.ntype = np.array(ntypes, dtype=np.uint8)
    g.xs = np.array(xs, dtype=np.int32)
    g.ys = np.array(ys, dtype=np.int32)
    g.ptc = np.array(ptcs, dtype=np.int32)
    g.capacity = np.array(caps, dtype=np.int16)

    if edges:
        e_src = np.array([e[0] for e in edges], dtype=np.int64)
        e_dst = np.array([e[1] for e in edges], dtype=np.int32)
        e_prog = np.array([e[2] for e in edges], dtype=np.bool_)
        order = np.argsort(e_src, kind="stable")
        e_src = e_src[order]
        g.edge_dst = e_dst[order]
        g.edge_programmable = e_prog[order]
        g.edge_offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(g.edge_offsets, e_src + 1, 1)
        np.cumsum(g.edge_offsets, out=g.edge_offsets)
    else:  # pragma: no cover - a device always has edges
        g.edge_offsets = np.zeros(n + 1, dtype=np.int64)

    return g
