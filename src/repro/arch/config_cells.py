"""Configuration-memory layout: every cell gets a bitstream address.

SRAM FPGAs organize configuration memory in *frames* — the smallest unit
partial reconfiguration can write.  Frames are column-aligned on real
devices (a frame holds one column's slice of config cells), which is what
makes partial reconfiguration of a localized change cheap.  We reproduce
that: all configuration bits of the tiles and channels in grid column ``x``
are packed consecutively, then cut into fixed-size frames.

Cell inventory per device:

* per BLE: ``2**K`` LUT mask bits, K input-select fields (cluster crossbar),
  one output-select bit (LUT vs FF), one FF-init bit;
* per programmable routing edge: one switch bit (owned by the column of its
  source node).

:class:`ConfigLayout` exposes the forward maps (cell → bit address) used by
bitstream generation and the reverse maps used by the emulator's decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.device import DeviceGrid
from repro.arch.routing_graph import RRGraph
from repro.errors import BitstreamError

__all__ = ["ConfigLayout", "build_config_layout"]


@dataclass
class ConfigLayout:
    """Addresses of every configuration cell, frame-organized by column."""

    grid: DeviceGrid
    frame_bits: int
    n_bits: int = 0
    #: (x, y, ble) -> first bit of the LUT mask (2**K bits)
    lut_base: dict = field(default_factory=dict)
    #: (x, y, ble, pin) -> first bit of that pin's select field
    pin_select_base: dict = field(default_factory=dict)
    #: (x, y, ble) -> (output-select bit, ff-init bit)
    ble_ctrl: dict = field(default_factory=dict)
    #: routing edge index -> switch bit
    switch_bit: dict = field(default_factory=dict)
    #: per grid column: (first bit, n bits) before frame padding
    column_span: dict = field(default_factory=dict)

    @property
    def n_frames(self) -> int:
        return -(-self.n_bits // self.frame_bits) if self.n_bits else 0

    def frame_of_bit(self, bit: int) -> int:
        if not 0 <= bit < self.n_bits:
            raise BitstreamError(f"bit address {bit} out of range")
        return bit // self.frame_bits

    def frames_of_column(self, x: int) -> range:
        base, span = self.column_span[x]
        if span == 0:
            return range(0, 0)
        return range(base // self.frame_bits, (base + span - 1) // self.frame_bits + 1)

    def select_width(self) -> int:
        return self.grid.spec.ble_select_bits


def build_config_layout(rr: RRGraph, *, frame_bits: int = 1312) -> ConfigLayout:
    """Assign every config cell a bit address, column by column.

    Column ``x`` owns: the BLE cells of CLBs at that x, plus the switch bit
    of every programmable routing edge whose *source* node sits at that x.
    Each column is padded to a frame boundary so a localized change touches
    only its own column's frames.
    """
    grid = rr.grid
    spec = grid.spec
    layout = ConfigLayout(grid=grid, frame_bits=frame_bits)

    edge_src = rr.edge_src_array()
    prog_edges = np.nonzero(rr.edge_programmable)[0]
    edges_by_col: dict[int, list[int]] = {}
    for e in prog_edges.tolist():
        x = int(rr.xs[edge_src[e]])
        edges_by_col.setdefault(x, []).append(e)

    clbs_by_col: dict[int, list[tuple[int, int]]] = {}
    for (x, y) in grid.clb_positions():
        clbs_by_col.setdefault(x, []).append((x, y))

    bit = 0
    sel_w = spec.ble_select_bits
    for x in range(grid.width):
        col_base = bit
        for (cx, cy) in sorted(clbs_by_col.get(x, [])):
            for b in range(spec.n_ble):
                layout.lut_base[(cx, cy, b)] = bit
                bit += spec.lut_bits
                for pin in range(spec.k):
                    layout.pin_select_base[(cx, cy, b, pin)] = bit
                    bit += sel_w
                layout.ble_ctrl[(cx, cy, b)] = (bit, bit + 1)
                bit += 2
        for e in sorted(edges_by_col.get(x, [])):
            layout.switch_bit[e] = bit
            bit += 1
        span = bit - col_base
        layout.column_span[x] = (col_base, span)
        # pad to frame boundary so columns own whole frames
        if bit % frame_bits:
            bit += frame_bits - (bit % frame_bits)

    layout.n_bits = bit
    return layout
