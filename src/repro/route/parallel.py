"""Round-parallel PathFinder: speculative routing against frozen snapshots.

The serial negotiated-congestion loop routes connections one after
another, each seeing the congestion left by the previous one.  This
variant cuts each iteration into *waves*: a wave's connections are
routed concurrently against the frozen wave-start cost table, and the
results are committed in request order under a validation rule strong
enough to make the whole thing **byte-identical to the serial router**:

* every worker search records the *read set* of its A* — each node
  whose cost it loaded — as a bitmask;
* the parent tracks which nodes' live costs have diverged from the
  wave snapshot (earlier commits in the wave claim and free nodes);
* a speculative tree is committed only if its search read **no**
  diverged node.  An A* that reads exactly the values the serial
  router would have seen pops the same heap entries in the same order
  and returns the same tree, so committing it is indistinguishable
  from having routed serially;
* invalidated requests are simply re-routed in the parent against the
  live table — the serial path, verbatim.

The per-connection *self-sharing discount* is preserved exactly: the
parent ships each request the discounted costs of the nodes its key
already uses (``occ_eff = occ - 1``), which equals what the serial
rip-up + discount would produce against the same view; a node whose
discount would have changed necessarily changed its undiscounted cost
too, so the read-set check covers it.

Because every committed tree is the one the serial router would have
produced, worker count, wave chunking and pool scheduling cannot change
any route: parallelism is a pure execution detail, and the identity is
asserted (not just sampled) by the test suite.  The speculation hit
rate only moves wall-clock time — early congested iterations replay
more, converged iterations commit nearly everything speculatively.
"""

from __future__ import annotations

from heapq import heappop, heappush
from uuid import uuid4

from repro.arch.routing_graph import RRGraph
from repro.errors import UnroutableError
from repro.route.pathfinder import (
    ConnectionRequest,
    PathFinder,
    RouteTree,
    _grow_tree,
)
from repro.util.intra import IntraPool

__all__ = ["RoundPathFinder", "route_chunk", "prepare_static"]


def _grow_tree_traced(
    conn_id: int,
    source: int,
    sinks,
    off: list[int],
    dst: list[int],
    xs: list[int],
    ys: list[int],
    cost: list[float],
    is_sink: list[bool],
    gcost: list[float],
    gstamp: list[int],
    vstamp: list[int],
    back_node: list[int],
    back_edge: list[int],
    sid: int,
    astar: float,
    label: str,
    read_mask: bytearray,
) -> tuple[RouteTree, int]:
    """:func:`repro.route.pathfinder._grow_tree` plus read-set tracing.

    Identical search (same relaxations, same heap contents, same
    tie-breaking) except every ``cost[nxt]`` load also sets the node's
    bit in ``read_mask`` — the exact set of values whose change could
    alter this search's outcome.
    """
    tree = RouteTree(conn_id=conn_id)
    src = source
    tree_nodes: set[int] = {src}
    tree.nodes.append(src)

    sx, sy = xs[src], ys[src]
    remaining = sorted(sinks, key=lambda s: abs(xs[s] - sx) + abs(ys[s] - sy))
    for target in remaining:
        tx, ty = xs[target], ys[target]
        sid += 1
        heap: list[tuple[float, int]] = []
        for n in tree_nodes:
            gstamp[n] = sid
            gcost[n] = 0.0
            heappush(heap, (astar * (abs(xs[n] - tx) + abs(ys[n] - ty)), n))
        found = False
        while heap:
            _prio, node = heappop(heap)
            if vstamp[node] == sid:
                continue
            vstamp[node] = sid
            if node == target:
                found = True
                break
            g_here = gcost[node]
            for e in range(off[node], off[node + 1]):
                nxt = dst[e]
                if vstamp[nxt] == sid:
                    continue
                if is_sink[nxt] and nxt != target:
                    continue
                read_mask[nxt >> 3] |= 1 << (nxt & 7)
                c = g_here + cost[nxt]
                if gstamp[nxt] != sid:
                    gstamp[nxt] = sid
                elif c >= gcost[nxt]:
                    continue
                gcost[nxt] = c
                back_node[nxt] = node
                back_edge[nxt] = e
                heappush(
                    heap,
                    (c + astar * (abs(xs[nxt] - tx) + abs(ys[nxt] - ty)), nxt),
                )
        if not found:
            raise UnroutableError(
                f"connection {label or conn_id}: no path to node {target}"
            )
        path = [target]
        node = target
        while node not in tree_nodes:
            tree.edges.append(back_edge[node])
            node = back_node[node]
            path.append(node)
        path.reverse()
        for n in path:
            if n not in tree_nodes:
                tree_nodes.add(n)
                tree.nodes.append(n)
        tree.sink_paths[target] = path
    return tree, sid


def prepare_static(blob: tuple) -> tuple:
    """Worker-side: attach per-process scratch arrays to the RR tables."""
    off, dst, xs, ys, is_sink, n, reqs = blob
    scratch = ([0.0] * n, [0] * n, [0] * n, [0] * n, [0] * n, [0])
    return (off, dst, xs, ys, is_sink, n, reqs, scratch)


def route_chunk(static: tuple, payload: tuple) -> list[tuple]:
    """IntraPool kernel: route a chunk of requests against one snapshot.

    ``payload`` is ``(cost_table, [(req_idx, [(node, discounted_cost),
    ...]), ...], astar_fac)``.  Returns per request ``(req_idx, nodes,
    edges, sink_paths, read_mask_bytes)``.  Pure function of ``(static,
    payload)``: the cost table is copied, discounts are restored after
    each request, and the scratch arrays are stamp-validated.
    """
    off, dst, xs, ys, is_sink, n, reqs, scratch = static
    cost_table, disc, astar = payload
    cost = list(cost_table)
    gcost, gstamp, vstamp, back_node, back_edge, sid_box = scratch
    sid = sid_box[0]
    n_mask = (n + 7) >> 3
    out = []
    for idx, dnodes in disc:
        conn_id, _key, source, sinks, label = reqs[idx]
        saved = [(dn, cost[dn]) for dn, _c in dnodes]
        for dn, c in dnodes:
            cost[dn] = c
        mask = bytearray(n_mask)
        tree, sid = _grow_tree_traced(
            conn_id, source, sinks, off, dst, xs, ys, cost, is_sink,
            gcost, gstamp, vstamp, back_node, back_edge, sid, astar,
            label, mask,
        )
        for dn, c in saved:
            cost[dn] = c
        out.append((idx, tree.nodes, tree.edges, tree.sink_paths, bytes(mask)))
    sid_box[0] = sid
    return out


class RoundPathFinder(PathFinder):
    """PathFinder whose iterations route as speculative parallel waves.

    Produces byte-identical results to :class:`PathFinder` at any
    worker count; see the module docstring for the argument.
    """

    #: requests routed concurrently between snapshot refreshes.  Fixed —
    #: never derived from the worker count — and in any case results are
    #: validated back to serial equality; it only trades speculation hit
    #: rate against round-trip overhead.
    _WAVE = 64

    def __init__(
        self,
        rr: RRGraph,
        *,
        intra: IntraPool | None = None,
        **kwargs,
    ) -> None:
        super().__init__(rr, **kwargs)
        self._intra = intra if intra is not None else IntraPool(1)
        self._token = f"route/{uuid4().hex}"
        self._static_blob: tuple | None = None
        #: speculative trees committed as-is vs. re-routed in the parent
        self.speculative_hits = 0
        self.replayed_routes = 0

    def _discounted(self, node: int) -> float:
        # cost of `node` for a key already using it: occupancy one lower
        over = self._occ[node] - self._cap[node]
        if over > 0:
            return (
                self._base[node] * (1.0 + self._pres_fac * over)
                + self._acc[node]
            )
        return self._base[node] + self._acc[node]

    def _route_pass(
        self, requests: list[ConnectionRequest], trees: dict[int, RouteTree]
    ) -> None:
        if self._static_blob is None:
            reqs = tuple(
                (r.conn_id, r.key, r.source, tuple(r.sinks), r.label)
                for r in requests
            )
            self._static_blob = (
                self._off, self._dst, self._xs, self._ys, self._is_sink,
                len(self._cost), reqs,
            )
        pool = self._intra
        wave = self._WAVE
        cost = self._cost
        for start in range(0, len(requests), wave):
            batch = requests[start : start + wave]
            # old trees stay in the snapshot: the shipped discounts price
            # a request's own wires exactly as the serial rip-up would
            disc = []
            for i, req in enumerate(batch):
                kn = self._key_nodes.get(req.key)
                dnodes = [(n, self._discounted(n)) for n in kn] if kn else []
                disc.append((start + i, dnodes))
            snapshot = cost[:]
            payloads = [
                (snapshot, disc[a:b], self.astar_fac)
                for a, b in pool.chunks(len(disc))
            ]
            out = pool.map_round(
                "repro.route.parallel", "route_chunk", self._token,
                self._static_blob, payloads,
            )
            # speculative merge, in request order.  `changed` is the set
            # of nodes whose live cost differs from the wave snapshot; a
            # worker tree whose search read none of them would replay
            # identically here, so committing it *is* the serial result.
            changed: set[int] = set()
            for idx, nodes, edges, sink_paths, mask in (
                t for chunk in out for t in chunk
            ):
                req = requests[idx]
                valid = True
                for n in changed:
                    if mask[n >> 3] & (1 << (n & 7)):
                        valid = False
                        break
                old = trees.get(req.conn_id)
                if valid:
                    if old is not None:
                        for n in old.nodes:
                            self._remove_usage(n, req.key)
                    tree = RouteTree(
                        conn_id=req.conn_id,
                        nodes=list(nodes),
                        edges=list(edges),
                        sink_paths={s: list(p) for s, p in sink_paths.items()},
                    )
                    trees[req.conn_id] = tree
                    for n in tree.nodes:
                        self._add_usage(n, req.key)
                    self.speculative_hits += 1
                else:
                    tree = self._reroute_one(req, trees)
                    self.replayed_routes += 1
                affected = set(tree.nodes)
                if old is not None:
                    affected.update(old.nodes)
                for n in affected:
                    if cost[n] != snapshot[n]:
                        changed.add(n)
                    else:
                        changed.discard(n)
