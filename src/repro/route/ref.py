"""Reference PathFinder (the pre-optimization implementation).

The dictionary-based negotiated-congestion router exactly as it shipped
before the array-backed rewrite of :mod:`repro.route.pathfinder`: per-node
cost computed through attribute/dict traffic on every relaxation, search
state in per-search dictionaries, and a pure-Python indexed heap.  Kept as
the *quality and speed baseline*:

* ``tests/test_physical_perf.py`` gates the rewritten router's wirelength
  and overuse against this implementation on the paper-suite design;
* ``benchmarks/bench_offline.py`` measures the physical-stage speedup by
  routing identical placements through both.

Not used by any production path — the compile pipeline routes through
:class:`repro.route.pathfinder.PathFinder`.
"""

from __future__ import annotations

import numpy as np

from repro.arch.routing_graph import RRGraph, RRNodeType
from repro.errors import RoutingError, UnroutableError
from repro.route.pathfinder import ConnectionRequest, RouteTree
from repro.util.pq import IndexedMinHeap

__all__ = ["PathFinderRef"]


class PathFinderRef:
    """Negotiated-congestion router over one RR graph (reference)."""

    def __init__(
        self,
        rr: RRGraph,
        *,
        max_iterations: int = 40,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.6,
        acc_fac: float = 1.0,
        astar_fac: float = 1.0,
    ) -> None:
        self.rr = rr
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.acc_fac = acc_fac
        self.astar_fac = astar_fac

        n = rr.n_nodes
        t = rr.ntype
        self.base_cost = np.ones(n, dtype=np.float64)
        self.base_cost[t == RRNodeType.OPIN] = 0.6
        self.base_cost[t == RRNodeType.IPIN] = 0.6
        self.base_cost[t == RRNodeType.SOURCE] = 0.2
        self.base_cost[t == RRNodeType.SINK] = 0.2
        self.acc_cost = np.zeros(n, dtype=np.float64)
        # occupancy bookkeeping: per node, the set of sharing keys using it
        self._users: dict[int, dict[int, int]] = {}
        self.occ = np.zeros(n, dtype=np.int32)
        self.iterations_run = 0

    # -- occupancy ---------------------------------------------------------

    def _add_usage(self, node: int, key: int) -> None:
        users = self._users.setdefault(node, {})
        if key in users:
            users[key] += 1
        else:
            users[key] = 1
            self.occ[node] += 1

    def _remove_usage(self, node: int, key: int) -> None:
        users = self._users.get(node)
        if not users or key not in users:
            raise RoutingError(f"usage underflow at node {node}")
        users[key] -= 1
        if users[key] == 0:
            del users[key]
            self.occ[node] -= 1

    def _node_cost(self, node: int, key: int, pres_fac: float) -> float:
        cap = int(self.rr.capacity[node])
        occ = int(self.occ[node])
        users = self._users.get(node)
        if users and key in users:
            occ -= 1  # sharing with ourselves (same key) is free
        over = occ + 1 - cap
        pres = 1.0 + pres_fac * over if over > 0 else 1.0
        return float(self.base_cost[node]) * pres + float(self.acc_cost[node])

    # -- search -------------------------------------------------------------

    def _route_connection(
        self, req: ConnectionRequest, pres_fac: float
    ) -> RouteTree:
        rr = self.rr
        tree = RouteTree(conn_id=req.conn_id)
        tree_nodes: set[int] = {req.source}
        tree.nodes.append(req.source)

        remaining = list(req.sinks)
        xs, ys = rr.xs, rr.ys
        while remaining:
            # nearest sink first (manhattan from any tree node — cheap proxy:
            # from the source)
            remaining.sort(
                key=lambda s: abs(int(xs[s]) - int(xs[req.source]))
                + abs(int(ys[s]) - int(ys[req.source]))
            )
            target = remaining.pop(0)
            tx, ty = int(xs[target]), int(ys[target])

            heap = IndexedMinHeap()
            back_node: dict[int, int] = {}
            back_edge: dict[int, int] = {}
            gcost: dict[int, float] = {}
            for n in tree_nodes:
                gcost[n] = 0.0
                h = self.astar_fac * (abs(int(xs[n]) - tx) + abs(int(ys[n]) - ty))
                heap.push(n, h)
            found = False
            visited: set[int] = set()
            while heap:
                node, _prio = heap.pop()
                if node in visited:
                    continue
                visited.add(node)
                if node == target:
                    found = True
                    break
                eidx, dsts = rr.out_edges(node)
                g_here = gcost[node]
                for k in range(len(dsts)):
                    nxt = int(dsts[k])
                    if nxt in visited:
                        continue
                    # sinks other than the target are dead ends
                    if rr.ntype[nxt] == RRNodeType.SINK and nxt != target:
                        continue
                    c = g_here + self._node_cost(nxt, req.key, pres_fac)
                    if c < gcost.get(nxt, float("inf")):
                        gcost[nxt] = c
                        back_node[nxt] = node
                        back_edge[nxt] = int(eidx[k])
                        h = self.astar_fac * (
                            abs(int(xs[nxt]) - tx) + abs(int(ys[nxt]) - ty)
                        )
                        heap.push(nxt, c + h)
            if not found:
                raise UnroutableError(
                    f"connection {req.label or req.conn_id}: no path to "
                    f"{rr.node_str(target)}"
                )
            # unwind path into the tree
            path = [target]
            node = target
            while node not in tree_nodes:
                prev = back_node[node]
                tree.edges.append(back_edge[node])
                path.append(prev)
                node = prev
            path.reverse()
            for n in path:
                if n not in tree_nodes:
                    tree_nodes.add(n)
                    tree.nodes.append(n)
            tree.sink_paths[target] = path
        return tree

    # -- main loop ------------------------------------------------------------

    def route(
        self, requests: list[ConnectionRequest]
    ) -> dict[int, RouteTree]:
        """Route all requests to legality; returns trees keyed by conn_id."""
        if not requests:
            return {}
        trees: dict[int, RouteTree] = {}
        pres_fac = self.pres_fac_first
        for iteration in range(1, self.max_iterations + 1):
            self.iterations_run = iteration
            for req in requests:
                old = trees.get(req.conn_id)
                if old is not None:
                    for n in old.nodes:
                        self._remove_usage(n, req.key)
                tree = self._route_connection(req, pres_fac)
                for n in tree.nodes:
                    self._add_usage(n, req.key)
                trees[req.conn_id] = tree

            over = np.nonzero(self.occ > self.rr.capacity)[0]
            if over.size == 0:
                return trees
            self.acc_cost[over] += self.acc_fac
            pres_fac *= self.pres_fac_mult
        raise UnroutableError(
            f"{over.size} overused nodes after {self.max_iterations} iterations"
        )
