"""TRoute: build routing jobs from a placement and run PathFinder.

The tunable-connection machinery lives here: every TCON tree becomes a
*family* of connections — one per alternative leaf driver — all carrying
the same sharing key and each tagged with its parameter activation
condition.  Mutually-exclusive branches overlap freely on wires, which is
what produces the paper's ≈3× wiring reduction (§V-C.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.routing_graph import RRGraph, RRNodeType, build_rr_graph
from repro.core.boolfunc import BoolExpr, bf_const
from repro.errors import RoutingError
from repro.place.tplace import Placement
from repro.route.pathfinder import ConnectionRequest, PathFinder, RouteTree

__all__ = ["RoutedConnection", "RoutingResult", "route_design"]


@dataclass
class RoutedConnection:
    """A routed connection plus its activation condition."""

    request: ConnectionRequest
    tree: RouteTree
    condition: BoolExpr
    signal: int
    group: int | None = None


@dataclass
class RoutingResult:
    """All routed connections and derived metrics."""

    rr: RRGraph
    placement: Placement
    connections: list[RoutedConnection] = field(default_factory=list)
    iterations: int = 0
    runtime_s: float = 0.0

    def total_wires_used(self) -> int:
        """Distinct channel wires used by any connection (shared count once)."""
        used: set[int] = set()
        for c in self.connections:
            for n in c.tree.nodes:
                if self.rr.is_wire(n):
                    used.add(n)
        return len(used)

    def total_wire_visits(self) -> int:
        """Wire usage *without* sharing (what a conventional router pays)."""
        visits = 0
        for c in self.connections:
            visits += sum(1 for n in c.tree.nodes if self.rr.is_wire(n))
        return visits

    def used_switch_edges(self) -> dict[int, BoolExpr]:
        """Programmable edge → activation condition (OR over connections)."""
        out: dict[int, BoolExpr] = {}
        for c in self.connections:
            for e in c.tree.edges:
                if not self.rr.edge_programmable[e]:
                    continue
                prev = out.get(e)
                if prev is None:
                    out[e] = c.condition
                else:
                    out[e] = prev | c.condition
        return out

    def summary(self) -> dict[str, float]:
        return {
            "connections": float(len(self.connections)),
            "wires_used": float(self.total_wires_used()),
            "wire_visits": float(self.total_wire_visits()),
            "iterations": float(self.iterations),
            "runtime_s": self.runtime_s,
        }


def _signal_source_node(
    rr: RRGraph, placement: Placement, packed, sig: int
) -> int:
    """RR SOURCE node of the producer of ``sig``."""
    physical = packed.physical
    c_idx = packed.cluster_of_signal.get(sig)
    if c_idx is not None:
        x, y = placement.cluster_site(c_idx)
        cluster = packed.clusters[c_idx]
        for b_pos, ble in enumerate(cluster.bles):
            if ble.output == sig:
                return rr.source_of[(x, y, b_pos)]
        raise RoutingError(
            f"signal {physical.signal_name(sig)!r} not a BLE output of its cluster"
        )
    # primary input pad
    x, y, k = placement.pad_site(sig, "ipad")
    return rr.pad_source[(x, y, k)]


def route_design(
    placement: Placement,
    rr: RRGraph | None = None,
    *,
    max_iterations: int = 40,
    pathfinder: type = PathFinder,
    rounds: bool = False,
    intra=None,
) -> RoutingResult:
    """Route a placed design; returns the full routing result.

    ``pathfinder`` selects the router class — the default array-backed
    :class:`~repro.route.pathfinder.PathFinder`, or
    :class:`~repro.route.ref.PathFinderRef` when benchmarks/tests need
    the pre-optimization baseline on identical requests.  ``rounds``
    switches to the iteration-parallel
    :class:`~repro.route.parallel.RoundPathFinder` (a different — but
    worker-count-independent — algorithm), optionally fanning rounds out
    over the :class:`~repro.util.intra.IntraPool` ``intra``.
    """
    packed = placement.packed
    physical = packed.physical
    grid = placement.grid
    if rr is None:
        rr = build_rr_graph(grid)

    # reader sinks per signal
    reader_sinks: dict[int, list[int]] = {}
    for c in packed.clusters:
        x, y = placement.cluster_site(c.index)
        sink = rr.sink_of[(x, y)]
        for s in c.external_inputs():
            reader_sinks.setdefault(s, []).append(sink)
    for s in physical.po_signals:
        x, y, k = placement.pad_site(s, "opad")
        reader_sinks.setdefault(s, []).append(rr.pad_sink[(x, y, k)])

    groups = physical.tunable_groups
    requests: list[ConnectionRequest] = []
    meta: dict[int, tuple[BoolExpr, int, int | None]] = {}
    key_counter = 0
    key_of_signal: dict[int, int] = {}
    conn_id = 0
    true_expr = bf_const(1)

    for sig in sorted(reader_sinks):
        sinks = tuple(sorted(set(reader_sinks[sig])))
        if sig in groups:
            key_counter += 1
            gkey = key_counter
            for leaf, cond in groups[sig].options:
                if leaf in groups:
                    raise RoutingError("tunable options must be leaf signals")
                src = _signal_source_node(rr, placement, packed, leaf)
                req = ConnectionRequest(
                    conn_id=conn_id,
                    key=gkey,
                    source=src,
                    sinks=sinks,
                    label=f"tcon:{physical.signal_name(sig)}<-{physical.signal_name(leaf)}",
                )
                requests.append(req)
                meta[conn_id] = (cond, leaf, sig)
                conn_id += 1
            continue
        if sig not in key_of_signal:
            key_counter += 1
            key_of_signal[sig] = key_counter
        src = _signal_source_node(rr, placement, packed, sig)
        req = ConnectionRequest(
            conn_id=conn_id,
            key=key_of_signal[sig],
            source=src,
            sinks=sinks,
            label=f"net:{physical.signal_name(sig)}",
        )
        requests.append(req)
        meta[conn_id] = (true_expr, sig, None)
        conn_id += 1

    if rounds:
        from repro.route.parallel import RoundPathFinder

        pf = RoundPathFinder(rr, max_iterations=max_iterations, intra=intra)
    else:
        pf = pathfinder(rr, max_iterations=max_iterations)
    t0 = time.perf_counter()
    trees = pf.route(requests)
    runtime = time.perf_counter() - t0

    result = RoutingResult(
        rr=rr,
        placement=placement,
        iterations=pf.iterations_run,
        runtime_s=runtime,
    )
    for req in requests:
        cond, sig, group = meta[req.conn_id]
        result.connections.append(
            RoutedConnection(
                request=req,
                tree=trees[req.conn_id],
                condition=cond,
                signal=sig,
                group=group,
            )
        )
    return result
