"""TRoute: PathFinder negotiated-congestion routing with tunable-net sharing."""

from repro.route.pathfinder import PathFinder, ConnectionRequest
from repro.route.troute import RoutingResult, route_design

__all__ = ["PathFinder", "ConnectionRequest", "RoutingResult", "route_design"]
