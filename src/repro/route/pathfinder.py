"""PathFinder: negotiated-congestion routing on the RR graph.

Implements the classic iterative scheme (McMurchie & Ebeling): every
connection is routed by A* through the routing-resource graph with node
costs inflated by present congestion and accumulated history; iterations
rip up and re-route everything until no node is over capacity.

**Tunable-connection sharing** — the paper's key routing mechanism — enters
through the ``key`` of each :class:`ConnectionRequest`: occupancy counts
*distinct keys* per node.  All alternative branches of one TCON tree carry
the same key (they are mutually exclusive under the parameter values), so
their overlapping wires count once; ordinary nets use their own key.

The expansion loop is the single hottest path of the offline flow, so the
router works on flat array state instead of per-node dictionaries:

* the CSR adjacency, coordinates, capacities and node kinds are mirrored
  into plain Python lists once per :class:`PathFinder` (C-speed indexed
  loads, no numpy scalar boxing);
* the congestion-inflated cost of every node is kept in one flat table,
  rebuilt vectorized when ``pres_fac`` changes at an iteration boundary
  and patched in O(1) whenever a node's occupancy changes — so a
  relaxation reads exactly one list entry (the same-key self-sharing
  discount is applied to the table before a connection routes and
  restored after);
* per-search state (g-cost, backtrack, visited) lives in preallocated
  arrays validated by a search-id stamp — no clearing, no dictionaries;
* the priority queue is :mod:`heapq` with lazy deletion (stale entries
  are skipped via the visited stamp) instead of a pure-Python
  decrease-key heap.

numpy is optional: the vectorized cost rebuild and overuse scan fall
back to plain loops when it is absent (same values, just slower), so the
module imports clean on numpy-free interpreters.

The dictionary-based implementation this was rewritten from (and is
quality-gated against) is :class:`repro.route.ref.PathFinderRef`.  The
iteration-parallel variant routing frozen-snapshot rounds on top of this
class is :class:`repro.route.parallel.RoundPathFinder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

try:  # pragma: no cover - exercised via tests/no_numpy_shim
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.arch.routing_graph import RRGraph, RRNodeType
from repro.errors import RoutingError, UnroutableError

__all__ = ["ConnectionRequest", "RouteTree", "PathFinder"]

#: Enum members hoisted to plain ints — the expansion loop compares node
#: kinds millions of times per route and ``IntEnum.__getattr__`` was a
#: measurable fraction of total routing time.
_SOURCE = int(RRNodeType.SOURCE)
_OPIN = int(RRNodeType.OPIN)
_IPIN = int(RRNodeType.IPIN)
_SINK = int(RRNodeType.SINK)


def _tolist(a) -> list:
    """Plain-list view of a numpy array or any sequence."""
    return a.tolist() if hasattr(a, "tolist") else list(a)


@dataclass(frozen=True)
class ConnectionRequest:
    """One source→sinks routing job.

    ``key`` is the congestion-sharing identity (net id for ordinary nets,
    tunable-group id for TCON branches).
    """

    conn_id: int
    key: int
    source: int
    sinks: tuple[int, ...]
    label: str = ""


@dataclass
class RouteTree:
    """Routed result of one connection: nodes and the edges between them."""

    conn_id: int
    nodes: list[int] = field(default_factory=list)
    edges: list[int] = field(default_factory=list)
    #: per sink: the path (node list) from the tree to that sink
    sink_paths: dict[int, list[int]] = field(default_factory=dict)


def _grow_tree(
    conn_id: int,
    source: int,
    sinks,
    off: list[int],
    dst: list[int],
    xs: list[int],
    ys: list[int],
    cost: list[float],
    is_sink: list[bool],
    gcost: list[float],
    gstamp: list[int],
    vstamp: list[int],
    back_node: list[int],
    back_edge: list[int],
    sid: int,
    astar: float,
    label: str,
    node_str,
) -> tuple[RouteTree, int]:
    """Grow one connection's route tree by repeated A* (sink by sink).

    Pure function of its arguments plus the scratch arrays (validated by
    the ``sid`` stamp, so stale contents never leak between searches) —
    shared verbatim by the serial router and the round-parallel workers.
    Returns ``(tree, new_sid)``.
    """
    tree = RouteTree(conn_id=conn_id)
    src = source
    tree_nodes: set[int] = {src}
    tree.nodes.append(src)

    # nearest sink first (manhattan from the source — cheap proxy)
    sx, sy = xs[src], ys[src]
    remaining = sorted(sinks, key=lambda s: abs(xs[s] - sx) + abs(ys[s] - sy))
    for target in remaining:
        tx, ty = xs[target], ys[target]
        sid += 1
        heap: list[tuple[float, int]] = []
        for n in tree_nodes:
            gstamp[n] = sid
            gcost[n] = 0.0
            heappush(heap, (astar * (abs(xs[n] - tx) + abs(ys[n] - ty)), n))
        found = False
        while heap:
            _prio, node = heappop(heap)
            if vstamp[node] == sid:
                continue
            vstamp[node] = sid
            if node == target:
                found = True
                break
            g_here = gcost[node]
            for e in range(off[node], off[node + 1]):
                nxt = dst[e]
                if vstamp[nxt] == sid:
                    continue
                # sinks other than the target are dead ends
                if is_sink[nxt] and nxt != target:
                    continue
                c = g_here + cost[nxt]
                if gstamp[nxt] != sid:
                    gstamp[nxt] = sid
                elif c >= gcost[nxt]:
                    continue
                gcost[nxt] = c
                back_node[nxt] = node
                back_edge[nxt] = e
                heappush(
                    heap,
                    (c + astar * (abs(xs[nxt] - tx) + abs(ys[nxt] - ty)), nxt),
                )
        if not found:
            raise UnroutableError(
                f"connection {label or conn_id}: no path to {node_str(target)}"
            )
        # unwind path into the tree
        path = [target]
        node = target
        while node not in tree_nodes:
            tree.edges.append(back_edge[node])
            node = back_node[node]
            path.append(node)
        path.reverse()
        for n in path:
            if n not in tree_nodes:
                tree_nodes.add(n)
                tree.nodes.append(n)
        tree.sink_paths[target] = path
    return tree, sid


class PathFinder:
    """Negotiated-congestion router over one RR graph."""

    def __init__(
        self,
        rr: RRGraph,
        *,
        max_iterations: int = 40,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.6,
        acc_fac: float = 1.0,
        astar_fac: float = 1.0,
    ) -> None:
        self.rr = rr
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.acc_fac = acc_fac
        self.astar_fac = astar_fac

        n = rr.n_nodes
        t = _tolist(rr.ntype)
        base = [1.0] * n
        for i, ti in enumerate(t):
            if ti == _OPIN or ti == _IPIN:
                base[i] = 0.6
            elif ti == _SOURCE or ti == _SINK:
                base[i] = 0.2
        if np is not None:
            self.base_cost = np.asarray(base, dtype=np.float64)
            self.acc_cost = np.zeros(n, dtype=np.float64)
            self.occ = np.zeros(n, dtype=np.int32)
        else:
            self.base_cost = base[:]
            self.acc_cost = [0.0] * n
            self.occ = [0] * n
        # occupancy bookkeeping: per node the sharing keys using it, and
        # per key the nodes it uses (for the self-sharing discount)
        self._users: dict[int, dict[int, int]] = {}
        self._key_nodes: dict[int, dict[int, int]] = {}
        self.iterations_run = 0

        # flat list mirrors of the static RR graph (C-speed scalar access)
        self._off: list[int] = _tolist(rr.edge_offsets)
        self._dst: list[int] = _tolist(rr.edge_dst)
        self._xs: list[int] = _tolist(rr.xs)
        self._ys: list[int] = _tolist(rr.ys)
        self._cap: list[int] = _tolist(rr.capacity)
        self._is_sink: list[bool] = [ti == _SINK for ti in t]
        self._base: list[float] = base
        self._acc: list[float] = _tolist(self.acc_cost)
        self._occ: list[int] = [0] * n
        #: congestion-inflated cost per node under the current ``pres_fac``
        #: (no self-sharing discount); kept in sync incrementally
        self._cost: list[float] = self._base[:]
        self._pres_fac = pres_fac_first

        # per-search scratch, validated by the search-id stamp
        self._gcost = [0.0] * n
        self._gstamp = [0] * n
        self._vstamp = [0] * n
        self._back_node = [0] * n
        self._back_edge = [0] * n
        self._sid = 0

    # -- occupancy ---------------------------------------------------------

    def _cost_value(self, node: int) -> float:
        """Congestion cost of ``node`` under the current ``pres_fac``."""
        over = self._occ[node] + 1 - self._cap[node]
        if over > 0:
            return (
                self._base[node] * (1.0 + self._pres_fac * over)
                + self._acc[node]
            )
        return self._base[node] + self._acc[node]

    def _add_usage(self, node: int, key: int) -> None:
        users = self._users.setdefault(node, {})
        if key in users:
            users[key] += 1
        else:
            users[key] = 1
            self._occ[node] += 1
            self._cost[node] = self._cost_value(node)
        kn = self._key_nodes.setdefault(key, {})
        kn[node] = kn.get(node, 0) + 1

    def _remove_usage(self, node: int, key: int) -> None:
        users = self._users.get(node)
        if not users or key not in users:
            raise RoutingError(f"usage underflow at node {node}")
        users[key] -= 1
        if users[key] == 0:
            del users[key]
            self._occ[node] -= 1
            self._cost[node] = self._cost_value(node)
        kn = self._key_nodes[key]
        kn[node] -= 1
        if kn[node] == 0:
            del kn[node]
            if not kn:
                del self._key_nodes[key]

    def _node_cost(self, node: int, key: int, pres_fac: float) -> float:
        """Cost of ``node`` for a connection carrying ``key`` (kept for
        introspection/tests; the routing loop reads ``_cost`` directly)."""
        occ = self._occ[node]
        users = self._users.get(node)
        if users and key in users:
            occ -= 1  # sharing with ourselves (same key) is free
        over = occ + 1 - self._cap[node]
        pres = 1.0 + pres_fac * over if over > 0 else 1.0
        return self._base[node] * pres + self._acc[node]

    def _rebuild_cost(self) -> None:
        """Recompute the cost table (pres_fac/acc changed at an iteration
        boundary) — vectorized under numpy, plain loop otherwise."""
        if np is not None:
            occ = np.asarray(self._occ, dtype=np.int64)
            cap = np.asarray(self._cap, dtype=np.int64)
            over = occ + 1 - cap
            pres = np.where(over > 0, 1.0 + self._pres_fac * over, 1.0)
            self._acc = self.acc_cost.tolist()
            self._cost = (self.base_cost * pres + self.acc_cost).tolist()
            return
        pf = self._pres_fac
        acc = _tolist(self.acc_cost)
        self._acc = acc
        base, cap, occ = self._base, self._cap, self._occ
        cost = self._cost
        for i in range(len(cost)):
            over = occ[i] + 1 - cap[i]
            if over > 0:
                cost[i] = base[i] * (1.0 + pf * over) + acc[i]
            else:
                cost[i] = base[i] + acc[i]

    # -- search -------------------------------------------------------------

    def _route_connection(self, req: ConnectionRequest) -> RouteTree:
        tree, self._sid = _grow_tree(
            req.conn_id,
            req.source,
            req.sinks,
            self._off,
            self._dst,
            self._xs,
            self._ys,
            self._cost,
            self._is_sink,
            self._gcost,
            self._gstamp,
            self._vstamp,
            self._back_node,
            self._back_edge,
            self._sid,
            self.astar_fac,
            req.label,
            self.rr.node_str,
        )
        return tree

    # -- main loop ------------------------------------------------------------

    def _reroute_one(
        self, req: ConnectionRequest, trees: dict[int, RouteTree]
    ) -> RouteTree:
        """Rip up and re-route one request against the live cost table."""
        old = trees.get(req.conn_id)
        if old is not None:
            for n in old.nodes:
                self._remove_usage(n, req.key)
        # same-key sharing is free: discount nodes this key
        # already uses for the duration of the search
        kn = self._key_nodes.get(req.key)
        saved: list[tuple[int, float]] = []
        if kn:
            cost = self._cost
            for node in kn:
                saved.append((node, cost[node]))
                self._occ[node] -= 1
                cost[node] = self._cost_value(node)
                self._occ[node] += 1
        tree = self._route_connection(req)
        if saved:
            cost = self._cost
            for node, c in saved:
                cost[node] = c
        for n in tree.nodes:
            self._add_usage(n, req.key)
        trees[req.conn_id] = tree
        return tree

    def _serial_pass(
        self, requests: list[ConnectionRequest], trees: dict[int, RouteTree]
    ) -> None:
        """One rip-up-and-reroute sweep over all requests, in order."""
        for req in requests:
            self._reroute_one(req, trees)

    def _route_pass(
        self, requests: list[ConnectionRequest], trees: dict[int, RouteTree]
    ) -> None:
        """One iteration's routing pass; subclasses may parallelize it."""
        self._serial_pass(requests, trees)

    def _overused(self) -> list[int]:
        """Publish ``self.occ`` and return the over-capacity node ids."""
        if np is not None:
            self.occ = np.asarray(self._occ, dtype=np.int32)
            return np.nonzero(self.occ > self.rr.capacity)[0].tolist()
        occ = self._occ
        cap = self._cap
        self.occ = occ[:]
        return [i for i in range(len(occ)) if occ[i] > cap[i]]

    def _end_iteration(self, over: list[int]) -> None:
        """Bump history on overused nodes and sharpen ``pres_fac``."""
        if np is not None:
            self.acc_cost[over] += self.acc_fac
        else:
            acc = self.acc_cost
            for i in over:
                acc[i] += self.acc_fac
        self._pres_fac *= self.pres_fac_mult

    def route(
        self, requests: list[ConnectionRequest]
    ) -> dict[int, RouteTree]:
        """Route all requests to legality; returns trees keyed by conn_id.

        Raises :class:`UnroutableError` if congestion persists after
        ``max_iterations``.
        """
        if not requests:
            return {}
        trees: dict[int, RouteTree] = {}
        self._pres_fac = self.pres_fac_first
        n_over = 0
        for iteration in range(1, self.max_iterations + 1):
            self.iterations_run = iteration
            self._rebuild_cost()
            self._route_pass(requests, trees)
            over = self._overused()
            if not over:
                return trees
            n_over = len(over)
            self._end_iteration(over)
        raise UnroutableError(
            f"{n_over} overused nodes after {self.max_iterations} iterations"
        )
