"""Physical netlist atoms and the packing data model.

Signals are identified by the mapped network's node ids throughout the
physical stages.  An :class:`Atom` is the smallest placeable unit (a LUT or
a flip-flop); a :class:`Ble` pairs one LUT with at most one FF (the BLE
output is either the LUT or the FF, one config bit); a :class:`Cluster` is
a CLB's worth of BLEs.

:func:`build_atoms` lowers a :class:`~repro.mapping.result.MappingResult`
into atoms plus the *tunable groups* — for every TCON tree, the set of
alternative leaf drivers with their activation conditions, which the router
later turns into wire-sharing connections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.boolfunc import BoolExpr, bf_and, bf_not, bf_var
from repro.core.muxnet import InstrumentedDesign
from repro.errors import PackingError
from repro.mapping.result import MappingResult
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable

__all__ = [
    "Atom",
    "Ble",
    "Cluster",
    "TunableGroup",
    "PhysicalNetlist",
    "build_atoms",
]


@dataclass
class Atom:
    """A LUT or FF instance; ``output`` is the signal (node id) it drives."""

    kind: str  # "lut" | "ff"
    output: int
    inputs: tuple[int, ...]
    func: TruthTable | None = None
    ff_init: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("lut", "ff"):
            raise PackingError(f"bad atom kind {self.kind!r}")
        if self.kind == "ff" and len(self.inputs) != 1:
            raise PackingError("FF atom needs exactly one input")


@dataclass
class Ble:
    """One basic logic element: LUT and/or FF sharing an output pin."""

    index: int
    lut: Atom | None = None
    ff: Atom | None = None

    @property
    def output(self) -> int:
        if self.ff is not None:
            return self.ff.output
        assert self.lut is not None
        return self.lut.output

    @property
    def inputs(self) -> tuple[int, ...]:
        if self.lut is not None:
            return self.lut.inputs
        assert self.ff is not None
        return self.ff.inputs

    @property
    def uses_ff(self) -> bool:
        return self.ff is not None

    @property
    def internal_signals(self) -> set[int]:
        """Signals produced inside this BLE (LUT out and/or FF out)."""
        out = {self.output}
        if self.lut is not None and self.ff is not None:
            out.add(self.lut.output)
        return out


@dataclass
class Cluster:
    """A CLB's worth of BLEs plus its external connectivity."""

    index: int
    bles: list[Ble] = field(default_factory=list)

    def produced(self) -> set[int]:
        out: set[int] = set()
        for b in self.bles:
            out |= b.internal_signals
        return out

    def external_inputs(self) -> set[int]:
        produced = self.produced()
        need: set[int] = set()
        for b in self.bles:
            need.update(s for s in b.inputs if s not in produced)
        return need


@dataclass
class TunableGroup:
    """One TCON tree: alternative drivers of a single logical signal.

    ``root`` is the tree's output signal; ``options`` maps each candidate
    leaf driver signal to the parameter condition under which it is the
    active driver.  All options are pairwise mutually exclusive, which is
    what lets their routes share wires.
    """

    root: int
    options: list[tuple[int, BoolExpr]] = field(default_factory=list)


@dataclass
class PhysicalNetlist:
    """Everything the physical design stages operate on."""

    mapping: MappingResult
    atoms: list[Atom]
    pi_signals: list[int]
    po_signals: list[int]
    tunable_groups: dict[int, TunableGroup]
    producer: dict[int, Atom]

    @property
    def network(self) -> LogicNetwork:
        return self.mapping.network

    def signal_name(self, sig: int) -> str:
        return self.network.node_name(sig)


def _expand_tcon(
    mapping: MappingResult,
    param_index_of: dict[int, int],
    root: int,
    memo: dict[int, list[tuple[int, BoolExpr]]],
) -> list[tuple[int, BoolExpr]]:
    """All leaf drivers of a TCON subtree with their activation conditions."""
    got = memo.get(root)
    if got is not None:
        return got
    t = mapping.tcons[root]
    sel_idx = param_index_of[t.sel]
    sel = bf_var(sel_idx)
    out: list[tuple[int, BoolExpr]] = []
    for src, cond in ((t.source0, bf_not(sel)), (t.source1, sel)):
        if src in mapping.tcons:
            for leaf, sub in _expand_tcon(mapping, param_index_of, src, memo):
                out.append((leaf, bf_and(cond, sub)))
        else:
            out.append((src, cond))
    memo[root] = out
    return out


def build_atoms(
    mapping: MappingResult, design: InstrumentedDesign | None = None
) -> PhysicalNetlist:
    """Lower a mapping result to physical atoms and tunable groups.

    ``design`` supplies the parameter space for TCON conditions; mappings
    without TCONs (the conventional flow) may omit it.
    """
    net = mapping.network
    params = set(mapping.params)

    param_index_of: dict[int, int] = {}
    if design is not None:
        param_index_of = {
            nid: design.param_space.index_of(name)
            for name, nid in design.param_nodes.items()
        }
    elif mapping.tcons:
        raise PackingError("mapping has TCONs but no parameter space given")

    atoms: list[Atom] = []
    producer: dict[int, Atom] = {}

    for root, lut in sorted(mapping.luts.items()):
        a = Atom(
            kind="lut",
            output=root,
            inputs=lut.physical_inputs,
            func=lut.func,
        )
        atoms.append(a)
        producer[root] = a

    for latch in net.latches:
        if latch.driver < 0:
            raise PackingError(
                f"latch {net.node_name(latch.q)!r} undriven at packing"
            )
        a = Atom(
            kind="ff",
            output=latch.q,
            inputs=(latch.driver,),
            ff_init=1 if latch.init == 1 else 0,
        )
        atoms.append(a)
        producer[latch.q] = a

    memo: dict[int, list[tuple[int, BoolExpr]]] = {}
    groups: dict[int, TunableGroup] = {}
    for root in mapping.tcons:
        options = _expand_tcon(mapping, param_index_of, root, memo)
        groups[root] = TunableGroup(root=root, options=options)

    pi_signals = [
        pi for pi in net.pis if pi not in params
    ]
    po_signals = [net.require(n) for n in net.po_names]

    return PhysicalNetlist(
        mapping=mapping,
        atoms=atoms,
        pi_signals=pi_signals,
        po_signals=po_signals,
        tunable_groups=groups,
        producer=producer,
    )
