"""Greedy attraction-based clustering (the TPack step of TPaR).

VPack-style algorithm: pair each FF with its driving LUT when legal (the
LUT feeds only that FF), then grow clusters from a high-connectivity seed,
repeatedly absorbing the unclustered BLE with the highest attraction
(shared-signal count) that keeps the cluster's external input count within
the architecture bound.

Signals produced by TCONs count as external inputs of consuming clusters
(they arrive over the routing fabric like any net), but TCONs themselves
consume no BLEs — the area effect the paper's Fig. 3(b) illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.spec import ArchSpec
from repro.errors import PackingError
from repro.pack.cluster import Atom, Ble, Cluster, PhysicalNetlist

__all__ = ["PackedDesign", "pack_design"]


@dataclass
class PackedDesign:
    """Clusters plus signal directory for placement and routing."""

    physical: PhysicalNetlist
    arch: ArchSpec
    clusters: list[Cluster] = field(default_factory=list)
    cluster_of_signal: dict[int, int] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def n_bles(self) -> int:
        return sum(len(c.bles) for c in self.clusters)

    def stats(self) -> dict[str, float]:
        sizes = [len(c.bles) for c in self.clusters]
        return {
            "clusters": float(len(sizes)),
            "bles": float(sum(sizes)),
            "avg_fill": sum(sizes) / (len(sizes) * self.arch.n_ble)
            if sizes
            else 0.0,
        }


def _pair_bles(physical: PhysicalNetlist) -> list[Ble]:
    """Pair FFs with their driver LUTs where the pairing is free."""
    readers: dict[int, int] = {}
    for a in physical.atoms:
        for s in a.inputs:
            readers[s] = readers.get(s, 0) + 1
    # PO signals have an external reader
    for s in physical.po_signals:
        readers[s] = readers.get(s, 0) + 1

    luts = {a.output: a for a in physical.atoms if a.kind == "lut"}
    ffs = [a for a in physical.atoms if a.kind == "ff"]

    bles: list[Ble] = []
    used_luts: set[int] = set()
    idx = 0
    for ff in ffs:
        d = ff.inputs[0]
        host = luts.get(d)
        if (
            host is not None
            and d not in used_luts
            and readers.get(d, 0) == 1
            and d not in physical.tunable_groups
        ):
            # the LUT feeds only this FF: fuse into one BLE (FF output mode)
            bles.append(Ble(index=idx, lut=host, ff=ff))
            used_luts.add(d)
        else:
            bles.append(Ble(index=idx, lut=None, ff=ff))
        idx += 1
    for out, lut in sorted(luts.items()):
        if out not in used_luts:
            bles.append(Ble(index=idx, lut=lut))
            idx += 1
    return bles


def pack_design(physical: PhysicalNetlist, arch: ArchSpec) -> PackedDesign:
    """Cluster the physical netlist into CLBs."""
    bles = _pair_bles(physical)
    n = arch.n_ble
    max_in = arch.n_cluster_inputs

    # connectivity index: signal -> BLE indices touching it
    touching: dict[int, list[int]] = {}
    for b in bles:
        for s in set(b.inputs) | b.internal_signals:
            touching.setdefault(s, []).append(b.index)
    ble_by_index = {b.index: b for b in bles}

    unpacked: set[int] = {b.index for b in bles}
    clusters: list[Cluster] = []

    def feasible(cluster: Cluster, cand: Ble) -> bool:
        produced = cluster.produced() | cand.internal_signals
        need: set[int] = set()
        for b in cluster.bles + [cand]:
            need.update(s for s in b.inputs if s not in produced)
        return len(need) <= max_in

    while unpacked:
        # seed: the unclustered BLE with the most input pins (hard to place
        # later), ties broken by index for determinism
        seed_idx = max(unpacked, key=lambda i: (len(ble_by_index[i].inputs), -i))
        unpacked.discard(seed_idx)
        cluster = Cluster(index=len(clusters), bles=[ble_by_index[seed_idx]])

        while len(cluster.bles) < n:
            # candidates: unclustered BLEs sharing any signal with the cluster
            touched: dict[int, int] = {}
            csignals = cluster.produced()
            for b in cluster.bles:
                csignals |= set(b.inputs)
            for s in csignals:
                for i in touching.get(s, ()):
                    if i in unpacked:
                        touched[i] = touched.get(i, 0) + 1
            best = None
            best_score = -1
            for i, score in sorted(touched.items()):
                if score > best_score and feasible(cluster, ble_by_index[i]):
                    best, best_score = i, score
            if best is None:
                break
            unpacked.discard(best)
            cluster.bles.append(ble_by_index[best])
        clusters.append(cluster)

    packed = PackedDesign(physical=physical, arch=arch, clusters=clusters)
    for c in clusters:
        for b in c.bles:
            for s in b.internal_signals:
                if s in packed.cluster_of_signal:
                    raise PackingError(
                        f"signal {physical.signal_name(s)!r} produced twice"
                    )
                packed.cluster_of_signal[s] = c.index
    return packed
