"""TPack: clustering mapped logic into CLBs.

Atoms (LUTs and flip-flops) are paired into BLEs and greedily clustered
into CLBs under the cluster input-bandwidth constraint, in the style of
VPack/T-VPack as used by the paper's TPaR flow.  Parameters never occupy
pins (they are configuration, not signals), and TCON multiplexers occupy
no BLEs at all — their sharing happens in routing.
"""

from repro.pack.cluster import Atom, Ble, Cluster, PhysicalNetlist, build_atoms
from repro.pack.tpack import pack_design

__all__ = [
    "Atom",
    "Ble",
    "Cluster",
    "PhysicalNetlist",
    "build_atoms",
    "pack_design",
]
