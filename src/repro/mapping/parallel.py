"""Level-wave parallel cut enumeration (byte-identical to serial).

The priority-cuts forward pass is a topological sweep where each gate's
cut choice is a pure function of its fan-ins' *committed* state.  Nodes
that share a topological level therefore have no data dependencies on one
another: the sweep is a sequence of *waves*, one per level, and every
wave fans out over the campaign's one shared worker pool via
:class:`~repro.util.intra.IntraPool` — the same no-nested-pools statics
protocol the region-parallel placer and round-parallel router use.

**Determinism.**  Workers run the *same methods* the serial pass runs
(:meth:`PriorityCutMapper._enumerate_node` /
:meth:`~PriorityCutMapper._recover_node`, on a reconstructed shell
mapper), over input cuts whose costs the parent stamps before shipping —
exactly the values the serial pass's lazy memo would produce.  The parent
commits results level by level in topological order, so the flat arrays
evolve identically and the chosen mapping is byte-identical at any worker
count.  ``intra`` is therefore never part of any pipeline cache key.

**Protocol.**  One static blob per ``map()`` run carries the mapper
configuration and fan-in topology under a fresh token; workers cache the
prepared shell.  Each wave ships, per contiguous chunk of the level: the
node ids, their fan-ins' cut lists (leaves plus stamped costs) and a leaf
environment (arrival / normalized area flow for every referenced leaf).
Waves smaller than :data:`MIN_WAVE` nodes run inline — payload pickling
would cost more than the merges.

:class:`~repro.errors.MappingError` raised in a worker (macro over K
inputs, unmappable fan-in) is not a pool error: it propagates to the
parent and fails the stage, same as serial.
"""

from __future__ import annotations

from uuid import uuid4

from repro.mapping.cuts import Cut

__all__ = ["MIN_WAVE", "wave_forward_pass", "wave_recover_pass", "run_wave"]

#: Levels with fewer gates than this run inline in the parent: shipping a
#: tiny wave costs more in pickling than the merges it offloads.
MIN_WAVE = 24

_WAVE_STAMP = 1


# -- worker side -------------------------------------------------------------


def prepare_static(blob: dict):
    """Build the worker-side shell mapper from the shipped configuration.

    The shell reproduces the parent mapper's per-node decision code: the
    ``shell`` tag picks the class whose rank functions match (see
    ``PriorityCutMapper.wave_shell``).  Flat per-run arrays are replaced
    per payload with dict-backed views covering exactly the leaves the
    chunk's merges can touch.
    """
    from repro.mapping.mapper_base import PriorityCutMapper
    from repro.mapping.simplemap import SimpleMap

    cls = {"priority": PriorityCutMapper, "simple": SimpleMap}[blob["shell"]]
    shell = cls.__new__(cls)
    PriorityCutMapper.__init__(
        shell,
        k=blob["k"],
        cut_limit=blob["cut_limit"],
        area_rounds=0,
        free_leaves=blob["free"],
        boundary=blob["boundary"],
        macro_nodes=blob["macro"],
        max_total_leaves=blob["cap"],
    )
    shell._net = _NetShim(blob["fanins"], blob["names"])
    shell._stamp = _WAVE_STAMP
    return shell


class _NetShim:
    """Just enough of :class:`LogicNetwork` for the per-node kernels."""

    __slots__ = ("_fanins", "_names")

    def __init__(self, fanins, names):
        self._fanins = fanins
        self._names = names

    def fanins(self, nid: int):
        return self._fanins[nid]

    def node_name(self, nid: int) -> str:
        return self._names[nid]


def _cut_in(ser) -> Cut:
    leaves, arr, size, af, stamped = ser
    c = Cut(leaves)
    if stamped:
        c.arr = arr
        c.size = size
        c.af = af
        c.stamp = _WAVE_STAMP
    return c


def _cut_out(c: Cut):
    return (c.leaves, c.arr, c.size, c.af, c.stamp == _WAVE_STAMP)


def run_wave(shell, payload):
    """Worker entry: run one chunk of one wave on the shell mapper.

    ``payload`` is ``(kind, mode, nids, cutlists, env_arr, env_laf)``
    where ``kind`` is ``"fwd"`` or ``"rec"``; ``mode`` is ``depth_mode``
    for forward waves and ``{nid: (required, prev_best_ser)}`` for
    recovery waves.  Returns one entry per node, in payload order.
    """
    kind, mode, nids, cutlists, env_arr, env_laf = payload
    shell._arrival = env_arr
    shell._laf_norm = env_laf
    shell._cuts = {
        f: [_cut_in(s) for s in sers] for f, sers in cutlists.items()
    }
    out = []
    if kind == "fwd":
        for nid in nids:
            best, visible = shell._enumerate_node(nid, mode)
            out.append((_cut_out(best), [_cut_out(c) for c in visible]))
    else:
        shell._best = {}
        for nid in nids:
            req, prev_ser = mode[nid]
            shell._best[nid] = None if prev_ser is None else _cut_in(prev_ser)
            got = shell._recover_node(nid, req)
            if got is None:
                out.append(None)
            else:
                best, visible = got
                out.append((_cut_out(best), [_cut_out(c) for c in visible]))
    return out


# -- parent side -------------------------------------------------------------


class _WavePlan:
    """Per-``map()``-run wave schedule: topological levels plus the
    statics token/blob shared by every pass of the run."""

    __slots__ = ("levels", "token", "blob")

    def __init__(self, levels, token, blob):
        self.levels = levels
        self.token = token
        self.blob = blob


def _ensure_plan(mapper) -> _WavePlan:
    if mapper._wave is not None:
        return mapper._wave
    net = mapper._net
    level = [0] * net.n_nodes
    gates = set(mapper._gate_order)
    by_level: dict[int, list[int]] = {}
    for nid in mapper._order:
        if nid not in gates:
            continue
        lv = 1 + max(level[f] for f in net.fanins(nid))
        level[nid] = lv
        by_level.setdefault(lv, []).append(nid)
    blob = {
        "shell": type(mapper).wave_shell,
        "k": mapper.k,
        "cut_limit": mapper.cut_limit,
        "cap": mapper.cap,
        "free": tuple(sorted(mapper.free)),
        "boundary": tuple(sorted(mapper.boundary)),
        "macro": tuple(sorted(mapper.macro_nodes)),
        "fanins": tuple(
            tuple(net.fanins(nid)) if nid in gates else ()
            for nid in range(net.n_nodes)
        ),
        "names": tuple(net.node_name(nid) for nid in range(net.n_nodes)),
    }
    plan = _WavePlan(
        [by_level[lv] for lv in sorted(by_level)],
        f"map/{uuid4().hex}",
        blob,
    )
    mapper._wave = plan
    return plan


def _ship_chunk(mapper, nids, extra_cuts=()):
    """Cut lists + leaf environment for one chunk of a wave.

    Every shipped cut is stamped parent-side first — the exact floats the
    serial pass's lazy memo would compute — so worker merges start from
    identical state.
    """
    net = mapper._net
    cutlists = {}
    env_arr = {}
    env_laf = {}
    arrival = mapper._arrival
    laf_norm = mapper._laf_norm

    def add_leaves(leaves):
        for leaf in leaves:
            if leaf not in env_arr:
                env_arr[leaf] = arrival[leaf]
                env_laf[leaf] = laf_norm[leaf]

    for nid in nids:
        for f in net.fanins(nid):
            if f in cutlists:
                continue
            sers = []
            for c in mapper._cuts[f]:
                mapper._compute_costs(c)
                add_leaves(c.leaves)
                sers.append(_cut_out_parent(c, mapper._stamp))
            cutlists[f] = sers
    for c in extra_cuts:
        mapper._compute_costs(c)
        add_leaves(c.leaves)
    return cutlists, env_arr, env_laf


def _cut_out_parent(c: Cut, stamp: int):
    return (c.leaves, c.arr, c.size, c.af, c.stamp == stamp)


def _cut_in_parent(ser, stamp: int) -> Cut:
    leaves, arr, size, af, stamped = ser
    c = Cut(leaves)
    if stamped:
        c.arr = arr
        c.size = size
        c.af = af
        c.stamp = stamp
    return c


def _map_wave(mapper, plan, payloads):
    return mapper.intra.map_round(
        "repro.mapping.parallel", "run_wave", plan.token, plan.blob, payloads
    )


def wave_forward_pass(mapper, depth_mode: bool) -> None:
    """Forward pass with per-level fan-out; commits in topological order."""
    plan = _ensure_plan(mapper)
    stamp = mapper._stamp
    for wave in plan.levels:
        if len(wave) < max(MIN_WAVE, 2 * mapper.intra.workers):
            for nid in wave:
                best, visible = mapper._enumerate_node(nid, depth_mode)
                mapper._commit_node(nid, best, visible)
            continue
        chunks = mapper.intra.chunks(len(wave))
        payloads = []
        for a, b in chunks:
            nids = wave[a:b]
            cutlists, env_arr, env_laf = _ship_chunk(mapper, nids)
            payloads.append(
                ("fwd", depth_mode, nids, cutlists, env_arr, env_laf)
            )
        results = _map_wave(mapper, plan, payloads)
        for (a, b), chunk_out in zip(chunks, results):
            for nid, (best_ser, visible_sers) in zip(wave[a:b], chunk_out):
                best = _cut_in_parent(best_ser, stamp)
                visible = [_cut_in_parent(s, stamp) for s in visible_sers]
                mapper._commit_node(nid, best, visible)


def wave_recover_pass(mapper, required: dict[int, float]) -> None:
    """Re-merging area-recovery pass with per-level fan-out."""
    from repro.mapping.mapper_base import _INF

    plan = _ensure_plan(mapper)
    stamp = mapper._stamp
    macro = mapper.macro_nodes
    for wave in plan.levels:
        nids = [nid for nid in wave if nid not in macro]
        if len(nids) < max(MIN_WAVE, 2 * mapper.intra.workers):
            for nid in nids:
                out = mapper._recover_node(nid, required.get(nid, _INF))
                if out is not None:
                    mapper._commit_node(nid, *out)
            continue
        chunks = mapper.intra.chunks(len(nids))
        payloads = []
        for a, b in chunks:
            part = nids[a:b]
            prevs = [mapper._best[nid] for nid in part]
            cutlists, env_arr, env_laf = _ship_chunk(
                mapper, part, extra_cuts=[c for c in prevs if c is not None]
            )
            mode = {
                nid: (
                    required.get(nid, _INF),
                    None
                    if prev is None
                    else _cut_out_parent(prev, stamp),
                )
                for nid, prev in zip(part, prevs)
            }
            payloads.append(("rec", mode, part, cutlists, env_arr, env_laf))
        results = _map_wave(mapper, plan, payloads)
        for (a, b), chunk_out in zip(chunks, results):
            for nid, got in zip(nids[a:b], chunk_out):
                if got is None:
                    continue
                best_ser, visible_sers = got
                best = _cut_in_parent(best_ser, stamp)
                visible = [_cut_in_parent(s, stamp) for s in visible_sers]
                mapper._commit_node(nid, best, visible)
