"""SimpleMap: a structural, depth-oriented mapper without area recovery.

This models the "SM (SimpleMap)" conventional mapper of the paper's Table I:
cuts are chosen purely for depth (ties broken on cut size), no area-flow
recovery rounds run, and duplication along reconvergent paths is accepted.
On fan-out-heavy instrumented netlists this inflates area noticeably —
exactly the behaviour the paper's comparison relies on.
"""

from __future__ import annotations

from typing import Collection

from repro.mapping.mapper_base import PriorityCutMapper
from repro.mapping.cuts import Cut, cut_size

__all__ = ["SimpleMap"]


class SimpleMap(PriorityCutMapper):
    """Depth-only structural mapper (no area recovery)."""

    name = "simplemap"
    wave_shell = "simple"

    def __init__(
        self,
        k: int = 6,
        cut_limit: int = 6,
        *,
        boundary: Collection[int] = (),
        free_leaves: Collection[int] = (),
        forced_roots: Collection[int] = (),
        macro_nodes: Collection[int] = (),
        intra=None,
    ) -> None:
        super().__init__(
            k=k,
            cut_limit=cut_limit,
            area_rounds=0,
            boundary=boundary,
            free_leaves=free_leaves,
            forced_roots=forced_roots,
            macro_nodes=macro_nodes,
            intra=intra,
        )

    def _rank_depth(self, cut: Cut):
        # Structural mapping ignores area flow entirely: depth, then the
        # *smallest* cut wins ties.  Small cuts keep the priority lists
        # depth-accurate but fragment the cover into many LUTs — the
        # no-area-recovery behaviour the SM column exhibits in the paper.
        return (self._cut_arrival(cut), len(cut))

    def _merge_rank_mode(self, depth_mode: bool) -> str:
        return "depth-size" if depth_mode else "area"
