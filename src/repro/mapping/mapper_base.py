"""Generic priority-cuts technology mapper.

:class:`PriorityCutMapper` implements the classical two-phase scheme:

1. **Forward pass** — enumerate priority cuts per node in topological order,
   tracking arrival times (LUT levels); choose a depth-optimal cut per node.
2. **Area recovery** (optional, ``area_rounds`` > 0) — compute per-node
   required times and reference counts from the current cover, then
   re-choose cuts minimizing area flow wherever slack permits, and re-cover.
3. **Covering** — walk from the required roots (PO drivers, latch drivers,
   observability boundaries) emitting one :class:`LutImpl` per needed node.

Subclasses configure ranking (SimpleMap ranks by depth only; AbcMap adds
area flow and recovery rounds) and may override node handling (TconMap
diverts parameter-muxes to TCONs).

Observability boundaries: node ids in ``boundary`` expose only their trivial
cut to fan-outs, so no downstream LUT can absorb them — this models debug
flows in which an instrumented signal must remain physically present.
"""

from __future__ import annotations

from typing import Collection, Iterable

from repro.errors import MappingError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable
from repro.mapping.cuts import Cut, cut_size, merge_cut_lists
from repro.mapping.result import LutImpl, MappingResult

__all__ = ["PriorityCutMapper", "cone_function"]

_INF = float("inf")


def cone_function(
    net: LogicNetwork, root: int, leaves: tuple[int, ...]
) -> TruthTable:
    """Collapse the cone between ``leaves`` and ``root`` into one function.

    Variable ``i`` of the result corresponds to ``leaves[i]``.  Raises
    :class:`MappingError` if the cone escapes the leaf set (i.e. ``leaves``
    is not actually a cut of ``root``).
    """
    n_vars = len(leaves)
    var_of = {leaf: i for i, leaf in enumerate(leaves)}
    memo: dict[int, TruthTable] = {}

    def build(nid: int) -> TruthTable:
        if nid in var_of:
            return TruthTable.var(var_of[nid], n_vars)
        got = memo.get(nid)
        if got is not None:
            return got
        if net.kind(nid) != NodeKind.GATE:
            raise MappingError(
                f"cone of {net.node_name(root)!r} escapes its cut at "
                f"{net.node_name(nid)!r}"
            )
        func = net.func(nid)
        assert func is not None
        if func.n_vars == 0:
            tt = TruthTable.const(func.bits & 1, n_vars)
        else:
            children = [build(f) for f in net.fanins(nid)]
            tt = func.compose(children, n_vars=n_vars)
        memo[nid] = tt
        return tt

    return build(root)


class PriorityCutMapper:
    """Configurable priority-cuts LUT mapper.

    Parameters
    ----------
    k:
        LUT input count (physical pins).
    cut_limit:
        Priority cuts kept per node.
    area_rounds:
        Area-flow recovery rounds after the depth-oriented pass.
    free_leaves:
        Parameter node ids that do not count toward ``k`` (TLUT folding).
    boundary:
        Observability boundaries (see module docstring).
    max_total_leaves:
        Cap on total cut leaves including free ones (truth-table width).
    """

    name = "priority-cuts"

    def __init__(
        self,
        k: int = 6,
        cut_limit: int = 8,
        area_rounds: int = 2,
        *,
        free_leaves: Collection[int] = (),
        boundary: Collection[int] = (),
        forced_roots: Collection[int] = (),
        macro_nodes: Collection[int] = (),
        max_total_leaves: int | None = None,
    ) -> None:
        if k < 2:
            raise MappingError(f"K must be >= 2, got {k}")
        self.k = k
        self.cut_limit = cut_limit
        self.area_rounds = area_rounds
        self.free = frozenset(free_leaves)
        # macro nodes (pre-synthesized debug cores) are both boundaries and
        # pinned to their structural 1:1 implementation
        self.macro_nodes = frozenset(macro_nodes)
        self.boundary = frozenset(boundary) | self.macro_nodes
        # forced roots: signals that must exist physically (observability),
        # yet may still be duplicated into readers' cones
        self.forced_roots = frozenset(forced_roots)
        self.cap = max_total_leaves if max_total_leaves is not None else k + 6

        # per-run state
        self._net: LogicNetwork | None = None
        self._order: list[int] = []
        self._cuts: dict[int, list[Cut]] = {}
        self._best: dict[int, Cut] = {}
        self._arrival: dict[int, float] = {}
        self._est_refs: dict[int, float] = {}

    # -- hooks for subclasses ------------------------------------------------

    def _is_source_like(self, nid: int) -> bool:
        """Nodes treated as mapping inputs (no LUT emitted)."""
        net = self._net
        assert net is not None
        return net.kind(nid) != NodeKind.GATE or nid in self.free

    def _forced_roots(self) -> set[int]:
        """Extra nodes that must appear as LUT roots besides POs/latches."""
        return set(self.boundary) | set(self.forced_roots)

    def _handle_special(self, nid: int, result: MappingResult) -> bool:
        """Covering hook: return True if the node was emitted specially
        (e.g. as a TCON) and its own dependencies were pushed by the caller
        via :meth:`_special_deps`."""
        return False

    def _special_deps(self, nid: int) -> tuple[int, ...]:
        return ()

    # -- cost functions ---------------------------------------------------------

    def _cut_arrival(self, cut: Cut) -> float:
        arr = 0.0
        for leaf in cut:
            a = self._arrival.get(leaf, 0.0)
            if a > arr:
                arr = a
        return arr + 1.0

    def _cut_area_flow(self, cut: Cut) -> float:
        af = 1.0
        for leaf in cut:
            if leaf in self.free:
                continue
            laf = self._leaf_af.get(leaf, 0.0)
            refs = max(1.0, self._est_refs.get(leaf, 1.0))
            af += laf / refs
        return af

    def _rank_depth(self, cut: Cut):
        return (
            self._cut_arrival(cut),
            cut_size(cut, self.free),
            self._cut_area_flow(cut),
        )

    def _rank_area(self, cut: Cut):
        return (
            self._cut_area_flow(cut),
            self._cut_arrival(cut),
            cut_size(cut, self.free),
        )

    # -- main entry -------------------------------------------------------------

    def map(self, net: LogicNetwork) -> MappingResult:
        """Map ``net``; returns a verified-structure :class:`MappingResult`."""
        self._net = net
        self._order = net.topo_order()
        self._est_refs = {
            nid: float(c) for nid, c in enumerate(net.fanout_counts())
        }
        self._leaf_af: dict[int, float] = {}

        self._forward_pass(depth_mode=True)
        # depth-optimal arrivals anchor the required times of every later
        # area-recovery round, so recovery can never worsen any root's depth
        self._target_arrival = dict(self._arrival)
        result = self._cover()

        for _ in range(self.area_rounds):
            required = self._compute_required(result)
            refs = self._cover_refs(result)
            self._est_refs = {
                nid: float(max(1, refs.get(nid, 0))) for nid in net.nodes()
            }
            self._recover_area(required)
            result = self._cover()
        return result

    # -- passes -----------------------------------------------------------------

    def _forward_pass(self, depth_mode: bool) -> None:
        net = self._net
        assert net is not None
        self._cuts = {}
        self._best = {}
        self._arrival = {}
        self._leaf_af = {}
        rank = self._rank_depth if depth_mode else self._rank_area

        for nid in self._order:
            trivial = frozenset((nid,))
            if self._is_source_like(nid):
                self._cuts[nid] = [trivial]
                self._arrival[nid] = 0.0
                self._leaf_af[nid] = 0.0
                continue
            fanins = net.fanins(nid)
            if not fanins:  # constant gate: a 0-input LUT
                self._cuts[nid] = [trivial]
                self._best[nid] = frozenset()
                self._arrival[nid] = 0.0
                self._leaf_af[nid] = 1.0
                continue

            if nid in self.macro_nodes:
                # pre-synthesized macros keep their structural 1:1 shape
                direct = frozenset(fanins)
                if cut_size(direct, self.free) > self.k:
                    raise MappingError(
                        f"macro node {net.node_name(nid)!r} exceeds K inputs"
                    )
                merged = [direct]
            else:
                merged = merge_cut_lists(
                    [self._cuts[f] for f in fanins],
                    self.k,
                    self.cut_limit,
                    self.free,
                    rank,
                    self.cap,
                )
                if not merged:
                    # fall back: direct fan-in cut (always legal for fanin<=k)
                    direct = frozenset(fanins)
                    if cut_size(direct, self.free) > self.k:
                        raise MappingError(
                            f"node {net.node_name(nid)!r} has unmappable fan-in"
                        )
                    merged = [direct]
            best = min(merged, key=rank)
            self._best[nid] = best
            self._arrival[nid] = self._cut_arrival(best)
            self._leaf_af[nid] = self._cut_area_flow(best)

            if nid in self.boundary:
                visible = [trivial]
            else:
                visible = merged + [trivial]
            self._cuts[nid] = visible

    def _recover_area(self, required: dict[int, float]) -> None:
        """Re-choose cuts minimizing area flow where timing slack permits."""
        net = self._net
        assert net is not None
        for nid in self._order:
            if self._is_source_like(nid) or nid in self.macro_nodes:
                continue
            fanins = net.fanins(nid)
            if not fanins:
                continue
            merged = merge_cut_lists(
                [self._cuts[f] for f in fanins],
                self.k,
                self.cut_limit,
                self.free,
                self._rank_area,
                self.cap,
            )
            prev_best = self._best.get(nid)
            if prev_best is not None and prev_best not in merged:
                merged = merged + [prev_best]
            if not merged:
                continue
            req = required.get(nid, _INF)
            feasible = [c for c in merged if self._cut_arrival(c) <= req]
            if feasible:
                best = min(feasible, key=self._rank_area)
            elif prev_best is not None:
                # No cut meets the deadline (area pruning lost the fast
                # ones): keep the previous depth-optimal choice so recovery
                # can never worsen the mapping's depth.
                best = prev_best
            else:
                best = min(merged, key=self._rank_area)
            self._best[nid] = best
            self._arrival[nid] = self._cut_arrival(best)
            self._leaf_af[nid] = self._cut_area_flow(best)
            trivial = frozenset((nid,))
            if nid in self.boundary:
                self._cuts[nid] = [trivial]
            else:
                self._cuts[nid] = merged + [trivial]

    # -- covering ----------------------------------------------------------------

    def _roots(self) -> set[int]:
        net = self._net
        assert net is not None
        roots: set[int] = set()
        for po in net.po_names:
            roots.add(net.require(po))
        for latch in net.latches:
            if latch.driver >= 0:
                roots.add(latch.driver)
        roots |= self._forced_roots()
        return {r for r in roots if not self._is_source_like(r)}

    def _cover(self) -> MappingResult:
        net = self._net
        assert net is not None
        result = MappingResult(network=net, k=self.k, params=self.free)
        stack = sorted(self._roots())
        visited: set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in visited or self._is_source_like(nid):
                continue
            visited.add(nid)
            if self._handle_special(nid, result):
                stack.extend(self._special_deps(nid))
                continue
            cut = self._best.get(nid)
            if cut is None:
                raise MappingError(
                    f"no cut chosen for {net.node_name(nid)!r}"
                )
            leaves = tuple(sorted(cut))
            func = cone_function(net, nid, leaves)
            params = tuple(l for l in leaves if l in self.free)
            result.luts[nid] = LutImpl(
                root=nid, leaves=leaves, func=func, param_leaves=params
            )
            stack.extend(l for l in leaves if l not in visited)
        return result

    # -- timing/refs over a cover -----------------------------------------------

    def _compute_required(self, result: MappingResult) -> dict[int, float]:
        """Required times: every root pinned to its depth-optimal arrival."""
        target = float(result.depth())
        required: dict[int, float] = {}
        for r in self._roots():
            required[r] = self._target_arrival.get(r, target)
        for nid in reversed(self._order):
            if nid not in result.luts:
                continue
            req = required.get(nid, target)
            lut = result.luts[nid]
            for leaf in lut.leaves:
                if self._is_source_like(leaf):
                    continue
                cur = required.get(leaf, _INF)
                required[leaf] = min(cur, req - 1.0)
        return required

    def _cover_refs(self, result: MappingResult) -> dict[int, int]:
        """How many LUTs of the current cover reference each node."""
        refs: dict[int, int] = {}
        for lut in result.luts.values():
            for leaf in lut.leaves:
                refs[leaf] = refs.get(leaf, 0) + 1
        for t in result.tcons.values():
            for s in (t.source0, t.source1):
                refs[s] = refs.get(s, 0) + 1
        return refs
