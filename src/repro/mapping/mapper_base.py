"""Generic priority-cuts technology mapper (flat bitset engine).

:class:`PriorityCutMapper` implements the classical two-phase scheme:

1. **Forward pass** — enumerate priority cuts per node in topological order,
   tracking arrival times (LUT levels); choose a depth-optimal cut per node.
2. **Area recovery** (optional, ``area_rounds`` > 0) — compute per-node
   required times and reference counts from the current cover, then
   re-choose cuts minimizing area flow wherever slack permits, and re-cover.
3. **Covering** — walk from the required roots (PO drivers, latch drivers,
   observability boundaries) emitting one :class:`LutImpl` per needed node.

Subclasses configure ranking (SimpleMap ranks by depth only; AbcMap adds
area flow and recovery rounds) and may override node handling (TconMap
diverts parameter-muxes to TCONs).

Observability boundaries: node ids in ``boundary`` expose only their trivial
cut to fan-outs, so no downstream LUT can absorb them — this models debug
flows in which an instrumented signal must remain physically present.

**Engine notes.**  Per-run state lives in flat lists indexed by the dense
node id (cut arrays, arrivals, area flows, reference estimates); cut leaf
sets are integer bitmasks (see :mod:`repro.mapping.cuts`).  Cut costs are
memoized on the cut object under a per-pass stamp: within one forward or
recovery pass a cut's leaf values are final before any fan-out ranks it
(leaves precede users in topological order), so arrival and area flow are
computed once per cut per pass instead of once per ranking.  Cone truth
tables are memoized per ``(root, leaves)`` for the whole ``map()`` run —
the depth cover, every recovery cover and TconMap's TLUT emission reuse
them — and the underlying ``compose`` calls are value-cached process-wide,
so re-mapping after a parameterisation change reuses unchanged cut
functions.  The chosen mapping is a pure function of the network and the
mapper configuration; when an :class:`~repro.util.intra.IntraPool` is
supplied, cut enumeration fans out level by level
(:mod:`repro.mapping.parallel`) and remains byte-identical to the serial
pass at any worker count.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Collection

from repro.errors import MappingError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable
from repro.mapping.cuts import Cut, merge_ranked
from repro.mapping.result import LutImpl, MappingResult

__all__ = ["PriorityCutMapper", "cone_function"]

_INF = float("inf")


@lru_cache(maxsize=4096)
def _compose_cached(
    func: TruthTable, children: tuple[TruthTable, ...], n_vars: int
) -> TruthTable:
    """Value-keyed compose cache shared by every cone collapse in the
    process.  Truth tables hash by content, so structurally identical
    cones hit regardless of which network (or which stage run) asks."""
    return func.compose(children, n_vars=n_vars)


def cone_function(
    net: LogicNetwork, root: int, leaves: tuple[int, ...]
) -> TruthTable:
    """Collapse the cone between ``leaves`` and ``root`` into one function.

    Variable ``i`` of the result corresponds to ``leaves[i]``.  Raises
    :class:`MappingError` if the cone escapes the leaf set (i.e. ``leaves``
    is not actually a cut of ``root``).
    """
    n_vars = len(leaves)
    var_of = {leaf: i for i, leaf in enumerate(leaves)}
    memo: dict[int, TruthTable] = {}

    def build(nid: int) -> TruthTable:
        if nid in var_of:
            return TruthTable.var(var_of[nid], n_vars)
        got = memo.get(nid)
        if got is not None:
            return got
        if net.kind(nid) != NodeKind.GATE:
            raise MappingError(
                f"cone of {net.node_name(root)!r} escapes its cut at "
                f"{net.node_name(nid)!r}"
            )
        func = net.func(nid)
        assert func is not None
        if func.n_vars == 0:
            tt = TruthTable.const(func.bits & 1, n_vars)
        else:
            children = tuple(build(f) for f in net.fanins(nid))
            tt = _compose_cached(func, children, n_vars)
        memo[nid] = tt
        return tt

    return build(root)


class PriorityCutMapper:
    """Configurable priority-cuts LUT mapper.

    Parameters
    ----------
    k:
        LUT input count (physical pins).
    cut_limit:
        Priority cuts kept per node.
    area_rounds:
        Area-flow recovery rounds after the depth-oriented pass.
    free_leaves:
        Parameter node ids that do not count toward ``k`` (TLUT folding).
    boundary:
        Observability boundaries (see module docstring).
    max_total_leaves:
        Cap on total cut leaves including free ones (truth-table width).
    intra:
        Optional :class:`~repro.util.intra.IntraPool`: cut enumeration
        and recovery fan out level by level on the shared campaign pool
        (:mod:`repro.mapping.parallel`).  Pure execution — the chosen
        mapping is byte-identical at any worker count, so ``intra`` is
        never part of any cache key.
    """

    name = "priority-cuts"

    #: Which worker-side shell class reproduces this mapper's rank
    #: functions (see repro.mapping.parallel); subclasses overriding
    #: ``_rank_depth``/``_rank_area`` must register there or leave
    #: ``intra`` unset.
    wave_shell = "priority"

    def __init__(
        self,
        k: int = 6,
        cut_limit: int = 8,
        area_rounds: int = 2,
        *,
        free_leaves: Collection[int] = (),
        boundary: Collection[int] = (),
        forced_roots: Collection[int] = (),
        macro_nodes: Collection[int] = (),
        max_total_leaves: int | None = None,
        intra=None,
    ) -> None:
        if k < 2:
            raise MappingError(f"K must be >= 2, got {k}")
        self.k = k
        self.cut_limit = cut_limit
        self.area_rounds = area_rounds
        self.free = frozenset(free_leaves)
        # macro nodes (pre-synthesized debug cores) are both boundaries and
        # pinned to their structural 1:1 implementation
        self.macro_nodes = frozenset(macro_nodes)
        self.boundary = frozenset(boundary) | self.macro_nodes
        # forced roots: signals that must exist physically (observability),
        # yet may still be duplicated into readers' cones
        self.forced_roots = frozenset(forced_roots)
        self.cap = max_total_leaves if max_total_leaves is not None else k + 6
        self.intra = intra

        # per-run state (flat arrays indexed by dense node id)
        self._net: LogicNetwork | None = None
        self._order: list[int] = []
        self._gate_order: list[int] = []
        self._trivial_order: list[int] = []
        self._recover_order: list[int] = []
        self._cuts: list[list[Cut] | None] = []
        self._best: list[Cut | None] = []
        self._arrival: list[float] = []
        self._leaf_af: list[float] = []
        self._laf_norm: list[float] = []
        self._est_refs: list[float] = []
        self._stamp = 0
        self._cone_cache: dict[tuple[int, tuple[int, ...]], TruthTable] = {}
        self._lut_memo: dict[int, LutImpl] = {}
        self._wave = None

    # -- hooks for subclasses ------------------------------------------------

    def _is_source_like(self, nid: int) -> bool:
        """Nodes treated as mapping inputs (no LUT emitted)."""
        net = self._net
        assert net is not None
        return net.kind(nid) != NodeKind.GATE or nid in self.free

    def _forced_roots(self) -> set[int]:
        """Extra nodes that must appear as LUT roots besides POs/latches."""
        return set(self.boundary) | set(self.forced_roots)

    def _handle_special(self, nid: int, result: MappingResult) -> bool:
        """Covering hook: return True if the node was emitted specially
        (e.g. as a TCON) and its own dependencies were pushed by the caller
        via :meth:`_special_deps`."""
        return False

    def _special_deps(self, nid: int) -> tuple[int, ...]:
        return ()

    # -- cost functions ---------------------------------------------------------

    def _compute_costs(self, cut: Cut) -> Cut:
        """Arrival/area-flow/size of ``cut``, memoized per pass stamp.

        Safe because leaves precede every user of a cut in topological
        order: by the time any node ranks the cut, all of its leaves'
        values are final for the running pass.  Cuts built by
        :func:`~repro.mapping.cuts.merge_ranked` arrive pre-stamped; this
        lazy path serves the rest (trivial cuts, direct-fan-in fallbacks,
        single-fan-in pass-throughs, previous-pass bests).
        """
        if cut.stamp == self._stamp:
            return cut
        free = self.free
        arrival = self._arrival
        laf_norm = self._laf_norm
        arr = 0.0
        af = 1.0
        size = 0
        for leaf in cut.leaves:
            a = arrival[leaf]
            if a > arr:
                arr = a
            if leaf in free:
                continue
            size += 1
            af += laf_norm[leaf]
        cut.arr = arr + 1.0
        cut.af = af
        cut.size = size
        cut.stamp = self._stamp
        return cut

    def _cut_arrival(self, cut: Cut) -> float:
        return self._compute_costs(cut).arr

    def _cut_area_flow(self, cut: Cut) -> float:
        return self._compute_costs(cut).af

    def _rank_depth(self, cut: Cut):
        c = self._compute_costs(cut)
        return (c.arr, c.size, c.af)

    def _rank_area(self, cut: Cut):
        c = self._compute_costs(cut)
        return (c.af, c.arr, c.size)

    # merge_ranked-mode counterparts of the Cut-based ranks above; a
    # subclass overriding _rank_depth/_rank_area must keep this mapping
    # consistent (see cuts.RANK_MODES) so in-merge pruning and the final
    # ranked choice order cuts the same way.  The multi-fan-in best comes
    # straight off the sorted merge output, so the merge's rank mode IS
    # the pass's rank there; the Cut-based ranks serve the single-fan-in
    # pass-through and fallback paths.
    def _merge_rank_mode(self, depth_mode: bool) -> str:
        return "depth" if depth_mode else "area"

    def _merge_fanins(self, fanins, depth_mode: bool) -> list[Cut]:
        return merge_ranked(
            [self._cuts[f] for f in fanins],
            self.k,
            self.cut_limit,
            self.cap,
            self._arrival,
            self._laf_norm,
            self.free,
            self._merge_rank_mode(depth_mode),
            self._stamp,
        )

    def _direct_cut(self, fanins) -> Cut | None:
        """The structural 1:1 cut, or None if it exceeds K physical pins."""
        direct = Cut.from_leaves(fanins)
        if sum(1 for l in direct.leaves if l not in self.free) > self.k:
            return None
        return direct

    # -- main entry -------------------------------------------------------------

    def map(self, net: LogicNetwork) -> MappingResult:
        """Map ``net``; returns a verified-structure :class:`MappingResult`."""
        self._net = net
        self._order = net.topo_order()
        self._est_refs = [float(c) for c in net.fanout_counts()]
        self._leaf_af = [0.0] * net.n_nodes
        self._cone_cache = {}
        self._lut_memo = {}
        self._wave = None
        # split the topological order once: every pass walks the same
        # gate/trivial partition, so the kind checks run once per map()
        self._gate_order = []
        self._trivial_order = []
        for nid in self._order:
            if self._is_source_like(nid) or not net.fanins(nid):
                self._trivial_order.append(nid)
            else:
                self._gate_order.append(nid)
        self._recover_order = [
            nid for nid in self._gate_order if nid not in self.macro_nodes
        ]

        self._forward_pass(depth_mode=True)
        # depth-optimal arrivals anchor the required times of every later
        # area-recovery round, so recovery can never worsen any root's depth
        self._target_arrival = list(self._arrival)
        result = self._cover()

        for rnd in range(self.area_rounds):
            required = self._compute_required(result)
            refs = self._cover_refs(result)
            self._est_refs = [
                float(max(1, refs.get(nid, 0))) for nid in range(net.n_nodes)
            ]
            # new reference counts re-normalize every leaf's area flow,
            # including nodes the recovery pass skips (sources, macros)
            self._laf_norm = [
                af / (r if r > 1.0 else 1.0)
                for af, r in zip(self._leaf_af, self._est_refs)
            ]
            # Hybrid recovery: the first round re-merges cuts under the
            # area rank (fresh area-oriented candidates); later rounds only
            # re-select among each node's stored priority cuts under the
            # updated reference counts.  Re-merging every round buys ~no
            # further area (<0.3% on the paper suite) at ~2x the runtime.
            self._recover_area(required, remerge=(rnd == 0))
            result = self._cover()
        return result

    # -- per-node kernels ----------------------------------------------------
    #
    # The serial passes and the level-wave parallel passes share these:
    # each is a pure function of the committed fan-in state, so where a
    # node runs (parent or pool worker) cannot change its outcome.

    def _enumerate_node(self, nid: int, depth_mode: bool) -> tuple[Cut, list[Cut]]:
        """Forward-pass cut choice for one gate node: ``(best, visible)``."""
        net = self._net
        assert net is not None
        fanins = net.fanins(nid)
        rank = self._rank_depth if depth_mode else self._rank_area
        if nid in self.macro_nodes:
            # pre-synthesized macros keep their structural 1:1 shape
            direct = self._direct_cut(fanins)
            if direct is None:
                raise MappingError(
                    f"macro node {net.node_name(nid)!r} exceeds K inputs"
                )
            merged = [direct]
        else:
            merged = self._merge_fanins(fanins, depth_mode)
            if not merged:
                # fall back: direct fan-in cut (always legal for fanin<=k)
                direct = self._direct_cut(fanins)
                if direct is None:
                    raise MappingError(
                        f"node {net.node_name(nid)!r} has unmappable fan-in"
                    )
                merged = [direct]
        if len(fanins) >= 2 and len(merged) > 1:
            # merge_ranked sorts multi-list output by this pass's rank mode
            # (first-occurrence ties, same as min()), so element 0 is the
            # ranked choice.  Single-fan-in pass-throughs keep the fan-in's
            # own order and still need the explicit min().
            best = merged[0]
        else:
            best = min(merged, key=rank)
        if nid in self.boundary:
            visible = [Cut((nid,))]
        else:
            visible = merged + [Cut((nid,))]
        return best, visible

    def _recover_node(
        self, nid: int, req: float
    ) -> tuple[Cut, list[Cut]] | None:
        """Area-recovery cut choice for one gate node, or ``None`` to keep
        the node's current choice untouched."""
        net = self._net
        assert net is not None
        fanins = net.fanins(nid)
        merged = self._merge_fanins(fanins, depth_mode=False)
        prev_best = self._best[nid]
        prev_appended = prev_best is not None and all(
            c.leaves != prev_best.leaves for c in merged
        )
        if prev_appended:
            merged = merged + [prev_best]
        if not merged:
            return None
        if len(fanins) >= 2:
            # The merge output is sorted by the area rank, so the first
            # element meeting the deadline is the feasible minimum; the
            # appended previous best sits past the sorted prefix and —
            # like min() keeping the earlier element on ties — only wins
            # with a strictly better rank.
            best = None
            scan = merged[:-1] if prev_appended else merged
            for c in scan:
                if self._compute_costs(c).arr <= req:
                    best = c
                    break
            if prev_appended and self._compute_costs(prev_best).arr <= req:
                if best is None or self._rank_area(prev_best) < self._rank_area(
                    best
                ):
                    best = prev_best
            if best is None:
                # No cut meets the deadline (area pruning lost the fast
                # ones): keep the previous depth-optimal choice so
                # recovery can never worsen the mapping's depth.
                best = prev_best if prev_best is not None else merged[0]
        else:
            feasible = [
                c for c in merged if self._compute_costs(c).arr <= req
            ]
            if feasible:
                best = min(feasible, key=self._rank_area)
            elif prev_best is not None:
                best = prev_best
            else:
                best = min(merged, key=self._rank_area)
        if nid in self.boundary:
            visible = [Cut((nid,))]
        else:
            visible = merged + [Cut((nid,))]
        return best, visible

    def _commit_node(self, nid: int, best: Cut, visible: list[Cut]) -> None:
        c = self._compute_costs(best)
        refs = self._est_refs[nid]
        self._best[nid] = best
        self._arrival[nid] = c.arr
        self._leaf_af[nid] = c.af
        self._laf_norm[nid] = c.af / (refs if refs > 1.0 else 1.0)
        self._cuts[nid] = visible

    def _commit_trivial(self, nid: int) -> None:
        """Source-like or constant node: trivial cut, no enumeration."""
        self._cuts[nid] = [Cut((nid,))]
        if self._is_source_like(nid):
            self._arrival[nid] = 0.0
            self._leaf_af[nid] = 0.0
            self._laf_norm[nid] = 0.0
        else:  # constant gate: a 0-input LUT
            refs = self._est_refs[nid]
            self._best[nid] = Cut(())
            self._arrival[nid] = 0.0
            self._leaf_af[nid] = 1.0
            self._laf_norm[nid] = 1.0 / (refs if refs > 1.0 else 1.0)

    # -- passes -----------------------------------------------------------------

    def _use_waves(self) -> bool:
        return self.intra is not None and self.intra.workers > 1

    def _forward_pass(self, depth_mode: bool) -> None:
        net = self._net
        assert net is not None
        n = net.n_nodes
        self._cuts = [None] * n
        self._best = [None] * n
        self._arrival = [0.0] * n
        self._leaf_af = [0.0] * n
        self._laf_norm = [0.0] * n
        self._stamp += 1
        for nid in self._trivial_order:
            self._commit_trivial(nid)
        if self._use_waves():
            from repro.mapping.parallel import wave_forward_pass

            wave_forward_pass(self, depth_mode)
            return
        for nid in self._gate_order:
            best, visible = self._enumerate_node(nid, depth_mode)
            self._commit_node(nid, best, visible)

    def _recover_area(
        self, required: dict[int, float], remerge: bool = True
    ) -> None:
        """Re-choose cuts minimizing area flow where timing slack permits.

        ``remerge=True`` re-enumerates cuts under the area rank mode;
        ``remerge=False`` only re-selects among each node's stored priority
        cuts (cheap: no merging), which is what later hybrid rounds run.
        Re-selection is memory-bound and stays serial even under waves.
        """
        net = self._net
        assert net is not None
        self._stamp += 1
        if remerge and self._use_waves():
            from repro.mapping.parallel import wave_recover_pass

            wave_recover_pass(self, required)
            return
        if remerge:
            for nid in self._recover_order:
                out = self._recover_node(nid, required.get(nid, _INF))
                if out is not None:
                    self._commit_node(nid, *out)
            return
        for nid in self._recover_order:
            best = self._reselect_node(nid, required.get(nid, _INF))
            if best is not None:
                self._commit_node(nid, best, self._cuts[nid])

    def _reselect_node(self, nid: int, req: float) -> Cut | None:
        """Pick the best stored cut under current reference counts.

        Candidates are the node's priority cuts from the last enumerating
        pass (minus its own trivial cut, which cannot implement it) plus
        the current best; no new cuts are merged.
        """
        cands = [c for c in self._cuts[nid] if c.leaves != (nid,)]
        prev_best = self._best[nid]
        if prev_best is not None and all(
            c.leaves != prev_best.leaves for c in cands
        ):
            cands = cands + [prev_best]
        if not cands:
            return None
        feasible = [c for c in cands if self._compute_costs(c).arr <= req]
        if feasible:
            return min(feasible, key=self._rank_area)
        if prev_best is not None:
            return prev_best
        return min(cands, key=self._rank_area)

    # -- covering ----------------------------------------------------------------

    def _roots(self) -> set[int]:
        net = self._net
        assert net is not None
        roots: set[int] = set()
        for po in net.po_names:
            roots.add(net.require(po))
        for latch in net.latches:
            if latch.driver >= 0:
                roots.add(latch.driver)
        roots |= self._forced_roots()
        return {r for r in roots if not self._is_source_like(r)}

    def _cone(self, root: int, leaves: tuple[int, ...]) -> TruthTable:
        """Per-run memo over :func:`cone_function` — the depth cover, every
        recovery cover and the TLUT path reuse unchanged cut functions."""
        key = (root, leaves)
        got = self._cone_cache.get(key)
        if got is None:
            assert self._net is not None
            got = cone_function(self._net, root, leaves)
            self._cone_cache[key] = got
        return got

    def _cover(self) -> MappingResult:
        net = self._net
        assert net is not None
        result = MappingResult(network=net, k=self.k, params=self.free)
        stack = sorted(self._roots())
        visited: set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in visited or self._is_source_like(nid):
                continue
            visited.add(nid)
            if self._handle_special(nid, result):
                stack.extend(self._special_deps(nid))
                continue
            cut = self._best[nid]
            if cut is None:
                raise MappingError(
                    f"no cut chosen for {net.node_name(nid)!r}"
                )
            leaves = cut.leaves
            lut = self._lut_memo.get(nid)
            if lut is None or lut.leaves != leaves:
                # LutImpl is frozen, so covers may share instances; the
                # depth cover and every recovery cover mostly re-emit the
                # same (root, cut) pairs
                func = self._cone(nid, leaves)
                params = tuple(l for l in leaves if l in self.free)
                lut = LutImpl(
                    root=nid, leaves=leaves, func=func, param_leaves=params
                )
                self._lut_memo[nid] = lut
            result.luts[nid] = lut
            stack.extend(l for l in leaves if l not in visited)
        return result

    # -- timing/refs over a cover -----------------------------------------------

    def _compute_required(self, result: MappingResult) -> dict[int, float]:
        """Required times: every root pinned to its depth-optimal arrival."""
        target = float(result.depth())
        required: dict[int, float] = {}
        for r in self._roots():
            required[r] = self._target_arrival[r]
        for nid in reversed(self._order):
            if nid not in result.luts:
                continue
            req = required.get(nid, target)
            lut = result.luts[nid]
            for leaf in lut.leaves:
                if self._is_source_like(leaf):
                    continue
                cur = required.get(leaf, _INF)
                required[leaf] = min(cur, req - 1.0)
        return required

    def _cover_refs(self, result: MappingResult) -> dict[int, int]:
        """How many LUTs of the current cover reference each node."""
        refs: dict[int, int] = {}
        for lut in result.luts.values():
            for leaf in lut.leaves:
                refs[leaf] = refs.get(leaf, 0) + 1
        for t in result.tcons.values():
            for s in (t.source0, t.source1):
                refs[s] = refs.get(s, 0) + 1
        return refs
