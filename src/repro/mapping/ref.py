"""Reference set-based priority-cuts mapper (pre-flat-engine).

This module preserves the original ``frozenset``-based cut enumeration and
the original :class:`PriorityCutMapper` forward pass exactly as they were
before the flat bitset engine replaced them in :mod:`repro.mapping.cuts`
and :mod:`repro.mapping.mapper_base`.  It exists for three reasons:

* ``benchmarks/bench_mapping.py`` measures the flat engine's speedup
  against this implementation (the acceptance floor is relative to it);
* the cut-algebra property tests compare the bitset subsumption/merge
  operators against these set-based originals;
* the engine-equality test pins that the flat engine chooses the same
  mapping, which is the argument for not bumping the ``initial-map`` /
  ``tcon-map`` stage versions.

Like :mod:`repro.place.ref` and :mod:`repro.route.ref`, nothing in the
pipeline imports this module — it is a frozen baseline, not a fallback.
"""

from __future__ import annotations

from typing import Callable, Collection

from repro.errors import MappingError
from repro.mapping.result import LutImpl, MappingResult
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable

__all__ = [
    "ref_cut_size",
    "ref_prune",
    "ref_merge_cut_lists",
    "ref_enumerate_cuts",
    "RefPriorityCutMapper",
    "RefAbcMap",
]

RefCut = frozenset
"""A reference cut is a frozenset of leaf node ids."""


def ref_cut_size(cut: frozenset, free_leaves: Collection[int]) -> int:
    """Physical input count of a cut: leaves minus parameter leaves."""
    if not free_leaves:
        return len(cut)
    return sum(1 for l in cut if l not in free_leaves)


def ref_prune(
    cuts: list[frozenset],
    limit: int,
    rank: Callable[[frozenset], tuple],
) -> list[frozenset]:
    """Dedup, drop dominated cuts, keep the ``limit`` best by ``rank``."""
    uniq = list(dict.fromkeys(cuts))
    uniq.sort(key=rank)
    kept: list[frozenset] = []
    for c in uniq:
        dominated = False
        for k in kept:
            if k <= c:  # an existing cut with a subset of leaves is better
                dominated = True
                break
        if not dominated:
            kept.append(c)
            if len(kept) >= limit:
                break
    return kept


def ref_merge_cut_lists(
    lists: list[list[frozenset]],
    k: int,
    limit: int,
    free_leaves: Collection[int],
    rank: Callable[[frozenset], tuple],
    max_total_leaves: int,
) -> list[frozenset]:
    """Pairwise-merge fan-in cut lists under the size limits."""
    if not lists:
        return [frozenset()]
    current = lists[0]
    for nxt in lists[1:]:
        merged: list[frozenset] = []
        for a in current:
            for b in nxt:
                u = a | b
                if len(u) > max_total_leaves:
                    continue
                if ref_cut_size(u, free_leaves) > k:
                    continue
                merged.append(u)
        if not merged:
            return []
        current = ref_prune(merged, limit, rank)
    return current


def ref_enumerate_cuts(
    net: LogicNetwork,
    k: int = 6,
    cut_limit: int = 8,
    *,
    boundary: Collection[int] = (),
    free_leaves: Collection[int] = (),
    rank: Callable[[frozenset], tuple] | None = None,
    max_total_leaves: int | None = None,
) -> dict[int, list[frozenset]]:
    """Enumerate priority cuts for every node of ``net`` (set-based)."""
    if k < 2:
        raise MappingError(f"K must be >= 2, got {k}")
    free = frozenset(free_leaves)
    bset = frozenset(boundary)
    cap = max_total_leaves if max_total_leaves is not None else k + 6
    if rank is None:
        rank = lambda c: (ref_cut_size(c, free), len(c))  # noqa: E731

    cuts: dict[int, list[frozenset]] = {}
    for nid in net.topo_order():
        trivial = frozenset((nid,))
        if net.kind(nid) != NodeKind.GATE or nid in free:
            cuts[nid] = [trivial]
            continue
        fanins = net.fanins(nid)
        if not fanins:  # constant gate
            cuts[nid] = [trivial]
            continue
        if nid in bset:
            cuts[nid] = [trivial]
            continue
        merged = ref_merge_cut_lists(
            [cuts[f] for f in fanins], k, cut_limit, free, rank, cap
        )
        result = [trivial] + [c for c in merged if c != trivial]
        cuts[nid] = ref_prune(result, cut_limit + 1, rank)
        if trivial not in cuts[nid]:
            cuts[nid].append(trivial)
    return cuts


def ref_cone_function(
    net: LogicNetwork, root: int, leaves: tuple[int, ...]
) -> TruthTable:
    """Collapse the cone between ``leaves`` and ``root`` (no memo)."""
    n_vars = len(leaves)
    var_of = {leaf: i for i, leaf in enumerate(leaves)}
    memo: dict[int, TruthTable] = {}

    def build(nid: int) -> TruthTable:
        if nid in var_of:
            return TruthTable.var(var_of[nid], n_vars)
        got = memo.get(nid)
        if got is not None:
            return got
        if net.kind(nid) != NodeKind.GATE:
            raise MappingError(
                f"cone of {net.node_name(root)!r} escapes its cut at "
                f"{net.node_name(nid)!r}"
            )
        func = net.func(nid)
        assert func is not None
        if func.n_vars == 0:
            tt = TruthTable.const(func.bits & 1, n_vars)
        else:
            children = [build(f) for f in net.fanins(nid)]
            tt = func.compose(children, n_vars=n_vars)
        memo[nid] = tt
        return tt

    return build(root)


_INF = float("inf")


class RefPriorityCutMapper:
    """The original set-based priority-cuts mapper, preserved verbatim."""

    name = "ref-priority-cuts"

    def __init__(
        self,
        k: int = 6,
        cut_limit: int = 8,
        area_rounds: int = 2,
        *,
        free_leaves: Collection[int] = (),
        boundary: Collection[int] = (),
        forced_roots: Collection[int] = (),
        macro_nodes: Collection[int] = (),
        max_total_leaves: int | None = None,
    ) -> None:
        if k < 2:
            raise MappingError(f"K must be >= 2, got {k}")
        self.k = k
        self.cut_limit = cut_limit
        self.area_rounds = area_rounds
        self.free = frozenset(free_leaves)
        self.macro_nodes = frozenset(macro_nodes)
        self.boundary = frozenset(boundary) | self.macro_nodes
        self.forced_roots = frozenset(forced_roots)
        self.cap = max_total_leaves if max_total_leaves is not None else k + 6

        self._net: LogicNetwork | None = None
        self._order: list[int] = []
        self._cuts: dict[int, list[frozenset]] = {}
        self._best: dict[int, frozenset] = {}
        self._arrival: dict[int, float] = {}
        self._est_refs: dict[int, float] = {}

    # -- hooks ---------------------------------------------------------------

    def _is_source_like(self, nid: int) -> bool:
        net = self._net
        assert net is not None
        return net.kind(nid) != NodeKind.GATE or nid in self.free

    def _forced_roots(self) -> set[int]:
        return set(self.boundary) | set(self.forced_roots)

    def _handle_special(self, nid: int, result: MappingResult) -> bool:
        return False

    def _special_deps(self, nid: int) -> tuple[int, ...]:
        return ()

    # -- cost functions ------------------------------------------------------

    def _cut_arrival(self, cut: frozenset) -> float:
        arr = 0.0
        for leaf in cut:
            a = self._arrival.get(leaf, 0.0)
            if a > arr:
                arr = a
        return arr + 1.0

    def _cut_area_flow(self, cut: frozenset) -> float:
        af = 1.0
        for leaf in cut:
            if leaf in self.free:
                continue
            laf = self._leaf_af.get(leaf, 0.0)
            refs = max(1.0, self._est_refs.get(leaf, 1.0))
            af += laf / refs
        return af

    def _rank_depth(self, cut: frozenset):
        return (
            self._cut_arrival(cut),
            ref_cut_size(cut, self.free),
            self._cut_area_flow(cut),
        )

    def _rank_area(self, cut: frozenset):
        return (
            self._cut_area_flow(cut),
            self._cut_arrival(cut),
            ref_cut_size(cut, self.free),
        )

    # -- main entry ----------------------------------------------------------

    def map(self, net: LogicNetwork) -> MappingResult:
        self._net = net
        self._order = net.topo_order()
        self._est_refs = {
            nid: float(c) for nid, c in enumerate(net.fanout_counts())
        }
        self._leaf_af: dict[int, float] = {}

        self._forward_pass(depth_mode=True)
        self._target_arrival = dict(self._arrival)
        result = self._cover()

        for _ in range(self.area_rounds):
            required = self._compute_required(result)
            refs = self._cover_refs(result)
            self._est_refs = {
                nid: float(max(1, refs.get(nid, 0))) for nid in net.nodes()
            }
            self._recover_area(required)
            result = self._cover()
        return result

    # -- passes --------------------------------------------------------------

    def _forward_pass(self, depth_mode: bool) -> None:
        net = self._net
        assert net is not None
        self._cuts = {}
        self._best = {}
        self._arrival = {}
        self._leaf_af = {}
        rank = self._rank_depth if depth_mode else self._rank_area

        for nid in self._order:
            trivial = frozenset((nid,))
            if self._is_source_like(nid):
                self._cuts[nid] = [trivial]
                self._arrival[nid] = 0.0
                self._leaf_af[nid] = 0.0
                continue
            fanins = net.fanins(nid)
            if not fanins:
                self._cuts[nid] = [trivial]
                self._best[nid] = frozenset()
                self._arrival[nid] = 0.0
                self._leaf_af[nid] = 1.0
                continue

            if nid in self.macro_nodes:
                direct = frozenset(fanins)
                if ref_cut_size(direct, self.free) > self.k:
                    raise MappingError(
                        f"macro node {net.node_name(nid)!r} exceeds K inputs"
                    )
                merged = [direct]
            else:
                merged = ref_merge_cut_lists(
                    [self._cuts[f] for f in fanins],
                    self.k,
                    self.cut_limit,
                    self.free,
                    rank,
                    self.cap,
                )
                if not merged:
                    direct = frozenset(fanins)
                    if ref_cut_size(direct, self.free) > self.k:
                        raise MappingError(
                            f"node {net.node_name(nid)!r} has unmappable fan-in"
                        )
                    merged = [direct]
            best = min(merged, key=rank)
            self._best[nid] = best
            self._arrival[nid] = self._cut_arrival(best)
            self._leaf_af[nid] = self._cut_area_flow(best)

            if nid in self.boundary:
                visible = [trivial]
            else:
                visible = merged + [trivial]
            self._cuts[nid] = visible

    def _recover_area(self, required: dict[int, float]) -> None:
        net = self._net
        assert net is not None
        for nid in self._order:
            if self._is_source_like(nid) or nid in self.macro_nodes:
                continue
            fanins = net.fanins(nid)
            if not fanins:
                continue
            merged = ref_merge_cut_lists(
                [self._cuts[f] for f in fanins],
                self.k,
                self.cut_limit,
                self.free,
                self._rank_area,
                self.cap,
            )
            prev_best = self._best.get(nid)
            if prev_best is not None and prev_best not in merged:
                merged = merged + [prev_best]
            if not merged:
                continue
            req = required.get(nid, _INF)
            feasible = [c for c in merged if self._cut_arrival(c) <= req]
            if feasible:
                best = min(feasible, key=self._rank_area)
            elif prev_best is not None:
                best = prev_best
            else:
                best = min(merged, key=self._rank_area)
            self._best[nid] = best
            self._arrival[nid] = self._cut_arrival(best)
            self._leaf_af[nid] = self._cut_area_flow(best)
            trivial = frozenset((nid,))
            if nid in self.boundary:
                self._cuts[nid] = [trivial]
            else:
                self._cuts[nid] = merged + [trivial]

    # -- covering ------------------------------------------------------------

    def _roots(self) -> set[int]:
        net = self._net
        assert net is not None
        roots: set[int] = set()
        for po in net.po_names:
            roots.add(net.require(po))
        for latch in net.latches:
            if latch.driver >= 0:
                roots.add(latch.driver)
        roots |= self._forced_roots()
        return {r for r in roots if not self._is_source_like(r)}

    def _cover(self) -> MappingResult:
        net = self._net
        assert net is not None
        result = MappingResult(network=net, k=self.k, params=self.free)
        stack = sorted(self._roots())
        visited: set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in visited or self._is_source_like(nid):
                continue
            visited.add(nid)
            if self._handle_special(nid, result):
                stack.extend(self._special_deps(nid))
                continue
            cut = self._best.get(nid)
            if cut is None:
                raise MappingError(
                    f"no cut chosen for {net.node_name(nid)!r}"
                )
            leaves = tuple(sorted(cut))
            func = ref_cone_function(net, nid, leaves)
            params = tuple(l for l in leaves if l in self.free)
            result.luts[nid] = LutImpl(
                root=nid, leaves=leaves, func=func, param_leaves=params
            )
            stack.extend(l for l in leaves if l not in visited)
        return result

    # -- timing/refs over a cover --------------------------------------------

    def _compute_required(self, result: MappingResult) -> dict[int, float]:
        target = float(result.depth())
        required: dict[int, float] = {}
        for r in self._roots():
            required[r] = self._target_arrival.get(r, target)
        for nid in reversed(self._order):
            if nid not in result.luts:
                continue
            req = required.get(nid, target)
            lut = result.luts[nid]
            for leaf in lut.leaves:
                if self._is_source_like(leaf):
                    continue
                cur = required.get(leaf, _INF)
                required[leaf] = min(cur, req - 1.0)
        return required

    def _cover_refs(self, result: MappingResult) -> dict[int, int]:
        refs: dict[int, int] = {}
        for lut in result.luts.values():
            for leaf in lut.leaves:
                refs[leaf] = refs.get(leaf, 0) + 1
        for t in result.tcons.values():
            for s in (t.source0, t.source1):
                refs[s] = refs.get(s, 0) + 1
        return refs


class RefAbcMap(RefPriorityCutMapper):
    """Reference counterpart of :class:`repro.mapping.abc_map.AbcMap`."""

    name = "ref-abc"
