"""ABC-style mapper: depth-optimal with area-flow recovery.

Models the "ABC" column of Table I — the priority-cuts mapper of ABC's
``if -K 6`` command as integrated in the VTR flow: a depth-oriented first
pass followed by area-flow recovery rounds that re-choose cuts off the
critical path to minimize shared-logic duplication.
"""

from __future__ import annotations

from typing import Collection

from repro.mapping.mapper_base import PriorityCutMapper

__all__ = ["AbcMap"]


class AbcMap(PriorityCutMapper):
    """Depth-oriented priority-cuts mapping with area-flow recovery."""

    name = "abc"

    def __init__(
        self,
        k: int = 6,
        cut_limit: int = 8,
        area_rounds: int = 2,
        *,
        boundary: Collection[int] = (),
        free_leaves: Collection[int] = (),
        forced_roots: Collection[int] = (),
        macro_nodes: Collection[int] = (),
        intra=None,
    ) -> None:
        super().__init__(
            k=k,
            cut_limit=cut_limit,
            area_rounds=area_rounds,
            boundary=boundary,
            free_leaves=free_leaves,
            forced_roots=forced_roots,
            macro_nodes=macro_nodes,
            intra=intra,
        )
