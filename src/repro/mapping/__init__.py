"""Technology mapping onto K-input LUTs and tunable primitives.

Three mappers are provided, mirroring the tools compared in Table I of the
paper:

* :class:`~repro.mapping.simplemap.SimpleMap` — a structural, depth-oriented
  mapper without area recovery (the "SM" column);
* :class:`~repro.mapping.abc_map.AbcMap` — a priority-cuts mapper with
  area-flow recovery in the style of ABC's ``if`` command (the "ABC" column);
* :class:`~repro.mapping.tconmap.TconMap` — the parameter-aware mapper of
  the proposed flow: parameter inputs are folded into configuration bits
  (TLUTs) and parameter-controlled multiplexers map onto the routing fabric
  as tunable connections (TCONs).
"""

from repro.mapping.cuts import Cut, enumerate_cuts
from repro.mapping.result import LutImpl, TconImpl, MappingResult
from repro.mapping.mapper_base import PriorityCutMapper, cone_function
from repro.mapping.simplemap import SimpleMap
from repro.mapping.abc_map import AbcMap
from repro.mapping.tconmap import TconMap

__all__ = [
    "Cut",
    "enumerate_cuts",
    "LutImpl",
    "TconImpl",
    "MappingResult",
    "PriorityCutMapper",
    "cone_function",
    "SimpleMap",
    "AbcMap",
    "TconMap",
]
