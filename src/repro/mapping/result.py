"""Mapping results: LUT covers, tunable primitives, and derived metrics.

A :class:`MappingResult` is the output of every mapper.  It references the
*original* network's node ids: each :class:`LutImpl` implements one original
node (its root) as a LUT over a cut of original nodes, and each
:class:`TconImpl` implements a parameter-controlled multiplexer node as
tunable routing connections.

The result can be re-materialized as a plain LUT-level
:class:`~repro.netlist.network.LogicNetwork` (:meth:`MappingResult.to_lut_network`)
for equivalence checking against the source network and for the physical
design stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import MappingError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable

__all__ = ["LutImpl", "TconImpl", "MappingResult"]


@dataclass(frozen=True, slots=True)
class LutImpl:
    """One LUT of the mapped design.

    Attributes
    ----------
    root:
        Original node id whose signal this LUT produces.
    leaves:
        Cut leaves (original node ids); variable ``i`` of ``func`` is
        ``leaves[i]``.
    func:
        The collapsed cone function over the leaves.
    param_leaves:
        Leaves that are debug parameters — non-empty makes this a **TLUT**:
        the physical LUT has only the non-parameter leaves as inputs, and
        its configuration bits are Boolean functions of the parameters.
    """

    root: int
    leaves: tuple[int, ...]
    func: TruthTable
    param_leaves: tuple[int, ...] = ()

    @property
    def is_tlut(self) -> bool:
        return bool(self.param_leaves)

    @property
    def physical_inputs(self) -> tuple[int, ...]:
        """Leaves that occupy physical LUT input pins (parameters do not)."""
        pset = set(self.param_leaves)
        return tuple(l for l in self.leaves if l not in pset)


@dataclass(frozen=True, slots=True)
class TconImpl:
    """A parameter-controlled 2:1 multiplexer realized in routing.

    The original node ``root`` selects ``source0`` when parameter ``sel`` is
    0 and ``source1`` when it is 1.  Each data edge is one *tunable
    connection* — the unit counted in Table I's TCON column.
    """

    root: int
    source0: int
    source1: int
    sel: int

    @property
    def n_edges(self) -> int:
        return 2


@dataclass
class MappingResult:
    """Complete output of a technology-mapping run."""

    network: LogicNetwork
    """The (possibly instrumented) source network that was mapped."""
    k: int
    luts: dict[int, LutImpl] = field(default_factory=dict)
    tcons: dict[int, TconImpl] = field(default_factory=dict)
    params: frozenset[int] = frozenset()
    """Original node ids annotated as debug parameters."""
    polarity_folds: int = 0
    """Buffers/inverters folded into reader configuration bits (TconMap)."""

    # -- area metrics --------------------------------------------------------

    @property
    def n_luts(self) -> int:
        """Total LUT count (TLUTs included) — Table I's headline number."""
        return len(self.luts)

    @property
    def n_tluts(self) -> int:
        return sum(1 for l in self.luts.values() if l.is_tlut)

    @property
    def n_tcons(self) -> int:
        """Number of tunable connections (data edges of routed muxes)."""
        return sum(t.n_edges for t in self.tcons.values())

    # -- depth ----------------------------------------------------------------

    def levels(self) -> dict[int, int]:
        """LUT level per implemented node; TCONs add no logic level."""
        level: dict[int, int] = {}
        for nid in self.network.sources():
            level[nid] = 0
        for nid in self.params:
            level[nid] = 0

        order = self._impl_topo_order()
        for nid in order:
            if nid in self.luts:
                lut = self.luts[nid]
                deps = [level.get(l, 0) for l in lut.physical_inputs]
                level[nid] = 1 + max(deps, default=0)
            elif nid in self.tcons:
                t = self.tcons[nid]
                level[nid] = max(level.get(t.source0, 0), level.get(t.source1, 0))
        return level

    def depth(self) -> int:
        """Mapped logic depth to POs and latch inputs."""
        level = self.levels()
        net = self.network
        sinks = [net.require(n) for n in net.po_names]
        sinks += [l.driver for l in net.latches if l.driver >= 0]
        depths = [level.get(s, 0) for s in sinks]
        return max(depths, default=0)

    def depth_to(self, sink_names: Iterable[str]) -> int:
        """Mapped depth restricted to the named sink signals.

        Table II reports the *user design's* logic depth, so the experiment
        drivers pass the original POs and latch-driver names here, excluding
        debug-infrastructure sinks (trace-buffer and trigger outputs).
        """
        level = self.levels()
        net = self.network
        depths = [level.get(net.require(n), 0) for n in sink_names]
        return max(depths, default=0)

    def _impl_topo_order(self) -> list[int]:
        """Topological order over implemented nodes (LUT/TCON dependency DAG)."""
        deps: dict[int, tuple[int, ...]] = {}
        for nid, lut in self.luts.items():
            deps[nid] = lut.physical_inputs
        for nid, t in self.tcons.items():
            deps[nid] = (t.source0, t.source1)
        state: dict[int, int] = {}
        order: list[int] = []

        for start in deps:
            if state.get(start):
                continue
            stack = [(start, iter(deps[start]))]
            state[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for child in it:
                    if child in deps and not state.get(child):
                        state[child] = 1
                        stack.append((child, iter(deps[child])))
                        advanced = True
                        break
                    if state.get(child) == 1:
                        raise MappingError(
                            f"cycle through mapped node "
                            f"{self.network.node_name(child)!r}"
                        )
                if not advanced:
                    state[node] = 2
                    order.append(node)
                    stack.pop()
        return order

    # -- materialization -------------------------------------------------------

    def to_lut_network(self, name: str | None = None) -> LogicNetwork:
        """Rebuild a LUT-level :class:`LogicNetwork`.

        LUTs become gates over their leaves (parameters included, so TLUTs
        stay functionally faithful); TCONs become explicit 2:1 mux gates.
        The result is bit-for-bit equivalent to the source network on the
        implemented signals — verified by the test suite.
        """
        src = self.network
        out = LogicNetwork(name or f"{src.name}_mapped")
        remap: dict[int, int] = {}
        for pi in src.pis:
            remap[pi] = out.add_pi(src.node_name(pi))
        for latch in src.latches:
            remap[latch.q] = out.add_latch(src.node_name(latch.q), init=latch.init)

        mux_tt = TruthTable.mux(
            TruthTable.var(2, 3), TruthTable.var(0, 3), TruthTable.var(1, 3)
        )

        for nid in self._impl_topo_order():
            node_name = src.node_name(nid)
            if nid in self.luts:
                lut = self.luts[nid]
                fanins = []
                for leaf in lut.leaves:
                    if leaf not in remap:
                        raise MappingError(
                            f"LUT {node_name!r} depends on unimplemented leaf "
                            f"{src.node_name(leaf)!r}"
                        )
                    fanins.append(remap[leaf])
                remap[nid] = out.add_gate(node_name, fanins, lut.func)
            else:
                t = self.tcons[nid]
                for dep in (t.source0, t.source1, t.sel):
                    if dep not in remap:
                        raise MappingError(
                            f"TCON {node_name!r} depends on unimplemented "
                            f"{src.node_name(dep)!r}"
                        )
                remap[nid] = out.add_gate(
                    node_name,
                    (remap[t.source0], remap[t.source1], remap[t.sel]),
                    mux_tt,
                )

        for latch in src.latches:
            if latch.driver not in remap:
                raise MappingError(
                    f"latch {src.node_name(latch.q)!r} driver not implemented"
                )
            out.set_latch_driver(remap[latch.q], remap[latch.driver])
        for po in src.po_names:
            if src.require(po) not in remap:
                raise MappingError(f"PO {po!r} not implemented")
            out.add_po(po)
        return out

    def summary(self) -> str:
        return (
            f"{self.network.name}: {self.n_luts} LUTs "
            f"({self.n_tluts} TLUTs), {self.n_tcons} TCONs, "
            f"depth {self.depth()}"
        )
