"""TconMap: parameter-aware technology mapping (the paper's §IV-A.3/4).

The instrumented network contains a multiplexer network whose select inputs
are *parameters* — inputs that change only between debugging runs, never
during operation.  TconMap exploits that in three ways:

* **TCONs** — a 2:1 multiplexer whose select is a parameter is not logic at
  all once the parameter is fixed: it is a *choice of connection*.  Such
  nodes are emitted as :class:`~repro.mapping.result.TconImpl` and realized
  in the FPGA's routing fabric (switch-box/connection-box configuration
  bits become Boolean functions of the select parameter).  They cost zero
  LUTs and add zero logic depth.

* **TLUTs** — a leaf multiplexer whose two tapped signals have small cones
  can instead *recompute* either cone inside one LUT whose configuration
  bits depend on the select parameter (the TLUT mechanism): the LUT holds
  cone(A) when sel=0 and cone(B) when sel=1.  This trades one physical LUT
  for two routed taps, which pays off for latch-adjacent taps where direct
  routing into the capture domain needs gating anyway.  Emitted as a
  :class:`~repro.mapping.result.LutImpl` with a parameter leaf.

* **Polarity folds** — mapped single-input LUTs (buffers/inverters) are
  folded into the configuration bits of their reader LUTs, removing a
  logic level; this is why the proposed flow's depth in Table II sometimes
  *undercuts* the golden depth.

Observed signals ("taps") are forced mapping roots so that the physical
net exists for the routing-level taps — except where a TLUT recomputation
serves the tap instead.
"""

from __future__ import annotations

from typing import Collection

from repro.errors import MappingError
from repro.mapping.cuts import cut_size
from repro.mapping.mapper_base import PriorityCutMapper
from repro.mapping.result import LutImpl, MappingResult, TconImpl
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable

__all__ = ["TconMap"]


class TconMap(PriorityCutMapper):
    """Parameter-aware mapper producing LUTs, TLUTs and TCONs."""

    name = "tconmap"

    def __init__(
        self,
        k: int = 6,
        cut_limit: int = 8,
        area_rounds: int = 2,
        *,
        params: Collection[int],
        taps: Collection[int] = (),
        latch_adjacent: Collection[int] | None = None,
        fold_polarity: bool = True,
        intra=None,
    ) -> None:
        """
        Parameters
        ----------
        params:
            Node ids of the debug parameters (mux-network select inputs).
        taps:
            Observed signal node ids; forced to remain physical nets.
        latch_adjacent:
            Taps requiring gated (TLUT) capture; computed from the network
            (latch Q nodes, latch drivers and their direct readers) when
            omitted.
        fold_polarity:
            Enable the buffer/inverter configuration-bit fold.
        intra:
            Optional :class:`~repro.util.intra.IntraPool` for level-wave
            parallel cut enumeration (byte-identical to serial).
        """
        super().__init__(
            k=k,
            cut_limit=cut_limit,
            area_rounds=area_rounds,
            free_leaves=params,
            forced_roots=taps,
            intra=intra,
        )
        self.taps = frozenset(taps)
        self._latch_adjacent = (
            None if latch_adjacent is None else frozenset(latch_adjacent)
        )
        self.fold_polarity = fold_polarity
        self._mux_nodes: dict[int, tuple[int, int, int]] = {}

    # -- parameter-mux recognition ------------------------------------------

    def _find_param_muxes(self, net: LogicNetwork) -> None:
        """Identify 2:1 muxes whose select input is a parameter."""
        self._mux_nodes = {}
        for nid in net.gates():
            func = net.func(nid)
            assert func is not None
            if func.n_vars != 3:
                continue
            m = func.as_mux()
            if m is None:
                continue
            sel_var, a_var, b_var = m
            fanins = net.fanins(nid)
            sel, a, b = fanins[sel_var], fanins[a_var], fanins[b_var]
            if sel in self.free and a not in self.free and b not in self.free:
                self._mux_nodes[nid] = (sel, a, b)

    def _compute_latch_adjacent(self, net: LogicNetwork) -> frozenset[int]:
        adj: set[int] = set()
        for latch in net.latches:
            adj.add(latch.q)
            if latch.driver >= 0:
                adj.add(latch.driver)
        for nid in net.gates():
            if any(f in adj for f in net.fanins(nid)):
                adj.add(nid)
        return frozenset(adj)

    # -- mapper hooks ----------------------------------------------------------

    def map(self, net: LogicNetwork) -> MappingResult:
        self._find_param_muxes(net)
        if self._latch_adjacent is None:
            self._latch_adjacent = self._compute_latch_adjacent(net)
        # Mux nodes never participate in LUT cut enumeration: they are
        # routing-level objects.  Making them boundaries keeps downstream
        # (other mux nodes / trace-buffer POs) from absorbing through them.
        self.boundary = frozenset(self.boundary) | frozenset(self._mux_nodes)
        result = super().map(net)
        if self.fold_polarity:
            self._fold_polarity(result)
        return result

    def _handle_special(self, nid: int, result: MappingResult) -> bool:
        mux = self._mux_nodes.get(nid)
        if mux is None:
            return False
        net = self._net
        assert net is not None
        sel, a, b = mux

        if self._qualifies_tlut(nid, sel, a, b):
            leaves_set = self._tlut_leaves(sel, a, b)
            leaves = tuple(sorted(leaves_set))
            func = self._cone(nid, leaves)
            params = tuple(l for l in leaves if l in self.free)
            result.luts[nid] = LutImpl(
                root=nid, leaves=leaves, func=func, param_leaves=params
            )
            self._deps = tuple(
                l for l in leaves if l not in self.free
            )
            return True

        result.tcons[nid] = TconImpl(root=nid, source0=a, source1=b, sel=sel)
        self._deps = (a, b)
        return True

    def _special_deps(self, nid: int) -> tuple[int, ...]:
        return self._deps

    def _tlut_leaves(self, sel: int, a: int, b: int) -> set[int]:
        """Leaf set of a TLUT recomputing both data cones plus the select.

        A data input whose best cut is missing (source-like) or empty
        (constant gate) contributes its trivial leaf, matching the
        pre-flat-engine ``self._best.get(x) or frozenset((x,))``.
        """
        cut_a = self._best[a]
        cut_b = self._best[b]
        merged = set(cut_a.leaves if cut_a else (a,))
        merged.update(cut_b.leaves if cut_b else (b,))
        merged.add(sel)
        return merged

    def _qualifies_tlut(self, nid: int, sel: int, a: int, b: int) -> bool:
        """TLUT recomputation pays off for gated, latch-adjacent leaf taps."""
        assert self._latch_adjacent is not None
        # leaf mux: both data inputs are user signals (taps), not other muxes
        if a in self._mux_nodes or b in self._mux_nodes:
            return False
        if a in self.free or b in self.free:
            return False
        if not (a in self._latch_adjacent or b in self._latch_adjacent):
            return False
        merged = self._tlut_leaves(sel, a, b)
        if len(merged) > self.cap:
            return False
        return cut_size(merged, self.free) <= self.k

    # -- polarity folding -------------------------------------------------------

    def _fold_polarity(self, result: MappingResult) -> None:
        """Fold single-input LUTs into their readers' configuration bits.

        A buffer or inverter LUT whose every reader is another LUT of the
        cover disappears: readers re-express their function on the fold's
        source with adjusted polarity.  Each fold is one extra tunable
        connection (the reader's input now routes through a configured
        switch choice), recorded via :attr:`MappingResult.tcons` with both
        sources equal.
        """
        net = result.network
        changed = True
        while changed:
            changed = False
            # collect candidate folds: 1-real-input LUTs
            candidates: dict[int, tuple[int, bool]] = {}
            for nid, lut in result.luts.items():
                phys = lut.physical_inputs
                if len(phys) != 1 or lut.is_tlut:
                    continue
                if nid in self.taps:
                    continue  # observed nets must keep their own signal
                var = lut.leaves.index(phys[0])
                buf = lut.func.is_buffer_of()
                inv = lut.func.is_inverter_of()
                if buf == var:
                    candidates[nid] = (phys[0], False)
                elif inv == var:
                    candidates[nid] = (phys[0], True)
            if not candidates:
                break

            # reader map over the current cover
            readers: dict[int, list[int]] = {}
            for nid, lut in result.luts.items():
                for leaf in lut.physical_inputs:
                    readers.setdefault(leaf, []).append(nid)
            blocked: set[int] = set()
            for t in result.tcons.values():
                blocked.add(t.source0)
                blocked.add(t.source1)
            for latch in net.latches:
                blocked.add(latch.driver)
            for po in net.po_names:
                blocked.add(net.require(po))

            for nid, (src, inverted) in candidates.items():
                if nid in blocked:
                    continue
                if src in candidates or src in result.tcons:
                    continue  # fold one layer per sweep; chains converge
                reading = readers.get(nid, [])
                if not reading:
                    continue
                ok = True
                for r in reading:
                    lut = result.luts[r]
                    if nid not in lut.leaves or src in lut.leaves:
                        ok = False
                        break
                if not ok:
                    continue
                for r in reading:
                    lut = result.luts[r]
                    var = lut.leaves.index(nid)
                    func = lut.func
                    if inverted:
                        c0 = func.cofactor(var, 0)
                        c1 = func.cofactor(var, 1)
                        v = TruthTable.var(var, func.n_vars)
                        func = (v & c0) | (~v & c1)
                    new_leaves = tuple(
                        src if l == nid else l for l in lut.leaves
                    )
                    result.luts[r] = LutImpl(
                        root=lut.root,
                        leaves=new_leaves,
                        func=func,
                        param_leaves=lut.param_leaves,
                    )
                del result.luts[nid]
                result.polarity_folds += 1
                changed = True
