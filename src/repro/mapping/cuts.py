"""Priority-cut enumeration over flat integer bitsets.

A *cut* of node ``n`` is a set of nodes (leaves) such that every path from
the combinational sources to ``n`` passes through a leaf; the logic between
the leaves and ``n`` (the cone) can then be collapsed into one LUT.  We use
the standard priority-cuts scheme: per node, keep only the ``cut_limit``
best cuts under the active cost mode, merging fan-in cut sets pairwise.

The enumeration is parameter-aware: leaves in ``free_leaves`` (debug
parameters) do not count toward the K-input limit, because parameters are
folded into LUT configuration bits rather than occupying physical pins —
the TLUT mechanism of the paper (§IV-A.3).

**Representation.**  All hot set algebra runs on integer bitmasks: union is
``a | b``, deduplication keys on the mask, subsumption is ``a & b == a``
and physical size is ``(mask & phys_mask).bit_count()``.  The crucial
detail is *which* bit domain.  A mask over global node ids costs
``O(n_nodes/64)`` machine words per operation — on an 8 000-node design
every union touches ~140 words for a 6-leaf cut.  :func:`merge_ranked`
therefore builds a **per-merge local domain**: the union of all fan-in cut
leaves (a few dozen nodes at most) is indexed in first-encounter order, so
every mask fits in one or two machine words and per-leaf costs (arrival,
area-flow contribution, freeness) become flat local arrays.  Only the few
surviving cuts are materialized back to global leaf tuples.

A :class:`Cut` stores its sorted global leaf tuple; the global bitmask is
derived lazily (``.mask``) for the cold paths that want whole-network
subsumption.  The cost slots (``size``/``arr``/``af``/``stamp``) are a
per-pass memo owned by :class:`~repro.mapping.mapper_base.PriorityCutMapper`
(:func:`merge_ranked` fills them for the cuts it builds, under the stamp
the caller supplies).  Cuts still behave as read-only sets (``in``,
``len``, iteration, ``==`` against ``frozenset``), so existing set-based
callers keep working; :mod:`repro.mapping.ref` preserves the original
frozenset implementation the property tests compare against.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Collection, Iterable

from repro.errors import MappingError
from repro.netlist.network import LogicNetwork, NodeKind

_rank_of = itemgetter(0)

__all__ = [
    "Cut",
    "cut_size",
    "leaves_mask",
    "merge_cut_lists",
    "merge_ranked",
    "enumerate_cuts",
]


class Cut:
    """One cut: an immutable leaf set plus mapper-owned cost memo slots."""

    __slots__ = ("leaves", "_mask", "size", "stamp", "arr", "af")

    def __init__(self, leaves: tuple[int, ...], mask: int | None = None):
        self.leaves = leaves
        self._mask = mask
        self.size = -1     # physical leaf count; cached by the mapper
        self.stamp = 0     # pass stamp of the cached costs below
        self.arr = 0.0     # arrival (LUT level) under the stamped pass
        self.af = 0.0      # area flow under the stamped pass

    @classmethod
    def from_leaves(cls, leaves: Iterable[int]) -> "Cut":
        return cls(tuple(sorted(set(leaves))))

    @property
    def mask(self) -> int:
        """Global-domain bitmask over node ids (bit ``i`` = node ``i`` is a
        leaf).  Built lazily: the hot merge path never needs it."""
        m = self._mask
        if m is None:
            m = 0
            for l in self.leaves:
                m |= 1 << l
            self._mask = m
        return m

    # pickling ships only the leaves — cost slots are pass-local state and
    # the global mask is denser to serialize than to rebuild
    def __reduce__(self):
        return (Cut, (self.leaves,))

    # -- read-only set protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.leaves)

    def __iter__(self):
        return iter(self.leaves)

    def __contains__(self, nid: object) -> bool:
        return isinstance(nid, int) and nid >= 0 and (self.mask >> nid) & 1 == 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Cut):
            return self.leaves == other.leaves
        if isinstance(other, (frozenset, set)):
            return len(other) == len(self.leaves) and all(
                l in other for l in self.leaves
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.leaves)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cut{self.leaves}"


def leaves_mask(leaves: Iterable[int]) -> int:
    """Global-domain bitmask over node ids for an iterable of leaves."""
    mask = 0
    for l in leaves:
        mask |= 1 << l
    return mask


def _as_cut(c) -> Cut:
    return c if type(c) is Cut else Cut.from_leaves(c)


def cut_size(cut, free_leaves: Collection[int]) -> int:
    """Physical input count of a cut: leaves minus parameter leaves."""
    if not free_leaves:
        return len(cut)
    if type(cut) is Cut and type(free_leaves) is int:
        return (cut.mask & ~free_leaves).bit_count()
    return sum(1 for l in cut if l not in free_leaves)


# -- hot path: local-domain ranked merge ------------------------------------


#: Rank modes understood by :func:`merge_ranked`.  Candidates order by the
#: corresponding tuple (smaller = better): ``depth`` = (arrival, physical
#: size); ``area`` = (area flow, arrival, physical size); ``depth-size`` =
#: (arrival, total leaves) — SimpleMap's structural rank.  Remaining ties
#: break on first occurrence in pair order.  Depth-oriented modes exclude
#: area flow from the rank so the pair loop skips its arithmetic; area
#: recovery is where area flow decides.
RANK_MODES = ("depth", "area", "depth-size")


def merge_ranked(
    lists: list[list[Cut]],
    k: int,
    limit: int,
    cap: int,
    arrival: list[float],
    laf_norm: list[float],
    free: Collection[int],
    rank_mode: str,
    stamp: int,
) -> list[Cut]:
    """Pairwise-merge fan-in cut lists in a per-merge local bit domain.

    ``rank_mode`` (see :data:`RANK_MODES`) orders candidate cuts by their
    arrival, physical size, area flow and total leaf count; per-leaf costs
    come from the flat ``arrival``/``laf_norm`` arrays (indexed by node id;
    ``laf_norm`` is the leaf's area flow already divided by its reference
    estimate, zero for free/source leaves) and the ``free`` parameter set.
    Surviving cuts are returned as :class:`Cut` objects with their cost
    slots filled under ``stamp``, so the caller's ranked choice never
    recomputes them.
    Intermediate results are pruned to ``limit`` after every pairwise merge
    (standard priority-cuts practice: slightly lossy, massively faster than
    the full cross product for 3+ fan-ins).

    Candidate costs compose incrementally from the pair being merged: a
    union's arrival is ``max`` of the parts (exact), and its leaf count,
    physical size and area flow are the sums corrected by the overlap
    (``a & b``), so no candidate ever needs a full leaf walk.

    Cost determinism: arrival composes as a max (order-free); area flow
    composes as ``af(a) + af(b) - 1 - overlap`` with the overlap summed in
    local-index order — every term is fully determined by the order of
    ``lists`` and of the cuts within them, so the serial mapper and the
    level-wave workers produce bit-identical floats.

    With two or more lists the result is sorted by the rank mode (best
    first, first-occurrence tie-break) — callers may take element 0 as the
    ranked choice.  The single-list pass-through keeps the fan-in's own
    (differently-ranked) order.
    """
    if rank_mode not in RANK_MODES:
        raise MappingError(f"unknown rank mode {rank_mode!r}")
    if not lists:
        return [Cut(())]
    if len(lists) == 1:
        # nothing to merge: hand back the fan-in's list (costs left to the
        # caller's lazy per-pass memo, as these objects are shared)
        return lists[0]

    # local leaf table in first-encounter order
    loc: dict[int, int] = {}
    glob: list[int] = []
    for lst in lists:
        for c in lst:
            for leaf in c.leaves:
                if leaf not in loc:
                    loc[leaf] = len(glob)
                    glob.append(leaf)
    n_loc = len(glob)
    phys_local = (1 << n_loc) - 1
    if free:
        for i, leaf in enumerate(glob):
            if leaf in free:
                phys_local ^= 1 << i
    laf = [laf_norm[leaf] for leaf in glob]

    def localize(c: Cut) -> tuple:
        """(mask, arr, size, af, n_leaves) of an input cut.

        Costs are memoized on the cut under ``stamp`` (shared fan-in lists
        are localized by every fan-out, but costed once per pass); the sum
        runs in sorted-leaf order, identical wherever it is first computed.
        """
        m = 0
        if c.stamp == stamp:
            for leaf in c.leaves:
                m |= 1 << loc[leaf]
            return (m, c.arr, c.size, c.af, len(c.leaves))
        arr = 0.0
        af = 1.0
        for leaf in c.leaves:
            m |= 1 << loc[leaf]
            a = arrival[leaf]
            if a > arr:
                arr = a
            af += laf[loc[leaf]]
        size = (m & phys_local).bit_count()
        c.arr = arr + 1.0
        c.size = size
        c.af = af
        c.stamp = stamp
        return (m, c.arr, size, af, len(c.leaves))

    no_free = phys_local == (1 << n_loc) - 1
    by_depth = rank_mode == "depth"
    by_area = rank_mode == "area"

    current = [localize(c) for c in lists[0]]
    if not by_area:
        # depth/depth-size modes rank without area flow, so the pair loop
        # skips the af arithmetic entirely; survivors get their af from the
        # final masks below.  Drop the slot so the loop unpacks 4-tuples.
        current = [(m, arr, size, nl) for m, arr, size, _af, nl in current]
    for nxt in lists[1:]:
        nxt_local = [localize(c) for c in nxt]
        seen: set[int] = set()
        seen_add = seen.add
        merged: list[tuple] = []
        madd = merged.append
        if no_free and cap >= k:
            # Fast loops for the all-physical domain: every leaf counts, so
            # nl == size, the size check subsumes the cap check (unions are
            # at most 2k <= cap+k leaves but must pass size <= k anyway),
            # and depth-size rank (arr, nl) degenerates to depth (arr, size).
            if by_area:
                for am, aarr, asize, aaf, _anl in current:
                    af_a = aaf - 1.0
                    for bm, barr, bsize, baf, _bnl in nxt_local:
                        m = am | bm
                        ov = am & bm
                        if ov:
                            size = asize + bsize - ov.bit_count()
                            if size > k or m in seen:
                                continue
                            seen_add(m)
                            af = af_a + baf
                            while ov:  # subtract double-counted overlap
                                b = ov & -ov
                                af -= laf[b.bit_length() - 1]
                                ov ^= b
                        else:
                            size = asize + bsize
                            if size > k or m in seen:
                                continue
                            seen_add(m)
                            af = af_a + baf
                        arr = aarr if aarr >= barr else barr
                        madd(((af, arr, size), m, arr, size, af, size))
            else:
                for am, aarr, asize, _anl in current:
                    for bm, barr, bsize, _baf, _bnl in nxt_local:
                        m = am | bm
                        size = asize + bsize - (am & bm).bit_count()
                        if size > k or m in seen:
                            continue
                        seen_add(m)
                        arr = aarr if aarr >= barr else barr
                        madd(((arr, size), m, arr, size, size))
        elif by_area:
            for am, aarr, asize, aaf, anl in current:
                cap_a = cap - anl
                k_a = k - asize
                af_a = aaf - 1.0
                for bm, barr, bsize, baf, bnl in nxt_local:
                    m = am | bm
                    if m in seen:
                        continue
                    seen_add(m)
                    ov = am & bm
                    if ov:
                        ovc = ov.bit_count()
                        nl = anl + bnl - ovc
                        if bnl - ovc > cap_a:
                            continue
                        if no_free:
                            size = nl
                            if bsize - ovc > k_a:
                                continue
                        else:
                            size = asize + bsize - (ov & phys_local).bit_count()
                            if size > k:
                                continue
                        af = af_a + baf
                        while ov:  # subtract double-counted overlap leaves
                            b = ov & -ov
                            af -= laf[b.bit_length() - 1]
                            ov ^= b
                    else:
                        if bnl > cap_a:
                            continue
                        nl = anl + bnl
                        if bsize > k_a:
                            continue
                        size = asize + bsize
                        af = af_a + baf
                    arr = aarr if aarr >= barr else barr
                    madd(((af, arr, size), m, arr, size, af, nl))
        else:
            for am, aarr, asize, anl in current:
                cap_a = cap - anl
                k_a = k - asize
                for bm, barr, bsize, _baf, bnl in nxt_local:
                    m = am | bm
                    if m in seen:
                        continue
                    seen_add(m)
                    ov = am & bm
                    if ov:
                        ovc = ov.bit_count()
                        nl = anl + bnl - ovc
                        if bnl - ovc > cap_a:
                            continue
                        if no_free:
                            size = nl
                            if bsize - ovc > k_a:
                                continue
                        else:
                            size = asize + bsize - (ov & phys_local).bit_count()
                            if size > k:
                                continue
                    else:
                        if bnl > cap_a:
                            continue
                        nl = anl + bnl
                        if bsize > k_a:
                            continue
                        size = asize + bsize
                    arr = aarr if aarr >= barr else barr
                    if by_depth:
                        madd(((arr, size), m, arr, size, nl))
                    else:
                        madd(((arr, nl), m, arr, size, nl))
        if not merged:
            return []
        # prune: stable sort on the precomputed rank keeps first-occurrence
        # order on ties, then drop cuts dominated by an already-kept subset
        merged.sort(key=_rank_of)
        kept: list[tuple] = []
        kept_masks: list[int] = []
        for cand in merged:
            m = cand[1]
            for km in kept_masks:
                if km & m == km:
                    break
            else:
                kept.append(cand)
                kept_masks.append(m)
                if len(kept) >= limit:
                    break
        current = [cand[1:] for cand in kept]

    out: list[Cut] = []
    if by_area:
        for m, arr, size, af, _nl in current:
            leaves = []
            mm = m
            while mm:
                b = mm & -mm
                leaves.append(glob[b.bit_length() - 1])
                mm ^= b
            c = Cut(tuple(sorted(leaves)))
            c.arr = arr
            c.size = size
            c.af = af
            c.stamp = stamp
            out.append(c)
    else:
        for m, arr, size, _nl in current:
            leaves = []
            af = 1.0
            mm = m
            while mm:
                b = mm & -mm
                i = b.bit_length() - 1
                leaves.append(glob[i])
                af += laf[i]
                mm ^= b
            c = Cut(tuple(sorted(leaves)))
            c.arr = arr
            c.size = size
            c.af = af
            c.stamp = stamp
            out.append(c)
    return out


# -- compatibility path: global-domain merge over explicit rank --------------


def _prune(
    cuts: list[Cut],
    limit: int,
    rank: Callable[[Cut], tuple],
) -> list[Cut]:
    """Dedup, drop dominated cuts, keep the ``limit`` best by ``rank``.

    Leaf-keyed dedup preserves first occurrence and the sort is stable, so
    tie-breaking matches the set-based reference exactly.
    """
    seen: dict[tuple[int, ...], Cut] = {}
    for c in cuts:
        if c.leaves not in seen:
            seen[c.leaves] = c
    uniq = list(seen.values())
    uniq.sort(key=rank)
    kept: list[Cut] = []
    kept_masks: list[int] = []
    for c in uniq:
        cm = c.mask
        dominated = False
        for km in kept_masks:
            if km & cm == km:  # an existing cut with a subset of leaves wins
                dominated = True
                break
        if not dominated:
            kept.append(c)
            kept_masks.append(cm)
            if len(kept) >= limit:
                break
    return kept


def _merge_masked(
    lists: list[list[Cut]],
    k: int,
    limit: int,
    free_mask: int,
    rank: Callable[[Cut], tuple],
    cap: int,
) -> list[Cut]:
    """Pairwise-merge fan-in cut lists under the size limits (global masks).

    Serves callers with an arbitrary :class:`Cut`-valued ``rank`` (the
    standalone :func:`enumerate_cuts` and :func:`merge_cut_lists` API);
    the mapper's hot path uses :func:`merge_ranked` instead.
    """
    if not lists:
        return [Cut(())]
    current = lists[0]
    for nxt in lists[1:]:
        merged: list[Cut] = []
        seen: set[int] = set()
        for a in current:
            am = a.mask
            for b in nxt:
                m = am | b.mask
                if m in seen:
                    continue
                seen.add(m)
                if m.bit_count() > cap:
                    continue
                if (m & ~free_mask).bit_count() > k:
                    continue
                if m == am:
                    merged.append(a)
                elif m == b.mask:
                    merged.append(b)
                else:
                    merged.append(
                        Cut(tuple(sorted({*a.leaves, *b.leaves})), m)
                    )
        if not merged:
            return []
        current = _prune(merged, limit, rank)
    return current


def merge_cut_lists(
    lists: list[list],
    k: int,
    limit: int,
    free_leaves: Collection[int],
    rank: Callable[[Cut], tuple],
    max_total_leaves: int,
) -> list[Cut]:
    """Pairwise-merge fan-in cut lists under the size limits.

    Accepts cuts as :class:`Cut` objects or as plain ``frozenset`` leaf
    sets (normalized on entry); ``rank`` sees :class:`Cut` objects, which
    support ``len``/iteration like the sets they replace.
    """
    norm = [
        lst if all(type(c) is Cut for c in lst)
        else [_as_cut(c) for c in lst]
        for lst in lists
    ]
    return _merge_masked(
        norm, k, limit, leaves_mask(free_leaves), rank, max_total_leaves
    )


def enumerate_cuts(
    net: LogicNetwork,
    k: int = 6,
    cut_limit: int = 8,
    *,
    boundary: Collection[int] = (),
    free_leaves: Collection[int] = (),
    rank: Callable[[Cut], tuple] | None = None,
    max_total_leaves: int | None = None,
) -> dict[int, list[Cut]]:
    """Enumerate priority cuts for every node of ``net``.

    Parameters
    ----------
    boundary:
        Nodes that expose only their trivial cut to fan-outs (mapping may
        not absorb through them) — used for observability constraints.
    free_leaves:
        Parameter nodes that don't count toward ``k``.
    rank:
        Cut ranking (smaller = better); default ranks by physical size.
    max_total_leaves:
        Hard cap on total leaves (including free ones) to bound truth-table
        width; defaults to ``k + 6``.

    Returns the *fan-out-visible* cut lists (trivial cut always included).
    """
    if k < 2:
        raise MappingError(f"K must be >= 2, got {k}")
    free = frozenset(free_leaves)
    free_mask = leaves_mask(free)
    bset = frozenset(boundary)
    cap = max_total_leaves if max_total_leaves is not None else k + 6
    if rank is None:
        rank = lambda c: (  # noqa: E731
            (c.mask & ~free_mask).bit_count(), len(c.leaves)
        )

    # preallocated per-node cut array, indexed by dense node id
    cuts: list[list[Cut] | None] = [None] * net.n_nodes
    order = net.topo_order()
    for nid in order:
        trivial = Cut((nid,), 1 << nid)
        if net.kind(nid) != NodeKind.GATE or nid in free:
            cuts[nid] = [trivial]
            continue
        fanins = net.fanins(nid)
        if not fanins:  # constant gate
            cuts[nid] = [trivial]
            continue
        if nid in bset:
            cuts[nid] = [trivial]
            continue
        merged = _merge_masked(
            [cuts[f] for f in fanins], k, cut_limit, free_mask, rank, cap
        )
        result = [trivial] + [c for c in merged if c.leaves != trivial.leaves]
        pruned = _prune(result, cut_limit + 1, rank)
        if all(c.leaves != trivial.leaves for c in pruned):
            pruned.append(trivial)
        cuts[nid] = pruned
    return {nid: cuts[nid] for nid in order}
