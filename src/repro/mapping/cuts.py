"""Priority-cut enumeration.

A *cut* of node ``n`` is a set of nodes (leaves) such that every path from
the combinational sources to ``n`` passes through a leaf; the logic between
the leaves and ``n`` (the cone) can then be collapsed into one LUT.  We use
the standard priority-cuts scheme: per node, keep only the ``cut_limit``
best cuts under the active cost mode, merging fan-in cut sets pairwise.

The enumeration is parameter-aware: leaves in ``free_leaves`` (debug
parameters) do not count toward the K-input limit, because parameters are
folded into LUT configuration bits rather than occupying physical pins —
the TLUT mechanism of the paper (§IV-A.3).
"""

from __future__ import annotations

from typing import Callable, Collection, Iterable

from repro.errors import MappingError
from repro.netlist.network import LogicNetwork, NodeKind

__all__ = ["Cut", "cut_size", "merge_cut_lists", "enumerate_cuts"]

Cut = frozenset
"""A cut is a frozenset of leaf node ids."""


def cut_size(cut: Cut, free_leaves: Collection[int]) -> int:
    """Physical input count of a cut: leaves minus parameter leaves."""
    if not free_leaves:
        return len(cut)
    return sum(1 for l in cut if l not in free_leaves)


def _prune(
    cuts: list[Cut],
    limit: int,
    rank: Callable[[Cut], tuple],
) -> list[Cut]:
    """Dedup, drop dominated cuts, keep the ``limit`` best by ``rank``."""
    uniq = list(dict.fromkeys(cuts))
    uniq.sort(key=rank)
    kept: list[Cut] = []
    for c in uniq:
        dominated = False
        for k in kept:
            if k <= c:  # an existing cut with a subset of leaves is better
                dominated = True
                break
        if not dominated:
            kept.append(c)
            if len(kept) >= limit:
                break
    return kept


def merge_cut_lists(
    lists: list[list[Cut]],
    k: int,
    limit: int,
    free_leaves: Collection[int],
    rank: Callable[[Cut], tuple],
    max_total_leaves: int,
) -> list[Cut]:
    """Pairwise-merge fan-in cut lists under the size limits.

    Intermediate results are pruned to ``limit`` after every pairwise merge
    (standard priority-cuts practice: slightly lossy, massively faster than
    the full cross product for 3+ fan-ins).
    """
    if not lists:
        return [frozenset()]
    current = lists[0]
    for nxt in lists[1:]:
        merged: list[Cut] = []
        for a in current:
            for b in nxt:
                u = a | b
                if len(u) > max_total_leaves:
                    continue
                if cut_size(u, free_leaves) > k:
                    continue
                merged.append(u)
        if not merged:
            return []
        current = _prune(merged, limit, rank)
    return current


def enumerate_cuts(
    net: LogicNetwork,
    k: int = 6,
    cut_limit: int = 8,
    *,
    boundary: Collection[int] = (),
    free_leaves: Collection[int] = (),
    rank: Callable[[Cut], tuple] | None = None,
    max_total_leaves: int | None = None,
) -> dict[int, list[Cut]]:
    """Enumerate priority cuts for every node of ``net``.

    Parameters
    ----------
    boundary:
        Nodes that expose only their trivial cut to fan-outs (mapping may
        not absorb through them) — used for observability constraints.
    free_leaves:
        Parameter nodes that don't count toward ``k``.
    rank:
        Cut ranking (smaller = better); default ranks by physical size.
    max_total_leaves:
        Hard cap on total leaves (including free ones) to bound truth-table
        width; defaults to ``k + 6``.

    Returns the *fan-out-visible* cut lists (trivial cut always included).
    """
    if k < 2:
        raise MappingError(f"K must be >= 2, got {k}")
    free = frozenset(free_leaves)
    bset = frozenset(boundary)
    cap = max_total_leaves if max_total_leaves is not None else k + 6
    if rank is None:
        rank = lambda c: (cut_size(c, free), len(c))  # noqa: E731

    cuts: dict[int, list[Cut]] = {}
    for nid in net.topo_order():
        trivial = frozenset((nid,))
        if net.kind(nid) != NodeKind.GATE or nid in free:
            cuts[nid] = [trivial]
            continue
        fanins = net.fanins(nid)
        if not fanins:  # constant gate
            cuts[nid] = [trivial]
            continue
        if nid in bset:
            cuts[nid] = [trivial]
            continue
        merged = merge_cut_lists(
            [cuts[f] for f in fanins], k, cut_limit, free, rank, cap
        )
        result = [trivial] + [c for c in merged if c != trivial]
        cuts[nid] = _prune(result, cut_limit + 1, rank)
        if trivial not in cuts[nid]:
            cuts[nid].append(trivial)
    return cuts
