"""Reference annealing placer (the pre-optimization implementation).

This is the dictionary-based simulated-annealing placer exactly as it
shipped before the vectorized rewrite of :mod:`repro.place.tplace`: every
trial move recomputes the full half-perimeter bounding box of each
affected net from the ``loc_of`` dictionary.  It is kept as the *quality
and speed baseline*:

* ``tests/test_physical_perf.py`` gates the rewritten placer's final HPWL
  against this implementation on the paper-suite design;
* ``benchmarks/bench_offline.py`` measures the physical-stage speedup by
  running both on identical packed designs.

Not used by any production path — the compile pipeline routes through
:func:`repro.place.tplace.place_design`.
"""

from __future__ import annotations

import numpy as np

from repro.arch.device import DeviceGrid
from repro.errors import PlacementError
from repro.pack.tpack import PackedDesign
from repro.place.tplace import Placement, _Block, _build_nets
from repro.util.rng import RngHub

__all__ = ["place_design_ref"]


def _net_hpwl(net: list[int], loc_of: dict[int, tuple[int, int, int]]) -> float:
    xs = [loc_of[b][0] for b in net]
    ys = [loc_of[b][1] for b in net]
    return float(max(xs) - min(xs) + max(ys) - min(ys))


def place_design_ref(
    packed: PackedDesign,
    grid: DeviceGrid | None = None,
    *,
    seed: int = 2016,
    effort: float = 4.0,
    utilization: float = 0.7,
) -> Placement:
    """Anneal a placement for ``packed`` (reference implementation)."""
    physical = packed.physical

    blocks: list[_Block] = []
    for c in packed.clusters:
        blocks.append(_Block(index=len(blocks), kind="clb", payload=c.index))
    for s in physical.pi_signals:
        blocks.append(_Block(index=len(blocks), kind="ipad", payload=s))
    for s in physical.po_signals:
        blocks.append(_Block(index=len(blocks), kind="opad", payload=s))

    n_pads = sum(1 for b in blocks if b.kind != "clb")
    if grid is None:
        grid = DeviceGrid.for_design(
            packed.arch,
            n_clbs=max(1, packed.n_clusters),
            n_pads=n_pads,
            utilization=utilization,
        )
    if grid.n_clbs < packed.n_clusters or grid.n_pads < n_pads:
        raise PlacementError(
            f"device {grid!r} too small: need {packed.n_clusters} CLBs, "
            f"{n_pads} pads"
        )

    rng = RngHub(seed).stream(f"place/{physical.network.name}")

    clb_sites = [(x, y, 0) for (x, y) in grid.clb_positions()]
    io_sites = [
        (x, y, k)
        for (x, y) in grid.io_positions()
        for k in range(grid.spec.io_capacity)
    ]

    placement = Placement(packed=packed, grid=grid, blocks=blocks)
    site_block: dict[tuple[int, int, int], int] = {}

    clb_blocks = [b for b in blocks if b.kind == "clb"]
    pad_blocks = [b for b in blocks if b.kind != "clb"]
    for b, site in zip(clb_blocks, rng.permutation(len(clb_sites))[: len(clb_blocks)]):
        placement.loc_of[b.index] = clb_sites[int(site)]
        site_block[clb_sites[int(site)]] = b.index
    for b, site in zip(pad_blocks, rng.permutation(len(io_sites))[: len(pad_blocks)]):
        placement.loc_of[b.index] = io_sites[int(site)]
        site_block[io_sites[int(site)]] = b.index

    nets, net_signal = _build_nets(packed, blocks)
    placement.nets = nets
    placement.net_signal = net_signal

    nets_of_block: dict[int, list[int]] = {}
    for ni, net in enumerate(nets):
        for b in net:
            nets_of_block.setdefault(b, []).append(ni)

    net_cost = np.array(
        [_net_hpwl(net, placement.loc_of) for net in nets], dtype=np.float64
    )
    total = float(net_cost.sum())

    def delta_for_move(moved: list[int]) -> tuple[float, dict[int, float]]:
        affected: set[int] = set()
        for b in moved:
            affected.update(nets_of_block.get(b, ()))
        updates: dict[int, float] = {}
        d = 0.0
        for ni in affected:
            new = _net_hpwl(nets[ni], placement.loc_of)
            d += new - net_cost[ni]
            updates[ni] = new
        return d, updates

    sites_by_kind = {"clb": clb_sites, "io": io_sites}
    movable = [b for b in blocks if nets_of_block.get(b.index)]
    if not movable:
        placement.cost = total
        return placement

    n_moves = max(64, int(effort * len(blocks) ** (4.0 / 3.0)))

    # initial temperature: std of random move deltas
    deltas = []
    for _ in range(min(100, 10 * len(movable))):
        b = movable[int(rng.integers(0, len(movable)))]
        pool = sites_by_kind["clb" if b.kind == "clb" else "io"]
        target = pool[int(rng.integers(0, len(pool)))]
        old = placement.loc_of[b.index]
        if target == old:
            continue
        other = site_block.get(target)
        placement.loc_of[b.index] = target
        if other is not None:
            placement.loc_of[other] = old
        d, _ = delta_for_move([b.index] + ([other] if other is not None else []))
        placement.loc_of[b.index] = old
        if other is not None:
            placement.loc_of[other] = target
        deltas.append(d)
    temp = 20.0 * (float(np.std(deltas)) if deltas else 1.0) or 1.0

    min_temp = 0.005 * max(1.0, total) / max(1, len(nets))
    while temp > min_temp:
        accepted = 0
        for _ in range(n_moves):
            b = movable[int(rng.integers(0, len(movable)))]
            pool = sites_by_kind["clb" if b.kind == "clb" else "io"]
            target = pool[int(rng.integers(0, len(pool)))]
            old = placement.loc_of[b.index]
            if target == old:
                continue
            other = site_block.get(target)
            if other == b.index:
                continue
            # tentatively apply
            placement.loc_of[b.index] = target
            if other is not None:
                placement.loc_of[other] = old
            moved = [b.index] + ([other] if other is not None else [])
            d, updates = delta_for_move(moved)
            placement.moves_tried += 1
            if d <= 0 or rng.random() < np.exp(-d / temp):
                site_block[target] = b.index
                if other is not None:
                    site_block[old] = other
                else:
                    site_block.pop(old, None)
                for ni, v in updates.items():
                    net_cost[ni] = v
                total += d
                accepted += 1
                placement.moves_accepted += 1
            else:
                placement.loc_of[b.index] = old
                if other is not None:
                    placement.loc_of[other] = target
        rate = accepted / max(1, n_moves)
        # VPR-style adaptive cooling: cool slowly in the productive window
        if rate > 0.96:
            temp *= 0.5
        elif rate > 0.8:
            temp *= 0.9
        elif rate > 0.15:
            temp *= 0.95
        else:
            temp *= 0.8

    placement.cost = float(net_cost.sum())
    return placement
