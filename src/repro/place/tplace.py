"""Simulated-annealing placement (the TPlace step of TPaR).

Classic VPR-style annealing: blocks are CLB clusters and I/O pads, the
cost is the half-perimeter wirelength (HPWL) summed over nets, moves swap
two blocks (or move one to a free site) of the same type, and the schedule
starts hot enough to accept most moves, cooling geometrically until
improvements dry up.

Tunable (TCON) trees contribute placement nets spanning their leaf drivers
and root readers, pulling the shared routing region together — placement's
view of the paper's resource sharing.

The anneal's inner loop is the offline flow's hottest code, so it runs on
flat tables instead of the result dictionaries: block coordinates live in
plain lists indexed by block, sites are integer ids with a ``block_at``
occupancy table, randomness is drawn in one vectorized batch per
temperature step, and every net carries an **incremental bounding box**
(min/max per axis plus the count of members sitting on each boundary).  A
trial move then updates each affected net in O(1) — a full member rescan
happens only when a block leaves a boundary it alone occupied.  The
reference implementation this was rewritten from (and is quality-gated
against) is :func:`repro.place.ref.place_design_ref`.

The setup half of the anneal (blocks, grid, initial assignment, net
tables, incremental state, the ``try_move`` evaluator) lives in
:class:`_PlacerState`, shared with the deterministic region-parallel
annealer of :mod:`repro.place.parallel` — both start from the identical
initial placement and temperature estimate for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp

from repro.arch.device import DeviceGrid
from repro.errors import PlacementError
from repro.pack.tpack import PackedDesign
from repro.util.rng import RngHub

__all__ = ["Placement", "place_design"]


@dataclass
class _Block:
    index: int
    kind: str       # "clb" | "ipad" | "opad"
    payload: int    # cluster index or signal id


@dataclass
class Placement:
    """Result: block locations plus net bookkeeping."""

    packed: PackedDesign
    grid: DeviceGrid
    blocks: list[_Block] = field(default_factory=list)
    loc_of: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    """block index -> (x, y, subtile)."""
    nets: list[list[int]] = field(default_factory=list)
    """per net: [driver block, reader blocks...] (for cost)."""
    net_signal: list[int] = field(default_factory=list)
    cost: float = 0.0
    moves_tried: int = 0
    moves_accepted: int = 0

    def cluster_site(self, cluster_index: int) -> tuple[int, int]:
        for b in self.blocks:
            if b.kind == "clb" and b.payload == cluster_index:
                x, y, _ = self.loc_of[b.index]
                return (x, y)
        raise PlacementError(f"cluster {cluster_index} not placed")

    def pad_site(self, signal: int, kind: str) -> tuple[int, int, int]:
        for b in self.blocks:
            if b.kind == kind and b.payload == signal:
                return self.loc_of[b.index]
        raise PlacementError(f"{kind} for signal {signal} not placed")

    def hpwl(self) -> float:
        return self.cost


def _build_nets(packed: PackedDesign, blocks: list[_Block]) -> tuple[list[list[int]], list[int]]:
    """Placement nets: driver block followed by reader blocks, per signal."""
    physical = packed.physical
    block_of_cluster = {
        b.payload: b.index for b in blocks if b.kind == "clb"
    }
    block_of_ipad = {b.payload: b.index for b in blocks if b.kind == "ipad"}
    block_of_opad = {b.payload: b.index for b in blocks if b.kind == "opad"}

    def producer_block(sig: int) -> int | None:
        c = packed.cluster_of_signal.get(sig)
        if c is not None:
            return block_of_cluster[c]
        return block_of_ipad.get(sig)

    readers: dict[int, set[int]] = {}
    for c in packed.clusters:
        blk = block_of_cluster[c.index]
        for s in c.external_inputs():
            readers.setdefault(s, set()).add(blk)
    for s, blk in block_of_opad.items():
        readers.setdefault(s, set()).add(blk)

    nets: list[list[int]] = []
    net_signal: list[int] = []
    groups = physical.tunable_groups
    for sig in sorted(readers):
        if sig in groups:
            # tunable tree: net spans every leaf producer and all readers
            members: set[int] = set(readers[sig])
            for leaf, _cond in groups[sig].options:
                p = producer_block(leaf)
                if p is None and leaf in groups:
                    continue  # nested tree contributes through its own net
                if p is None:
                    raise PlacementError(
                        f"tunable leaf {physical.signal_name(leaf)!r} has no producer"
                    )
                members.add(p)
            nets.append(sorted(members))
            net_signal.append(sig)
            continue
        p = producer_block(sig)
        if p is None:
            raise PlacementError(
                f"signal {physical.signal_name(sig)!r} has no producer"
            )
        members = set(readers[sig]) | {p}
        if len(members) > 1:
            nets.append(sorted(members))
            net_signal.append(sig)
    return nets, net_signal


def _bbox_scan(members: tuple[int, ...], bx: list[int], by: list[int]):
    """Full bounding-box state of one net: boundaries plus boundary counts."""
    b0 = members[0]
    xmn = xmx = bx[b0]
    ymn = ymx = by[b0]
    nxmn = nxmx = nymn = nymx = 1
    for m in members[1:]:
        x = bx[m]
        if x < xmn:
            xmn, nxmn = x, 1
        elif x == xmn:
            nxmn += 1
        if x > xmx:
            xmx, nxmx = x, 1
        elif x == xmx:
            nxmx += 1
        y = by[m]
        if y < ymn:
            ymn, nymn = y, 1
        elif y == ymn:
            nymn += 1
        if y > ymx:
            ymx, nymx = y, 1
        elif y == ymx:
            nymx += 1
    return [xmn, nxmn, xmx, nxmx, ymn, nymn, ymx, nymx]


def _axis_move(mn: int, nmn: int, mx: int, nmx: int, old: int, new: int):
    """Incremental one-axis bbox update for one member moving old → new.

    Returns the new ``(mn, nmn, mx, nmx)`` or ``None`` when the move
    vacates a boundary the member alone occupied — the one case that
    needs a member rescan to find the new boundary.
    """
    if new < mn:
        mn, nmn = new, 1
    elif new == mn:
        nmn += 1
    if new > mx:
        mx, nmx = new, 1
    elif new == mx:
        nmx += 1
    if old == mn:
        nmn -= 1
        if nmn == 0:
            return None
    if old == mx:
        nmx -= 1
        if nmx == 0:
            return None
    return mn, nmn, mx, nmx


class _PlacerState:
    """Everything an annealer needs, built identically for every variant.

    Blocks, grid, the seed-derived RNG stream, the random initial
    assignment, net tables, the incremental bounding-box state and the
    ``try_move`` evaluator.  The serial :func:`place_design` and the
    region-parallel :func:`repro.place.parallel.place_design_regions`
    both drive this state — same seed ⇒ same initial placement, same
    temperature estimate — and differ only in their move loops.
    """

    def __init__(
        self,
        packed: PackedDesign,
        grid: DeviceGrid | None,
        seed: int,
        utilization: float,
    ) -> None:
        self.packed = packed
        physical = packed.physical

        blocks: list[_Block] = []
        for c in packed.clusters:
            blocks.append(_Block(index=len(blocks), kind="clb", payload=c.index))
        for s in physical.pi_signals:
            blocks.append(_Block(index=len(blocks), kind="ipad", payload=s))
        for s in physical.po_signals:
            blocks.append(_Block(index=len(blocks), kind="opad", payload=s))
        self.blocks = blocks

        n_pads = sum(1 for b in blocks if b.kind != "clb")
        if grid is None:
            grid = DeviceGrid.for_design(
                packed.arch,
                n_clbs=max(1, packed.n_clusters),
                n_pads=n_pads,
                utilization=utilization,
            )
        if grid.n_clbs < packed.n_clusters or grid.n_pads < n_pads:
            raise PlacementError(
                f"device {grid!r} too small: need {packed.n_clusters} CLBs, "
                f"{n_pads} pads"
            )
        self.grid = grid

        rng = self.rng = RngHub(seed).stream(f"place/{physical.network.name}")

        # sites as integer ids: CLB sites first, then I/O subtiles
        clb_sites = [(x, y, 0) for (x, y) in grid.clb_positions()]
        io_sites = [
            (x, y, k)
            for (x, y) in grid.io_positions()
            for k in range(grid.spec.io_capacity)
        ]
        sites = self.sites = clb_sites + io_sites
        n_clb_sites = self.n_clb_sites = len(clb_sites)
        self.n_io_sites = len(io_sites)
        site_x = self.site_x = [s[0] for s in sites]
        site_y = self.site_y = [s[1] for s in sites]
        n_sites = self.n_sites = len(sites)

        self.placement = Placement(packed=packed, grid=grid, blocks=blocks)
        n_blocks = self.n_blocks = len(blocks)
        site_of = self.site_of = [-1] * n_blocks
        block_at = self.block_at = [-1] * n_sites
        bx = self.bx = [0] * n_blocks
        by = self.by = [0] * n_blocks
        self.is_clb = [b.kind == "clb" for b in blocks]

        def assign(block: int, site: int) -> None:
            site_of[block] = site
            block_at[site] = block
            bx[block] = site_x[site]
            by[block] = site_y[site]

        clb_blocks = [b for b in blocks if b.kind == "clb"]
        pad_blocks = [b for b in blocks if b.kind != "clb"]
        for b, site in zip(clb_blocks, rng.permutation(n_clb_sites)[: len(clb_blocks)]):
            assign(b.index, int(site))
        for b, site in zip(pad_blocks, rng.permutation(len(io_sites))[: len(pad_blocks)]):
            assign(b.index, n_clb_sites + int(site))

        nets, net_signal = _build_nets(packed, blocks)
        self.placement.nets = nets
        self.placement.net_signal = net_signal
        members = self.members = [tuple(net) for net in nets]
        self.n_nets = n_nets = len(nets)

        nets_of_block: list[list[int]] = [[] for _ in range(n_blocks)]
        for ni, net in enumerate(members):
            for b in net:
                nets_of_block[b].append(ni)
        self.nets_of_block = nets_of_block

        # nets below the threshold are cheaper to rescan outright (a handful
        # of list reads) than to keep boundary counts for: a mover on a tiny
        # net is nearly always alone on a boundary, forcing the rescan
        # fallback anyway.  Large nets (TCON trees spanning many leaf
        # drivers) keep the incremental state.
        SMALL_NET = 10
        big = self.big = [len(m) > SMALL_NET for m in members]
        state = self.state = [
            _bbox_scan(m, bx, by) if b else None for m, b in zip(members, big)
        ]
        net_cost = self.net_cost = [0.0] * n_nets
        for ni, m in enumerate(members):
            s = state[ni] or _bbox_scan(m, bx, by)
            net_cost[ni] = float(s[2] - s[0] + s[6] - s[4])
        self.total = sum(net_cost)

        self.movable = [b.index for b in blocks if nets_of_block[b.index]]
        self.n_movable = len(self.movable)

        # scratch for one trial move: affected nets, their candidate states
        net_stamp = [0] * n_nets
        move_id = 0
        ups: list[tuple] = []
        self.ups = ups

        def try_move(
            moved,
            # bind the hot lookups once; the loop below runs ~300k times/anneal
            nets_of_block=nets_of_block,
            members=members,
            state=state,
            net_cost=net_cost,
            net_stamp=net_stamp,
            big=big,
            bx=bx,
            by=by,
            ups=ups,
        ) -> float:
            """Delta HPWL of a tentative move (coords already updated in
            ``bx``/``by``); fills ``ups`` with per-net replacement states."""
            nonlocal move_id
            move_id += 1
            mid = move_id
            ups.clear()
            d = 0.0
            for entry in moved:
                b0 = entry[0]
                for ni in nets_of_block[b0]:
                    if net_stamp[ni] == mid:
                        continue
                    net_stamp[ni] = mid
                    m = members[ni]
                    if not big[ni]:
                        # small net: direct bounding-box rescan, no counts
                        xmn = ymn = 1 << 30
                        xmx = ymx = -1
                        for mb in m:
                            v = bx[mb]
                            if v < xmn:
                                xmn = v
                            if v > xmx:
                                xmx = v
                            v = by[mb]
                            if v < ymn:
                                ymn = v
                            if v > ymx:
                                ymx = v
                        new_cost = float(xmx - xmn + ymx - ymn)
                        ups.append((ni, None, new_cost))
                        d += new_cost - net_cost[ni]
                        continue
                    xmn, nxmn, xmx, nxmx, ymn, nymn, ymx, nymx = state[ni]
                    ok = True
                    for b, ox, oy, nx, ny in moved:
                        if b != b0 and ni not in nets_of_block[b]:
                            continue
                        r = _axis_move(xmn, nxmn, xmx, nxmx, ox, nx)
                        if r is None:
                            ok = False
                            break
                        xmn, nxmn, xmx, nxmx = r
                        r = _axis_move(ymn, nymn, ymx, nymx, oy, ny)
                        if r is None:
                            ok = False
                            break
                        ymn, nymn, ymx, nymx = r
                    if ok:
                        new_state = [xmn, nxmn, xmx, nxmx, ymn, nymn, ymx, nymx]
                    else:
                        new_state = _bbox_scan(m, bx, by)
                        xmn, _n1, xmx, _n2, ymn, _n3, ymx, _n4 = new_state
                    new_cost = float(xmx - xmn + ymx - ymn)
                    d += new_cost - net_cost[ni]
                    ups.append((ni, new_state, new_cost))
            return d

        self.try_move = try_move

    def export(self) -> Placement:
        site_of = self.site_of
        self.placement.loc_of = {
            b.index: self.sites[site_of[b.index]] for b in self.blocks
        }
        return self.placement

    def estimate_temp(self) -> float:
        """Initial temperature: std of random move deltas (trials reverted).

        Draws from the shared stream in the exact order the serial anneal
        always has, so the serial and region-parallel paths start from
        the same temperature for a given seed.
        """
        movable = self.movable
        site_of, block_at = self.site_of, self.block_at
        bx, by = self.bx, self.by
        site_x, site_y = self.site_x, self.site_y
        is_clb, n_clb_sites = self.is_clb, self.n_clb_sites
        rng = self.rng
        deltas = []
        n_est = min(100, 10 * self.n_movable)
        est_blocks = rng.integers(0, self.n_movable, size=n_est).tolist()
        est_clb = rng.integers(0, n_clb_sites, size=n_est).tolist()
        est_io = rng.integers(0, self.n_io_sites, size=n_est).tolist()
        for i in range(n_est):
            bi = movable[est_blocks[i]]
            s = est_clb[i] if is_clb[bi] else n_clb_sites + est_io[i]
            old_s = site_of[bi]
            if s == old_s:
                continue
            other = block_at[s]
            ox, oy = bx[bi], by[bi]
            nx, ny = site_x[s], site_y[s]
            bx[bi], by[bi] = nx, ny
            if other >= 0:
                bx[other], by[other] = ox, oy
                moved = ((bi, ox, oy, nx, ny), (other, nx, ny, ox, oy))
            else:
                moved = ((bi, ox, oy, nx, ny),)
            deltas.append(self.try_move(moved))
            bx[bi], by[bi] = ox, oy
            if other >= 0:
                bx[other], by[other] = nx, ny
        if deltas:
            mean = sum(deltas) / len(deltas)
            std = (sum((v - mean) ** 2 for v in deltas) / len(deltas)) ** 0.5
        else:
            std = 1.0
        return 20.0 * std or 1.0

    def min_temp(self) -> float:
        return 0.005 * max(1.0, self.total) / max(1, self.n_nets)


def place_design(
    packed: PackedDesign,
    grid: DeviceGrid | None = None,
    *,
    seed: int = 2016,
    effort: float = 4.0,
    utilization: float = 0.7,
) -> Placement:
    """Anneal a placement for ``packed``; returns the final placement."""
    st = _PlacerState(packed, grid, seed, utilization)
    placement = st.placement
    total = st.total

    movable = st.movable
    if not movable:
        placement.cost = total
        return st.export()
    n_movable = st.n_movable
    n_clb_sites = st.n_clb_sites
    n_io_sites = st.n_io_sites
    site_of, block_at = st.site_of, st.block_at
    bx, by = st.bx, st.by
    site_x, site_y = st.site_x, st.site_y
    is_clb = st.is_clb
    state, net_cost = st.state, st.net_cost
    try_move, ups, rng = st.try_move, st.ups, st.rng

    n_moves = max(64, int(effort * st.n_blocks ** (4.0 / 3.0)))
    temp = st.estimate_temp()

    tried = 0
    accepted_total = 0
    min_temp = st.min_temp()
    while temp > min_temp:
        accepted = 0
        pick_b = rng.integers(0, n_movable, size=n_moves).tolist()
        pick_clb = rng.integers(0, n_clb_sites, size=n_moves).tolist()
        pick_io = rng.integers(0, n_io_sites, size=n_moves).tolist()
        accept_u = rng.random(n_moves).tolist()
        inv_temp = -1.0 / temp
        for i in range(n_moves):
            bi = movable[pick_b[i]]
            s = pick_clb[i] if is_clb[bi] else n_clb_sites + pick_io[i]
            old_s = site_of[bi]
            if s == old_s:
                continue
            other = block_at[s]
            ox, oy = bx[bi], by[bi]
            nx, ny = site_x[s], site_y[s]
            # tentatively apply coordinates, then score
            bx[bi], by[bi] = nx, ny
            if other >= 0:
                bx[other], by[other] = ox, oy
                moved = ((bi, ox, oy, nx, ny), (other, nx, ny, ox, oy))
            else:
                moved = ((bi, ox, oy, nx, ny),)
            d = try_move(moved)
            tried += 1
            if d <= 0.0 or accept_u[i] < exp(d * inv_temp):
                block_at[s] = bi
                block_at[old_s] = other if other >= 0 else -1
                site_of[bi] = s
                if other >= 0:
                    site_of[other] = old_s
                for ni, new_state, new_cost in ups:
                    if new_state is not None:
                        state[ni] = new_state
                    net_cost[ni] = new_cost
                total += d
                accepted += 1
                accepted_total += 1
            else:
                bx[bi], by[bi] = ox, oy
                if other >= 0:
                    bx[other], by[other] = nx, ny
        rate = accepted / max(1, n_moves)
        # VPR-style adaptive cooling: cool slowly in the productive window
        if rate > 0.96:
            temp *= 0.5
        elif rate > 0.8:
            temp *= 0.9
        elif rate > 0.15:
            temp *= 0.95
        else:
            temp *= 0.8

    placement.moves_tried = tried
    placement.moves_accepted = accepted_total
    placement.cost = float(sum(net_cost))
    return st.export()
