"""Simulated-annealing placement (the TPlace step of TPaR).

Classic VPR-style annealing: blocks are CLB clusters and I/O pads, the
cost is the half-perimeter wirelength (HPWL) summed over nets, moves swap
two blocks (or move one to a free site) of the same type, and the schedule
starts hot enough to accept most moves, cooling geometrically until
improvements dry up.

Tunable (TCON) trees contribute placement nets spanning their leaf drivers
and root readers, pulling the shared routing region together — placement's
view of the paper's resource sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.device import DeviceGrid, TileType
from repro.errors import PlacementError
from repro.pack.tpack import PackedDesign
from repro.util.rng import RngHub

__all__ = ["Placement", "place_design"]


@dataclass
class _Block:
    index: int
    kind: str       # "clb" | "ipad" | "opad"
    payload: int    # cluster index or signal id


@dataclass
class Placement:
    """Result: block locations plus net bookkeeping."""

    packed: PackedDesign
    grid: DeviceGrid
    blocks: list[_Block] = field(default_factory=list)
    loc_of: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    """block index -> (x, y, subtile)."""
    nets: list[list[int]] = field(default_factory=list)
    """per net: [driver block, reader blocks...] (for cost)."""
    net_signal: list[int] = field(default_factory=list)
    cost: float = 0.0
    moves_tried: int = 0
    moves_accepted: int = 0

    def cluster_site(self, cluster_index: int) -> tuple[int, int]:
        for b in self.blocks:
            if b.kind == "clb" and b.payload == cluster_index:
                x, y, _ = self.loc_of[b.index]
                return (x, y)
        raise PlacementError(f"cluster {cluster_index} not placed")

    def pad_site(self, signal: int, kind: str) -> tuple[int, int, int]:
        for b in self.blocks:
            if b.kind == kind and b.payload == signal:
                return self.loc_of[b.index]
        raise PlacementError(f"{kind} for signal {signal} not placed")

    def hpwl(self) -> float:
        return self.cost


def _build_nets(packed: PackedDesign, blocks: list[_Block]) -> tuple[list[list[int]], list[int]]:
    """Placement nets: driver block followed by reader blocks, per signal."""
    physical = packed.physical
    block_of_cluster = {
        b.payload: b.index for b in blocks if b.kind == "clb"
    }
    block_of_ipad = {b.payload: b.index for b in blocks if b.kind == "ipad"}
    block_of_opad = {b.payload: b.index for b in blocks if b.kind == "opad"}

    def producer_block(sig: int) -> int | None:
        c = packed.cluster_of_signal.get(sig)
        if c is not None:
            return block_of_cluster[c]
        return block_of_ipad.get(sig)

    readers: dict[int, set[int]] = {}
    for c in packed.clusters:
        blk = block_of_cluster[c.index]
        for s in c.external_inputs():
            readers.setdefault(s, set()).add(blk)
    for s, blk in block_of_opad.items():
        readers.setdefault(s, set()).add(blk)

    nets: list[list[int]] = []
    net_signal: list[int] = []
    groups = physical.tunable_groups
    for sig in sorted(readers):
        if sig in groups:
            # tunable tree: net spans every leaf producer and all readers
            members: set[int] = set(readers[sig])
            for leaf, _cond in groups[sig].options:
                p = producer_block(leaf)
                if p is None and leaf in groups:
                    continue  # nested tree contributes through its own net
                if p is None:
                    raise PlacementError(
                        f"tunable leaf {physical.signal_name(leaf)!r} has no producer"
                    )
                members.add(p)
            nets.append(sorted(members))
            net_signal.append(sig)
            continue
        p = producer_block(sig)
        if p is None:
            raise PlacementError(
                f"signal {physical.signal_name(sig)!r} has no producer"
            )
        members = set(readers[sig]) | {p}
        if len(members) > 1:
            nets.append(sorted(members))
            net_signal.append(sig)
    return nets, net_signal


def _net_hpwl(net: list[int], loc_of: dict[int, tuple[int, int, int]]) -> float:
    xs = [loc_of[b][0] for b in net]
    ys = [loc_of[b][1] for b in net]
    return float(max(xs) - min(xs) + max(ys) - min(ys))


def place_design(
    packed: PackedDesign,
    grid: DeviceGrid | None = None,
    *,
    seed: int = 2016,
    effort: float = 4.0,
    utilization: float = 0.7,
) -> Placement:
    """Anneal a placement for ``packed``; returns the final placement."""
    physical = packed.physical

    blocks: list[_Block] = []
    for c in packed.clusters:
        blocks.append(_Block(index=len(blocks), kind="clb", payload=c.index))
    for s in physical.pi_signals:
        blocks.append(_Block(index=len(blocks), kind="ipad", payload=s))
    for s in physical.po_signals:
        blocks.append(_Block(index=len(blocks), kind="opad", payload=s))

    n_pads = sum(1 for b in blocks if b.kind != "clb")
    if grid is None:
        grid = DeviceGrid.for_design(
            packed.arch,
            n_clbs=max(1, packed.n_clusters),
            n_pads=n_pads,
            utilization=utilization,
        )
    if grid.n_clbs < packed.n_clusters or grid.n_pads < n_pads:
        raise PlacementError(
            f"device {grid!r} too small: need {packed.n_clusters} CLBs, "
            f"{n_pads} pads"
        )

    rng = RngHub(seed).stream(f"place/{physical.network.name}")

    clb_sites = [(x, y, 0) for (x, y) in grid.clb_positions()]
    io_sites = [
        (x, y, k)
        for (x, y) in grid.io_positions()
        for k in range(grid.spec.io_capacity)
    ]

    placement = Placement(packed=packed, grid=grid, blocks=blocks)
    site_block: dict[tuple[int, int, int], int] = {}

    clb_blocks = [b for b in blocks if b.kind == "clb"]
    pad_blocks = [b for b in blocks if b.kind != "clb"]
    for b, site in zip(clb_blocks, rng.permutation(len(clb_sites))[: len(clb_blocks)]):
        placement.loc_of[b.index] = clb_sites[int(site)]
        site_block[clb_sites[int(site)]] = b.index
    for b, site in zip(pad_blocks, rng.permutation(len(io_sites))[: len(pad_blocks)]):
        placement.loc_of[b.index] = io_sites[int(site)]
        site_block[io_sites[int(site)]] = b.index

    nets, net_signal = _build_nets(packed, blocks)
    placement.nets = nets
    placement.net_signal = net_signal

    nets_of_block: dict[int, list[int]] = {}
    for ni, net in enumerate(nets):
        for b in net:
            nets_of_block.setdefault(b, []).append(ni)

    net_cost = np.array(
        [_net_hpwl(net, placement.loc_of) for net in nets], dtype=np.float64
    )
    total = float(net_cost.sum())

    def delta_for_move(moved: list[int]) -> tuple[float, dict[int, float]]:
        affected: set[int] = set()
        for b in moved:
            affected.update(nets_of_block.get(b, ()))
        updates: dict[int, float] = {}
        d = 0.0
        for ni in affected:
            new = _net_hpwl(nets[ni], placement.loc_of)
            d += new - net_cost[ni]
            updates[ni] = new
        return d, updates

    sites_by_kind = {"clb": clb_sites, "io": io_sites}
    movable = [b for b in blocks if nets_of_block.get(b.index)]
    if not movable:
        placement.cost = total
        return placement

    n_moves = max(64, int(effort * len(blocks) ** (4.0 / 3.0)))

    # initial temperature: std of random move deltas
    deltas = []
    for _ in range(min(100, 10 * len(movable))):
        b = movable[int(rng.integers(0, len(movable)))]
        pool = sites_by_kind["clb" if b.kind == "clb" else "io"]
        target = pool[int(rng.integers(0, len(pool)))]
        old = placement.loc_of[b.index]
        if target == old:
            continue
        other = site_block.get(target)
        placement.loc_of[b.index] = target
        if other is not None:
            placement.loc_of[other] = old
        d, _ = delta_for_move([b.index] + ([other] if other is not None else []))
        placement.loc_of[b.index] = old
        if other is not None:
            placement.loc_of[other] = target
        deltas.append(d)
    temp = 20.0 * (float(np.std(deltas)) if deltas else 1.0) or 1.0

    min_temp = 0.005 * max(1.0, total) / max(1, len(nets))
    while temp > min_temp:
        accepted = 0
        for _ in range(n_moves):
            b = movable[int(rng.integers(0, len(movable)))]
            pool = sites_by_kind["clb" if b.kind == "clb" else "io"]
            target = pool[int(rng.integers(0, len(pool)))]
            old = placement.loc_of[b.index]
            if target == old:
                continue
            other = site_block.get(target)
            if other == b.index:
                continue
            # tentatively apply
            placement.loc_of[b.index] = target
            if other is not None:
                placement.loc_of[other] = old
            moved = [b.index] + ([other] if other is not None else [])
            d, updates = delta_for_move(moved)
            placement.moves_tried += 1
            if d <= 0 or rng.random() < np.exp(-d / temp):
                site_block[target] = b.index
                if other is not None:
                    site_block[old] = other
                else:
                    site_block.pop(old, None)
                for ni, v in updates.items():
                    net_cost[ni] = v
                total += d
                accepted += 1
                placement.moves_accepted += 1
            else:
                placement.loc_of[b.index] = old
                if other is not None:
                    placement.loc_of[other] = target
        rate = accepted / max(1, n_moves)
        # VPR-style adaptive cooling: cool slowly in the productive window
        if rate > 0.96:
            temp *= 0.5
        elif rate > 0.8:
            temp *= 0.9
        elif rate > 0.15:
            temp *= 0.95
        else:
            temp *= 0.8

    placement.cost = float(net_cost.sum())
    return placement
