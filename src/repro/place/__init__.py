"""TPlace: simulated-annealing placement of packed designs."""

from repro.place.tplace import Placement, place_design


def place_design_regions(*args, **kwargs):
    """Region-parallel annealer — lazy proxy for
    :func:`repro.place.parallel.place_design_regions` (keeps numpy and the
    worker-pool machinery off the serial import path)."""
    from repro.place.parallel import place_design_regions as fn

    return fn(*args, **kwargs)


__all__ = ["Placement", "place_design", "place_design_regions"]
