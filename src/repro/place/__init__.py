"""TPlace: simulated-annealing placement of packed designs."""

from repro.place.tplace import Placement, place_design

__all__ = ["Placement", "place_design"]
