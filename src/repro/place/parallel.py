"""Deterministic region-parallel simulated-annealing placement.

The serial annealer (:mod:`repro.place.tplace`) proposes one move at a
time against the live state.  This variant splits each temperature step
into *rounds*: the grid is partitioned into a checkerboard of disjoint
regions, every region proposes and locally accepts a batch of moves
against the **round-start snapshot** (concurrently, via
:class:`repro.util.intra.IntraPool`), and the parent then replays the
surviving moves in fixed region order.  The replay is what makes the
result a pure function of the seed:

* Moves are *within-region* — a block only ever targets sites of its own
  region, so two regions can never race for a site and a region's blocks
  are exactly where its worker left them unless the replay rejected one
  of its earlier moves (``diverged``).
* Per round the parent tracks, per net, the sole region that has dirtied
  it.  A survivor whose nets were touched only by its own region (or by
  nobody) is **fast-committed**: the worker's exact swap and net updates
  are applied verbatim — the worker evaluated them against state
  identical to the canonical one, so its delta is exact.
* A survivor touching a net another region dirtied (or following a
  replay rejection) is **re-evaluated** against canonical state with the
  worker's recorded uniform draw — an ordinary Metropolis trial.  A
  slow-path rejection marks the region diverged for the rest of the
  round; a slow-path accept marks its nets dirty for *everyone*
  (``-1``), forcing later cross-region readers through the same re-check.

Worker count never enters any of this: per-region batches are seeded by
``derive_seed(seed, "place-region/<design>/<temp>/<round>/<region>")``
and regions are replayed in sorted order, so chunking regions across 1,
2 or 8 workers yields byte-identical placements.

The checkerboard shifts by a deterministic offset every round (wrapping
at the grid edge), so region boundaries sweep across the device and
blocks migrate freely over a temperature step.  A short serial greedy
polish (hill-descent from the same RNG stream) finishes the placement.
"""

from __future__ import annotations

from math import exp
from uuid import uuid4

try:  # pragma: no cover - exercised via tests/no_numpy_shim
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.arch.device import DeviceGrid
from repro.pack.tpack import PackedDesign
from repro.place.tplace import Placement, _PlacerState
from repro.util.intra import IntraPool
from repro.util.rng import derive_seed

__all__ = ["place_design_regions", "eval_regions"]

#: Fraction of the serial schedule's estimated start temperature the
#: region-parallel anneal starts at (see place_design_regions).
_START_TEMP_SCALE = 0.05

#: Per-temperature move budget relative to the serial schedule.  The
#: colder start plus the final greedy polish leave margin: the parallel
#: path meets the serial quality gate with fewer proposals, and fewer
#: proposals shrink both the worker rounds and the commit replay.
_EFFORT_SCALE = 0.7


class _RegionGrid:
    """Checkerboard partition of device coordinates into rx × ry regions.

    ``region_of`` maps a coordinate (shifted by the per-round offsets
    ``ox``/``oy``, wrapping at the grid extent) to a region id.  Shifted
    regions are disjoint for any offsets — that is the only property the
    commit protocol needs; wrapped regions being non-contiguous is fine.
    """

    def __init__(self, site_x: list[int], site_y: list[int], regions: int) -> None:
        self.xmin, self.ymin = min(site_x), min(site_y)
        w = max(site_x) - self.xmin + 1
        h = max(site_y) - self.ymin + 1
        rx = max(1, int(regions ** 0.5))
        while regions % rx:
            rx -= 1
        ry = regions // rx
        if (w >= h) != (rx >= ry):
            rx, ry = ry, rx  # more columns along the wider axis
        self.rx, self.ry = rx, ry
        self.n_regions = rx * ry
        self.rw = max(1, -(-w // rx))
        self.rh = max(1, -(-h // ry))
        self._parts: dict[tuple[int, int], tuple[list, list]] = {}
        self._site_x, self._site_y = site_x, site_y

    def region_of(self, x: int, y: int, ox: int, oy: int) -> int:
        col = (x - self.xmin + ox) // self.rw % self.rx
        row = (y - self.ymin + oy) // self.rh % self.ry
        return row * self.rx + col

    def offsets(self, t_index: int, rd: int) -> tuple[int, int]:
        h1 = t_index * 1009 + rd
        return h1 % self.rw, (h1 // 7) % self.rh

    def site_partition(self, n_clb_sites: int, ox: int, oy: int):
        """Per-region site-id lists ``(clb_by_region, io_by_region)``."""
        key = (ox, oy)
        cached = self._parts.get(key)
        if cached is not None:
            return cached
        clb_by_r: list[list[int]] = [[] for _ in range(self.n_regions)]
        io_by_r: list[list[int]] = [[] for _ in range(self.n_regions)]
        for s, (x, y) in enumerate(zip(self._site_x, self._site_y)):
            r = self.region_of(x, y, ox, oy)
            (clb_by_r if s < n_clb_sites else io_by_r)[r].append(s)
        self._parts[key] = (clb_by_r, io_by_r)
        return clb_by_r, io_by_r


def _eval_one_region(static: tuple, snap: tuple, part: tuple) -> tuple:
    """Propose/evaluate one region's move batch against the snapshot.

    Pure function of its arguments (the snapshot lists are copied before
    mutation), so the result is independent of which worker — or the
    parent process — runs it.  Returns ``(region, evaluated, survivors)``
    with survivor tuples ``(bi, other, old_site, new_site, u, d, mups)``.
    """
    members, nets_of_block, big, site_x, site_y, is_clb, n_nets = static
    r, rseed, movable, clb_sites, io_sites, moves, inv_temp = part
    if np is None:  # pragma: no cover - guarded by tests/no_numpy_shim
        raise RuntimeError("region-parallel placement requires numpy")
    rng = np.random.default_rng(rseed)
    pick_b = rng.integers(0, len(movable), size=moves).tolist()
    pick_c = rng.integers(0, len(clb_sites), size=moves).tolist() if clb_sites else None
    pick_i = rng.integers(0, len(io_sites), size=moves).tolist() if io_sites else None
    accept_u = rng.random(moves).tolist()

    site_of = list(snap[0])
    net_cost = list(snap[1])
    state = dict(snap[2])  # ni -> bbox state; entries replaced, never mutated
    # coordinate/occupancy tables are derived, not shipped: site_of plus
    # the static site tables determine them exactly
    bx = [site_x[s] for s in site_of]
    by = [site_y[s] for s in site_of]
    block_at = [-1] * len(site_x)
    for b, s in enumerate(site_of):
        block_at[s] = b

    from repro.place.tplace import _axis_move, _bbox_scan

    net_stamp = [0] * n_nets
    move_id = 0
    ups: list[tuple] = []

    def try_move(moved) -> float:
        # mirror of _PlacerState.try_move over the region's local copies
        nonlocal move_id
        move_id += 1
        mid = move_id
        ups.clear()
        d = 0.0
        for entry in moved:
            b0 = entry[0]
            for ni in nets_of_block[b0]:
                if net_stamp[ni] == mid:
                    continue
                net_stamp[ni] = mid
                m = members[ni]
                if not big[ni]:
                    xmn = ymn = 1 << 30
                    xmx = ymx = -1
                    for mb in m:
                        v = bx[mb]
                        if v < xmn:
                            xmn = v
                        if v > xmx:
                            xmx = v
                        v = by[mb]
                        if v < ymn:
                            ymn = v
                        if v > ymx:
                            ymx = v
                    new_cost = float(xmx - xmn + ymx - ymn)
                    ups.append((ni, None, new_cost))
                    d += new_cost - net_cost[ni]
                    continue
                xmn, nxmn, xmx, nxmx, ymn, nymn, ymx, nymx = state[ni]
                ok = True
                for b, ox_, oy_, nx_, ny_ in moved:
                    if b != b0 and ni not in nets_of_block[b]:
                        continue
                    res = _axis_move(xmn, nxmn, xmx, nxmx, ox_, nx_)
                    if res is None:
                        ok = False
                        break
                    xmn, nxmn, xmx, nxmx = res
                    res = _axis_move(ymn, nymn, ymx, nymx, oy_, ny_)
                    if res is None:
                        ok = False
                        break
                    ymn, nymn, ymx, nymx = res
                if ok:
                    new_state = [xmn, nxmn, xmx, nxmx, ymn, nymn, ymx, nymx]
                else:
                    new_state = _bbox_scan(m, bx, by)
                    xmn, _n1, xmx, _n2, ymn, _n3, ymx, _n4 = new_state
                new_cost = float(xmx - xmn + ymx - ymn)
                d += new_cost - net_cost[ni]
                ups.append((ni, new_state, new_cost))
        return d

    survivors: list[tuple] = []
    evaluated = 0
    for i in range(moves):
        bi = movable[pick_b[i]]
        if is_clb[bi]:
            s = clb_sites[pick_c[i]]
        else:
            s = io_sites[pick_i[i]]
        old_s = site_of[bi]
        if s == old_s:
            continue
        other = block_at[s]
        ox, oy = bx[bi], by[bi]
        nx, ny = site_x[s], site_y[s]
        bx[bi], by[bi] = nx, ny
        if other >= 0:
            bx[other], by[other] = ox, oy
            moved = ((bi, ox, oy, nx, ny), (other, nx, ny, ox, oy))
        else:
            moved = ((bi, ox, oy, nx, ny),)
        d = try_move(moved)
        evaluated += 1
        u = accept_u[i]
        if d <= 0.0 or u < exp(d * inv_temp):
            block_at[s] = bi
            block_at[old_s] = other if other >= 0 else -1
            site_of[bi] = s
            if other >= 0:
                site_of[other] = old_s
            for ni, new_state, new_cost in ups:
                if new_state is not None:
                    state[ni] = new_state
                net_cost[ni] = new_cost
            survivors.append((bi, other, old_s, s, u, d, list(ups)))
        else:
            bx[bi], by[bi] = ox, oy
            if other >= 0:
                bx[other], by[other] = nx, ny
    return (r, evaluated, survivors)


def eval_regions(static: tuple, payload: tuple) -> list[tuple]:
    """IntraPool kernel: evaluate a chunk of region batches for one round."""
    snap, parts = payload
    return [_eval_one_region(static, snap, part) for part in parts]


def _commit_round(st: _PlacerState, region_results: list[tuple], inv_temp: float) -> int:
    """Replay one round's survivors onto canonical state, in region order.

    Implements the dirty-net protocol documented in the module docstring.
    Returns the number of committed moves.  Pure function of
    ``(canonical state, region_results)`` — the worker count that
    produced ``region_results`` is invisible here.
    """
    dirty: dict[int, int] = {}   # net -> sole dirtying region, or -1
    diverged: dict[int, bool] = {}
    accepted = 0
    site_x, site_y = st.site_x, st.site_y
    bx, by = st.bx, st.by
    site_of, block_at = st.site_of, st.block_at
    state, net_cost = st.state, st.net_cost
    for r, _evaluated, survivors in sorted(region_results):
        for bi, other, old_s, new_s, u, d, mups in survivors:
            if (
                not diverged.get(r)
                and site_of[bi] == old_s
                and block_at[new_s] == other
                and all(dirty.get(ni, r) == r for ni, _s, _c in mups)
            ):
                # fast path: the worker saw exactly this state — replay
                # its swap and net updates verbatim
                block_at[new_s] = bi
                block_at[old_s] = other if other >= 0 else -1
                site_of[bi] = new_s
                bx[bi], by[bi] = site_x[new_s], site_y[new_s]
                if other >= 0:
                    site_of[other] = old_s
                    bx[other], by[other] = site_x[old_s], site_y[old_s]
                for ni, new_state, new_cost in mups:
                    if new_state is not None:
                        state[ni] = new_state
                    net_cost[ni] = new_cost
                    dirty[ni] = r
                st.total += d
                accepted += 1
                continue
            # slow path: a cross-region net (or an earlier replay
            # rejection) invalidated the worker's delta — rerun the
            # Metropolis trial against canonical state with the same u
            old_c = site_of[bi]
            if new_s == old_c:
                diverged[r] = True
                continue
            oth = block_at[new_s]
            ox, oy = bx[bi], by[bi]
            nx, ny = site_x[new_s], site_y[new_s]
            bx[bi], by[bi] = nx, ny
            if oth >= 0:
                bx[oth], by[oth] = ox, oy
                moved = ((bi, ox, oy, nx, ny), (oth, nx, ny, ox, oy))
            else:
                moved = ((bi, ox, oy, nx, ny),)
            dc = st.try_move(moved)
            if dc <= 0.0 or u < exp(dc * inv_temp):
                block_at[new_s] = bi
                block_at[old_c] = oth if oth >= 0 else -1
                site_of[bi] = new_s
                if oth >= 0:
                    site_of[oth] = old_c
                for ni, new_state, new_cost in st.ups:
                    if new_state is not None:
                        state[ni] = new_state
                    net_cost[ni] = new_cost
                    dirty[ni] = -1
                st.total += dc
                accepted += 1
            else:
                bx[bi], by[bi] = ox, oy
                if oth >= 0:
                    bx[oth], by[oth] = nx, ny
                diverged[r] = True
    return accepted


def _greedy_polish(st: _PlacerState, n_moves: int, sweeps: int) -> tuple[int, int]:
    """Serial hill-descent sweeps continuing the placer's RNG stream."""
    movable = st.movable
    n_movable = st.n_movable
    n_clb_sites, n_io_sites = st.n_clb_sites, st.n_io_sites
    site_of, block_at = st.site_of, st.block_at
    bx, by = st.bx, st.by
    site_x, site_y = st.site_x, st.site_y
    is_clb = st.is_clb
    state, net_cost = st.state, st.net_cost
    try_move, ups, rng = st.try_move, st.ups, st.rng
    tried = accepted = 0
    for _ in range(sweeps):
        pick_b = rng.integers(0, n_movable, size=n_moves).tolist()
        pick_clb = rng.integers(0, n_clb_sites, size=n_moves).tolist()
        pick_io = rng.integers(0, n_io_sites, size=n_moves).tolist()
        for i in range(n_moves):
            bi = movable[pick_b[i]]
            s = pick_clb[i] if is_clb[bi] else n_clb_sites + pick_io[i]
            old_s = site_of[bi]
            if s == old_s:
                continue
            other = block_at[s]
            ox, oy = bx[bi], by[bi]
            nx, ny = site_x[s], site_y[s]
            bx[bi], by[bi] = nx, ny
            if other >= 0:
                bx[other], by[other] = ox, oy
                moved = ((bi, ox, oy, nx, ny), (other, nx, ny, ox, oy))
            else:
                moved = ((bi, ox, oy, nx, ny),)
            d = try_move(moved)
            tried += 1
            if d < 0.0:
                block_at[s] = bi
                block_at[old_s] = other if other >= 0 else -1
                site_of[bi] = s
                if other >= 0:
                    site_of[other] = old_s
                for ni, new_state, new_cost in ups:
                    if new_state is not None:
                        state[ni] = new_state
                    net_cost[ni] = new_cost
                st.total += d
                accepted += 1
            else:
                bx[bi], by[bi] = ox, oy
                if other >= 0:
                    bx[other], by[other] = nx, ny
    return tried, accepted


def place_design_regions(
    packed: PackedDesign,
    grid: DeviceGrid | None = None,
    *,
    seed: int = 2016,
    effort: float = 4.0,
    utilization: float = 0.7,
    regions: int = 8,
    intra: IntraPool | None = None,
) -> Placement:
    """Region-parallel anneal; byte-identical at any worker count.

    ``regions`` is part of the algorithm (it changes which placement is
    produced); ``intra`` is pure execution (it never does).
    """
    if regions <= 1:
        raise ValueError("place_design_regions needs regions >= 2")
    st = _PlacerState(packed, grid, seed, utilization)
    placement = st.placement
    if not st.movable:
        placement.cost = st.total
        return st.export()

    pool = intra if intra is not None else IntraPool(1)
    name = packed.physical.network.name
    rg = _RegionGrid(st.site_x, st.site_y, regions)
    n_regions = rg.n_regions

    n_moves = max(64, int(effort * st.n_blocks ** (4.0 / 3.0)))
    anneal_moves = max(64, int(n_moves * _EFFORT_SCALE))
    # start colder than the serial schedule: the near-100%-accept phase
    # adds no quality over the random initial placement but floods the
    # replay with cross-region conflicts (every survivor dirties nets),
    # serializing the commit.  The greedy polish recovers the tail.
    temp = st.estimate_temp() * _START_TEMP_SCALE
    min_temp = st.min_temp()

    token = f"place/{uuid4().hex}"
    static = (
        st.members,
        st.nets_of_block,
        st.big,
        st.site_x,
        st.site_y,
        st.is_clb,
        st.n_nets,
    )

    tried = 0
    accepted_total = 0
    rate = 0.5  # seeds the first temperature's round count
    t_index = 0
    while temp > min_temp:
        # more rounds while moves still land: each round is one
        # snapshot/commit cycle, so the accept rate bounds how stale a
        # round's speculation can get
        rounds = max(1, min(10, int(rate * 12.0 + 0.5)))
        moves_per_round = max(1, anneal_moves // (rounds * n_regions))
        inv_temp = -1.0 / temp
        accepted = 0
        proposed = 0
        for rd in range(rounds):
            ox, oy = rg.offsets(t_index, rd)
            clb_by_r, io_by_r = rg.site_partition(st.n_clb_sites, ox, oy)
            movable_by_r: list[list[int]] = [[] for _ in range(n_regions)]
            for bi in st.movable:
                movable_by_r[rg.region_of(st.bx[bi], st.by[bi], ox, oy)].append(bi)
            parts = []
            for r in range(n_regions):
                if not movable_by_r[r]:
                    continue
                rseed = derive_seed(seed, f"place-region/{name}/{t_index}/{rd}/{r}")
                parts.append(
                    (r, rseed, movable_by_r[r], clb_by_r[r], io_by_r[r],
                     moves_per_round, inv_temp)
                )
            if not parts:
                continue
            snap_state = {ni: s for ni, s in enumerate(st.state) if s is not None}
            snap = (st.site_of, st.net_cost, snap_state)
            payloads = [(snap, parts[a:b]) for a, b in pool.chunks(len(parts))]
            out = pool.map_round(
                "repro.place.parallel", "eval_regions", token, static, payloads
            )
            region_results = [res for chunk in out for res in chunk]
            for _r, evaluated, _s in region_results:
                tried += evaluated
            proposed += moves_per_round * len(parts)
            accepted += _commit_round(st, region_results, inv_temp)
        accepted_total += accepted
        rate = accepted / max(1, proposed)
        if rate > 0.96:
            temp *= 0.5
        elif rate > 0.8:
            temp *= 0.9
        elif rate > 0.15:
            temp *= 0.95
        else:
            temp *= 0.8
        t_index += 1

    p_tried, p_accepted = _greedy_polish(st, n_moves, sweeps=2)
    placement.moves_tried = tried + p_tried
    placement.moves_accepted = accepted_total + p_accepted
    placement.cost = float(sum(st.net_cost))
    return st.export()
