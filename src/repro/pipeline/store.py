"""Stage-granular artifact storage (memory + disk) with per-stage stats.

:class:`ArtifactStore` generalizes PR 1's whole-artifact ``OfflineCache``:
entries are keyed by ``(stage name, content key)``, so a single knob
change re-fetches every unaffected stage and rebuilds only the invalidated
suffix of the graph.  The campaign layer's ``OfflineCache`` is now a thin
wrapper over this class with one pseudo-stage (``"offline"``).

Entries never expire — a key embeds the source content, the read config
fields, the stage version and the flow version, so a stale entry is
unreachable rather than wrong.  Disk persistence is best-effort and
atomic (temp file + rename, with an optional ``fsync`` barrier before
the rename for crash-durability): concurrent users of one directory see
either nothing or a complete artifact, never a torn file.

Persisted entries additionally carry a **length + CRC32 trailer**
(:data:`_TRAILER`), so a file torn *outside* the rename discipline — a
crashed writer on a filesystem that reorders metadata, a truncated copy,
bit rot — is detected on read: the entry is **quarantined** (moved to
``<cache_dir>/quarantine/``, preserving the bytes for forensics) and the
lookup degrades to a miss-and-rebuild, counted in the per-stage
``corrupt`` statistic.  Pre-trailer files written by older versions
still load (pickle ignores trailing bytes, absent trailers fall back to
a plain parse); anything unparseable is quarantined the same way.  A
lookup never raises on bad disk state.

Besides the nine compile-graph stages, the online phase stores compiled
simulation programs (:func:`repro.netlist.compiled.program_for`) under
the ``"compiled-sim"`` pseudo-stage keyed by network structural
signature, so a warm campaign restart skips kernel compilation the same
way it skips every offline stage.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.pipeline.graph import Artifact
from repro.util import chaos

__all__ = ["StageStats", "StoreStats", "StoreRef", "ArtifactStore"]

#: Trailer appended to every persisted entry: magic, payload length,
#: CRC32 of the payload.  ``pickle.loads`` stops at the STOP opcode, so
#: readers unaware of the trailer still parse the payload — the format is
#: both forward- and backward-compatible.
_TRAILER = struct.Struct("<4sQI")
_TRAILER_MAGIC = b"RSC1"


@dataclass(frozen=True)
class StoreRef:
    """A disk-level alias: "this entry's value lives at (stage, key)".

    Stages that pass their input through untouched (``cleanup`` with
    ``run_cleanup=False``) would otherwise pickle the identical value a
    second time under their own key.  Storing a tiny ``StoreRef`` instead
    keeps the two keys independently addressable while the bytes exist
    once; :meth:`ArtifactStore.get` resolves refs transparently.
    """

    stage: str
    key: str


@dataclass
class StageStats:
    """Hit/miss/invalidation accounting for one stage (or one cache)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    """Subset of ``hits`` served by unpickling a persisted artifact."""
    stores: int = 0
    invalidations: int = 0
    """Misses on a stage that had been built before for the *same design*
    (lookup group) under a different key — i.e. a config/upstream change
    made a prior build unreachable.  A genuinely-new design entering a
    warm store is a cold build, not an invalidation.  When the caller
    supplies no group, any other key under the stage counts
    (conservative).  ``misses - invalidations`` is cold builds."""
    corrupt: int = 0
    """Persisted entries that failed their integrity check (checksum
    trailer mismatch, torn/truncated/unparseable pickle) and were
    quarantined — each such lookup also counts as a miss (the consumer
    rebuilds), never as an exception."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class StoreStats:
    """Per-stage :class:`StageStats` plus aggregate views."""

    stages: dict[str, StageStats] = field(default_factory=dict)

    def for_stage(self, name: str) -> StageStats:
        if name not in self.stages:
            self.stages[name] = StageStats()
        return self.stages[name]

    def _sum(self, attr: str) -> int:
        return sum(getattr(s, attr) for s in self.stages.values())

    @property
    def hits(self) -> int:
        return self._sum("hits")

    @property
    def misses(self) -> int:
        return self._sum("misses")

    @property
    def disk_hits(self) -> int:
        return self._sum("disk_hits")

    @property
    def stores(self) -> int:
        return self._sum("stores")

    @property
    def invalidations(self) -> int:
        return self._sum("invalidations")

    @property
    def corrupt(self) -> int:
        return self._sum("corrupt")

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Aggregate counters plus a ``per_stage`` breakdown."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
            "per_stage": {
                name: s.as_dict()
                for name, s in sorted(self.stages.items())
                if s.lookups or s.stores
            },
        }


@dataclass
class ArtifactStore:
    """Two-level (memory, disk) store of stage artifacts.

    Parameters
    ----------
    cache_dir:
        Optional directory for persistence across processes and campaign
        invocations; entries live under ``<cache_dir>/<stage>/<key>.pkl``
        and are created on demand.  ``None`` keeps the store in-memory.
    keep_in_memory:
        Whether disk-loaded and freshly built artifacts are retained in
        the in-process map (the default; disable to bound memory on very
        large campaigns while still deduplicating via disk).
    fsync:
        When True, every persisted entry is fsync'd (file *and* the
        containing directory) before the atomic rename publishes it, so
        a completed ``put`` survives a machine crash — not just a process
        crash.  Off by default: the store is a cache, and a torn or lost
        entry already degrades to a quarantine + rebuild.
    """

    cache_dir: str | None = None
    keep_in_memory: bool = True
    fsync: bool = False
    stats: StoreStats = field(default_factory=StoreStats)
    _memory: dict[tuple[str, str], Any] = field(default_factory=dict)
    _groups: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    """Keys seen per ``(stage, lookup group)`` — the invalidation ledger."""

    def get(
        self,
        stage: str,
        key: str,
        *,
        expect: type | None = None,
        group: str | None = None,
    ) -> Artifact | None:
        """Look up ``(stage, key)``; ``None`` on miss (stats updated).

        ``expect`` guards the disk layer: a persisted entry that unpickles
        to the wrong type (stale artifact from an incompatible version, a
        foreign file sharing the directory) degrades to a miss and rebuild
        instead of crashing the consumer later.

        ``group`` identifies the *design* behind the lookup (the pipeline
        passes the source content key) so invalidation accounting can tell
        "same design, changed knob" (an invalidation) from "new design on
        a warm store" (a cold build).  Without a group the old
        conservative heuristic applies: any other key under the stage
        counts as an invalidation.
        """
        return self.get_if_present(stage, key, expect=expect, group=group)

    def get_if_present(
        self,
        stage: str,
        key: str,
        *,
        expect: type | None = None,
        group: str | None = None,
        record_miss: bool = True,
    ) -> Artifact | None:
        """The single-read lookup behind :meth:`get` — one memory probe,
        at most one disk read.

        This replaced the orchestrator's warm-probe pattern of
        ``contains()`` *followed by* ``get()``, which read (and unpickled)
        every warm disk artifact twice.  Both the dataflow scheduler and
        the serial resolve path go through this method, so a warm lookup
        costs exactly one load no matter who asks.

        ``record_miss=False`` turns the call into a *peek*: a found entry
        still counts as a hit (it was genuinely served), but an absent one
        leaves the miss/invalidation counters untouched — for speculative
        probes that don't imply a rebuild.
        """
        st = self.stats.for_stage(stage)
        mem_key = (stage, key)
        if mem_key in self._memory:
            st.hits += 1
            self._record_group(stage, key, group)
            return Artifact(stage, key, self._memory[mem_key], hit=True)
        value = self._load_from_disk(stage, key)
        if value is not None and expect is not None and not isinstance(value, expect):
            value = None
        if value is not None:
            st.hits += 1
            st.disk_hits += 1
            if self.keep_in_memory:
                self._memory[mem_key] = value
            self._record_group(stage, key, group)
            return Artifact(stage, key, value, hit=True)
        if record_miss:
            st.misses += 1
            if self._is_invalidation(stage, key, group):
                st.invalidations += 1
            self._record_group(stage, key, group)
        return None

    def put(
        self,
        stage: str,
        key: str,
        value: Any,
        *,
        group: str | None = None,
        ref: StoreRef | None = None,
    ) -> Artifact:
        """Store ``value`` under ``(stage, key)`` (memory and disk).

        When ``ref`` names another entry already holding the identical
        value (a pass-through stage), the disk layer persists the tiny
        :class:`StoreRef` instead of pickling the value a second time;
        in-memory the value is shared by reference either way.
        """
        if self.keep_in_memory:
            self._memory[(stage, key)] = value
        if self.cache_dir is not None:
            self._store_to_disk(stage, key, value if ref is None else ref)
        self.stats.for_stage(stage).stores += 1
        self._record_group(stage, key, group)
        return Artifact(stage, key, value, hit=False)

    def contains(self, stage: str, key: str) -> bool:
        """Whether ``(stage, key)`` is available (memory or disk), without
        loading it and without touching the hit/miss stats.

        Prefer :meth:`get_if_present` when the value will be consumed on a
        hit — ``contains()`` followed by ``get()`` reads warm disk
        artifacts twice.  This stays for pure existence checks (admin
        tooling, tests).
        """
        if (stage, key) in self._memory:
            return True
        if self.cache_dir is None:
            return False
        return os.path.exists(self._path(stage, key))

    def get_or_run(
        self, stage: str, key: str, builder: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return the value for ``(stage, key)``, building it on a miss."""
        found = self.get(stage, key)
        if found is not None:
            return found.value, True
        value = builder()
        self.put(stage, key, value)
        return value, False

    def clear(self) -> None:
        """Drop in-memory entries (persisted files are left untouched)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def count(self, stage: str) -> int:
        """In-memory entries held for one stage."""
        return sum(1 for s, _ in self._memory if s == stage)

    def as_offline_fn(self):
        """Adapter for :func:`repro.analysis.experiments.run_benchmark_columns`.

        Returns ``fn(net, config) -> OfflineStage`` that resolves the
        generic flow through this store, stage by stage — the
        stage-granular analogue of ``OfflineCache.as_offline_fn``.
        """
        from repro.core.flow import DebugFlowConfig, OfflineStage
        from repro.netlist.network import LogicNetwork

        def fn(net: LogicNetwork, config: DebugFlowConfig) -> OfflineStage:
            from repro.pipeline.stages import assemble_offline, compile_design

            return assemble_offline(compile_design(net, config, store=self))

        return fn

    # -- invalidation accounting -----------------------------------------------

    def _record_group(self, stage: str, key: str, group: str | None) -> None:
        if group is not None:
            self._groups.setdefault((stage, group), set()).add(key)

    def _is_invalidation(
        self, stage: str, key: str, group: str | None
    ) -> bool:
        if group is not None:
            seen = self._groups.get((stage, group))
            return bool(seen) and any(k != key for k in seen)
        return self._stage_has_other_entries(stage, key)

    def _stage_has_other_entries(self, stage: str, key: str) -> bool:
        if any(s == stage and k != key for s, k in self._memory):
            return True
        if self.cache_dir is None:
            return False
        try:
            names = os.listdir(os.path.join(self.cache_dir, stage))
        except OSError:
            return False
        return any(
            n.endswith(".pkl") and n != f"{key}.pkl" for n in names
        )

    # -- disk layer ------------------------------------------------------------

    def _path(self, stage: str, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, stage, f"{key}.pkl")

    def _read_entry(self, stage: str, key: str) -> Any | None:
        """Read and integrity-check one persisted entry.

        Returns the decoded value (possibly a :class:`StoreRef`), or
        ``None`` when the file is absent — or present but corrupt, in
        which case it is quarantined and counted, never raised.
        """
        path = self._path(stage, key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        trailer_ok = None
        if (
            len(data) >= _TRAILER.size
            and data[-_TRAILER.size : -_TRAILER.size + 4] == _TRAILER_MAGIC
        ):
            _magic, length, crc = _TRAILER.unpack(data[-_TRAILER.size :])
            payload = data[: -_TRAILER.size]
            trailer_ok = (
                len(payload) == length and zlib.crc32(payload) == crc
            )
            data = payload
        if trailer_ok is not False:
            try:
                return pickle.loads(data)
            except Exception:
                pass  # unparseable payload: quarantine below
        self._quarantine(stage, key, path)
        return None

    def _quarantine(self, stage: str, key: str, path: str) -> None:
        """Move a corrupt entry aside (best-effort) and count it.

        The bad bytes are preserved under ``<cache_dir>/quarantine/`` for
        forensics; the live slot is freed either way, so the rebuild's
        ``put`` lands on a clean path.
        """
        self.stats.for_stage(stage).corrupt += 1
        assert self.cache_dir is not None
        qdir = os.path.join(self.cache_dir, "quarantine")
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, f"{stage}__{key}.pkl"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _load_from_disk(self, stage: str, key: str) -> Any | None:
        if self.cache_dir is None:
            return None
        value = self._read_entry(stage, key)
        # resolve alias chains (pass-through stages persist a StoreRef
        # instead of duplicating the upstream pickle); bounded hops keep a
        # corrupt self-referencing entry from looping
        hops = 0
        while isinstance(value, StoreRef) and hops < 8:
            hops += 1
            target = self._memory.get((value.stage, value.key))
            if target is not None:
                return target
            value = self._read_entry(value.stage, value.key)
        return None if isinstance(value, StoreRef) else value

    def _store_to_disk(self, stage: str, key: str, value: Any) -> None:
        assert self.cache_dir is not None
        # best-effort: persistence is an optimization, so any failure
        # (disk full, unpicklable member, ...) degrades to memory-only
        stage_dir = os.path.join(self.cache_dir, stage)
        try:
            os.makedirs(stage_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=stage_dir, suffix=".tmp")
        except OSError:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.write(
                    _TRAILER.pack(
                        _TRAILER_MAGIC, len(payload), zlib.crc32(payload)
                    )
                )
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            chaos.on_store_write(tmp, self._path(stage, key))
            os.replace(tmp, self._path(stage, key))
            if self.fsync:
                self._fsync_dir(stage_dir)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @staticmethod
    def _fsync_dir(path: str) -> None:
        """Flush a directory entry (the rename itself) to stable storage."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def sweep_stale_tmp(self) -> int:
        """Remove ``*.tmp`` leftovers of crashed writers; returns the count.

        A reader never touches ``.tmp`` files (lookups address
        ``<key>.pkl`` only), so leftovers are harmless to correctness —
        this reclaims the disk.  Only safe to call when no other process
        is concurrently writing this directory (e.g. on a ``--resume``
        after a crash).
        """
        if self.cache_dir is None:
            return 0
        removed = 0
        try:
            stages = os.listdir(self.cache_dir)
        except OSError:
            return 0
        for name in stages:
            stage_dir = os.path.join(self.cache_dir, name)
            try:
                entries = os.listdir(stage_dir)
            except OSError:
                continue
            for entry in entries:
                if entry.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(stage_dir, entry))
                        removed += 1
                    except OSError:
                        pass
        return removed
