"""The debug flow declared as a stage graph (§IV-A, end to end).

Ten stages — ``validate``, ``cleanup``, ``initial-map``,
``signal-parameterisation``, ``tcon-map`` (the generic flow) and ``pack``,
``rr-graph``, ``place``, ``route``, ``bitgen`` (the physical back-end,
where ``rr-graph`` and ``place`` both hang off ``pack`` and are
independent of each other) — each declaring
exactly the :class:`~repro.core.flow.DebugFlowConfig` fields it reads, so
the derived keys encode the paper's incrementality:

* ``trace_depth`` is read by no stage (it is an online-session knob):
  changing it invalidates **nothing**;
* ``fold_polarity`` is read only by ``tcon-map``: changing it reuses
  cleanup/initial-map/parameterisation and rebuilds from TCON mapping;
* an explicit tap-selection override (``params={"taps": [...]}``) enters
  at ``signal-parameterisation``: only parameterisation-downstream stages
  re-run;
* a changed design (or even a renamed one — the source key hashes names)
  re-runs everything.

:func:`compile_design` runs the graph (optionally against an
:class:`~repro.pipeline.store.ArtifactStore`);
:func:`assemble_offline` / :func:`assemble_physical` fold the artifacts
back into the historical :class:`~repro.core.flow.OfflineStage` /
:class:`~repro.physical.PhysicalStage` containers the rest of the system
consumes — which is what lets ``run_generic_stage`` and
``run_physical_stage`` stay API-compatible façades.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.flow import DebugFlowConfig, OfflineStage
from repro.core.muxnet import build_trace_network
from repro.errors import DebugFlowError
from repro.mapping import AbcMap, TconMap
from repro.netlist.network import LogicNetwork
from repro.netlist.transforms import cleanup
from repro.netlist.validate import validate_network
from repro.pipeline.graph import CompileResult, Stage, StageContext, StageGraph

__all__ = [
    "GENERIC_STAGES",
    "PHYSICAL_STAGES",
    "DEBUG_FLOW_GRAPH",
    "compile_design",
    "assemble_offline",
    "assemble_physical",
    "run_physical_stages",
]

GENERIC_STAGES = (
    "validate",
    "cleanup",
    "initial-map",
    "signal-parameterisation",
    "tcon-map",
)
PHYSICAL_STAGES = ("pack", "rr-graph", "place", "route", "bitgen")


# -- generic-flow stage bodies -------------------------------------------------


def _validate(ctx: StageContext) -> LogicNetwork:
    net = ctx["source"]
    validate_network(net)
    # the artifact must not alias the caller's live object: an in-memory
    # store would otherwise serve mutated content under the original key
    return net.copy()


def _cleanup(ctx: StageContext) -> LogicNetwork:
    net = ctx["validate"]
    return cleanup(net) if ctx.config.run_cleanup else net


def _initial_map(ctx: StageContext) -> dict[str, Any]:
    work = ctx["cleanup"]
    initial = AbcMap(
        k=ctx.config.k,
        cut_limit=ctx.config.cut_limit,
        area_rounds=ctx.config.area_rounds,
        # level-wave parallel cut enumeration is byte-identical to serial
        # (repro.mapping.parallel), so the worker count is never keyed
        intra=ctx.intra,
    ).map(work)
    # the initial mapping's LUT roots (plus latch outputs) are the default
    # observable signal set — the nets that physically exist on the emulator
    taps = sorted(initial.luts.keys()) + [l.q for l in work.latches]
    if not taps:
        raise DebugFlowError("design has no observable signals after mapping")
    return {"mapping": initial, "taps": taps}


def _effective_taps(ctx: StageContext) -> list[int]:
    override = ctx.params.get("taps")
    if override is None:
        return ctx["initial-map"]["taps"]
    return list(override)


def _parameterise(ctx: StageContext):
    return build_trace_network(
        ctx["cleanup"],
        _effective_taps(ctx),
        n_buffer_inputs=ctx.config.n_buffer_inputs,
        with_triggers=False,
    )


def _tcon_map(ctx: StageContext):
    instrumented = ctx["signal-parameterisation"]
    return TconMap(
        k=ctx.config.k,
        cut_limit=ctx.config.cut_limit,
        area_rounds=ctx.config.area_rounds,
        params=instrumented.param_ids,
        taps=set(instrumented.taps),
        fold_polarity=ctx.config.fold_polarity,
        # byte-identical at any worker count — never part of the cache key
        intra=ctx.intra,
    ).map(instrumented.network)


# -- physical back-end stage bodies (lazy imports, see repro.physical) ---------


def _arch(ctx: StageContext):
    from repro.arch.virtex5 import VIRTEX5_LIKE

    return ctx.params.get("arch") or VIRTEX5_LIKE


def _pack(ctx: StageContext):
    from repro.physical import pack_stage

    return pack_stage(
        ctx["tcon-map"], ctx["signal-parameterisation"], _arch(ctx)
    )


def _rr_graph(ctx: StageContext):
    from repro.physical import rr_graph_stage

    return rr_graph_stage(ctx["pack"])


def _place(ctx: StageContext):
    from repro.physical import place_stage

    return place_stage(
        ctx["pack"],
        seed=ctx.params.get("seed", 2016),
        effort=ctx.params.get("effort", 4.0),
        regions=ctx.params.get("place_regions") or 0,
        intra=ctx.intra,
    )


def _route(ctx: StageContext):
    from repro.physical import route_stage

    return route_stage(
        ctx["place"],
        ctx["rr-graph"],
        max_route_iterations=ctx.params.get("max_route_iterations", 40),
        intra=ctx.intra,
    )


def _bitgen(ctx: StageContext):
    from repro.physical import bitgen_stage

    rr, routing = ctx["route"]
    return bitgen_stage(
        ctx["pack"], ctx["place"], rr, routing, ctx["signal-parameterisation"]
    )


#: The full flow as one declared graph.  ``config_fields`` are the exact
#: read sets — the invalidation tests pin them down field by field.
DEBUG_FLOW_GRAPH = StageGraph(
    [
        Stage("validate", _validate, inputs=("source",)),
        Stage(
            "cleanup",
            _cleanup,
            inputs=("validate",),
            config_fields=("run_cleanup",),
        ),
        Stage(
            "initial-map",
            _initial_map,
            inputs=("cleanup",),
            config_fields=("k", "cut_limit", "area_rounds"),
        ),
        Stage(
            "signal-parameterisation",
            _parameterise,
            inputs=("cleanup", "initial-map"),
            config_fields=("n_buffer_inputs",),
            param_fields=("taps",),
        ),
        Stage(
            "tcon-map",
            _tcon_map,
            inputs=("initial-map", "signal-parameterisation"),
            config_fields=("k", "cut_limit", "area_rounds", "fold_polarity"),
        ),
        Stage(
            "pack",
            _pack,
            inputs=("tcon-map", "signal-parameterisation"),
            param_fields=("arch",),
        ),
        # depends only on pack, so it runs concurrently with the placement
        # anneal under the dataflow scheduler (the grid is a pure function
        # of the pack output — see repro.physical.grid_for_packed)
        Stage("rr-graph", _rr_graph, inputs=("pack",)),
        Stage(
            "place",
            _place,
            inputs=("pack",),
            # place_regions > 1 selects the region-parallel annealer — a
            # different move trajectory, hence a key discriminator; the
            # worker count executing it is NOT keyed (ctx.intra)
            param_fields=("seed", "effort", "place_regions"),
            # v3: place_regions key discriminator (region-parallel
            # annealer); v2: incremental-HPWL annealer (PR 5)
            version=3,
        ),
        Stage(
            "route",
            _route,
            inputs=("place", "rr-graph"),
            # the round-parallel router is byte-identical to serial at
            # any worker count, so intra-parallel routing needs no key
            param_fields=("max_route_iterations",),
            # v2: array-backed PathFinder (PR 5) — different tie-breaking,
            # so persisted v1 routings are unreachable
            version=2,
        ),
        Stage(
            "bitgen",
            _bitgen,
            inputs=("pack", "place", "route", "signal-parameterisation"),
        ),
    ]
)


def compile_design(
    net: LogicNetwork,
    config: DebugFlowConfig | None = None,
    *,
    store=None,
    with_physical: bool = False,
    params: Mapping[str, Any] | None = None,
    stages: Sequence[str] | None = None,
) -> CompileResult:
    """Run the debug-flow stage graph on a synthesized network.

    ``stages`` defaults to the generic flow, or the full graph when
    ``with_physical``.  Pass an
    :class:`~repro.pipeline.store.ArtifactStore` to reuse every stage
    whose derived key is unchanged — a warm single-knob config change
    rebuilds only the invalidated suffix.
    """
    if stages is None:
        stages = (
            GENERIC_STAGES + PHYSICAL_STAGES if with_physical else GENERIC_STAGES
        )
    return DEBUG_FLOW_GRAPH.run(
        net, config, store=store, params=params, stages=stages
    )


def assemble_offline(result: CompileResult) -> OfflineStage:
    """Fold a compile result into the historical ``OfflineStage`` artifact."""
    instrumented = result.value("signal-parameterisation")
    offline = OfflineStage(
        source=result.value("cleanup"),
        config=result.config,
        initial=result.value("initial-map")["mapping"],
        instrumented=instrumented,
        mapping=result.value("tcon-map"),
        annotation=instrumented.annotation(),
        timers=result.timers,
        cache_key=result.artifacts["tcon-map"].key,
        stage_keys=result.keys(),
    )
    if "bitgen" in result.artifacts:
        offline.physical = assemble_physical(result)
    return offline


def assemble_physical(result: CompileResult, *, arch=None):
    """Fold the physical-stage artifacts into a ``PhysicalStage``.

    The stage's timers carry only the physical phases, so
    ``summary()["pnr_runtime_s"]`` keeps its meaning even when ``result``
    covers the whole graph.
    """
    from repro.arch.virtex5 import VIRTEX5_LIKE
    from repro.physical import PhysicalStage
    from repro.util.timing import PhaseTimer

    placement = result.value("place")
    rr, routing = result.value("route")
    layout, bitstream = result.value("bitgen")
    timers = PhaseTimer(
        totals={
            k: v for k, v in result.timers.totals.items() if k in PHYSICAL_STAGES
        },
        counts={
            k: c for k, c in result.timers.counts.items() if k in PHYSICAL_STAGES
        },
    )
    return PhysicalStage(
        arch=arch or result.params.get("arch") or VIRTEX5_LIKE,
        packed=result.value("pack"),
        grid=placement.grid,
        placement=placement,
        rr=rr,
        routing=routing,
        layout=layout,
        bitstream=bitstream,
        timers=timers,
    )


def run_physical_stages(
    offline: OfflineStage,
    *,
    arch=None,
    store=None,
    params: Mapping[str, Any] | None = None,
):
    """Physical sub-graph over an existing offline artifact.

    The offline artifact's mapping and instrumented design are injected as
    preset upstream artifacts under their graph-native stage keys
    (recorded on ``offline.stage_keys`` by the assembler), so the façade
    path shares physical-stage cache entries with full-graph compiles
    when a ``store`` is supplied.  Artifacts from older caches that carry
    no stage keys fall back to keys derived from the whole-artifact
    content key — still content-stable, just a disjoint key space.
    """
    from repro.core.flow import offline_cache_key

    run_params = dict(params or {})
    if arch is not None:
        run_params["arch"] = arch
    keys = getattr(offline, "stage_keys", None) or {}
    if "tcon-map" not in keys or "signal-parameterisation" not in keys:
        base = offline.cache_key or offline_cache_key(
            offline.source, offline.config
        )
        keys = {
            "signal-parameterisation": f"{base}/signal-parameterisation",
            "tcon-map": f"{base}/tcon-map",
        }
    result = DEBUG_FLOW_GRAPH.run(
        offline.source,
        offline.config,
        store=store,
        params=run_params,
        stages=PHYSICAL_STAGES,
        preset={
            "signal-parameterisation": (
                keys["signal-parameterisation"],
                offline.instrumented,
            ),
            "tcon-map": (keys["tcon-map"], offline.mapping),
        },
    )
    return assemble_physical(result, arch=run_params.get("arch"))
