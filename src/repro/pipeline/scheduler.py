"""Futures-based dataflow scheduler for overlapped stage-graph execution.

The campaign runner's two historical barriers — offline-then-online phase
ordering, and lockstep stage execution within a design — both disappear
here.  Work is modelled as :class:`ScheduledTask` nodes (a fused segment
of compile stages, or an online lane batch) wired by explicit
dependencies; one single-threaded event loop in the parent process
dispatches every ready task onto one shared worker pool and fires
completion callbacks the moment results land, so a design's online work
launches while other designs are still building and a design's
independent stages (``rr-graph`` vs ``place``) run concurrently.

Store semantics are kept *exactly* equal to the serial path by
construction: the parent — never a worker — performs every
:class:`~repro.pipeline.store.ArtifactStore` probe and put, under the
same keys and in the same per-design order the serial executor uses
(:func:`submit_compile` probes with
:meth:`~repro.pipeline.store.ArtifactStore.get_if_present` in topological
order, then ships only the missing suffix to workers).  Hit/miss/
invalidation counters therefore match the serial path at any worker
count, and outcomes are byte-identical.

Failure isolation: a segment raising cancels only the *same design's*
downstream segments (its compile completes with an error); other designs'
tasks are untouched.  A broken worker pool (``OSError``,
``PermissionError``, ``BrokenExecutor``) degrades the affected task — and
everything after it — to in-parent execution, recorded per task kind in
:attr:`DataflowScheduler.inline_fallbacks`.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.pipeline.graph import (
    SOURCE,
    Artifact,
    CompileResult,
    StageContext,
    StageGraph,
    StagePlan,
)
from repro.util.timing import PhaseTimer

__all__ = [
    "ScheduledTask",
    "DataflowScheduler",
    "submit_compile",
]

#: Executor failures that mean "the pool is unusable", not "the task is
#: wrong" — the scheduler falls back to in-parent execution on these.
POOL_ERRORS = (OSError, PermissionError, BrokenProcessPool)


def _timed_call(fn: Callable[[Any], Any], payload: Any):
    """Pool-side wrapper: run ``fn(payload)`` and report absolute times.

    ``time.perf_counter`` is ``CLOCK_MONOTONIC`` system-wide on Linux, so
    worker-side timestamps are directly comparable with the parent's —
    which is what makes the cross-process overlap/concurrency metrics
    honest rather than estimated.
    """
    t0 = time.perf_counter()
    out = fn(payload)
    return out, t0, time.perf_counter()


@dataclass
class ScheduledTask:
    """One schedulable unit: a compile segment or an online lane batch."""

    kind: str
    """Metric bucket — ``"offline"`` or ``"online"``."""
    label: str
    worker_fn: Callable[[Any], Any] | None = None
    """Module-level (picklable) function for pool execution."""
    payload_fn: Callable[[], Any] | None = None
    """Builds the payload lazily at dispatch time, after deps resolved."""
    payload: Any = None
    inline_fn: Callable[[], Any] | None = None
    """In-parent alternative body (used when not pooled, or pool broken)."""
    pooled: bool = False
    on_done: Callable[["ScheduledTask", Any], None] | None = None
    result: Any = None
    start_s: float = 0.0
    end_s: float = 0.0
    done: bool = False
    cancelled: bool = False
    _n_deps: int = 0
    _children: list["ScheduledTask"] = field(default_factory=list)

    def _materialize(self) -> Any:
        if self.payload_fn is not None:
            self.payload = self.payload_fn()
            self.payload_fn = None
        return self.payload


class DataflowScheduler:
    """Single-threaded event loop over one shared worker pool.

    The parent owns all bookkeeping (dependency counts, store access via
    task callbacks); only task bodies run in workers.  The pool is
    created lazily at the first pooled dispatch, so fully-inline
    configurations (``workers=1``, warm caches) never pay process
    startup — the serial path is literally this scheduler with no pooled
    tasks.
    """

    def __init__(
        self,
        *,
        pool_size: int = 1,
        executor_factory: Callable[[int], Any] | None = None,
    ) -> None:
        self.pool_size = max(1, pool_size)
        self._executor_factory = executor_factory
        self._pool = None
        self.pool_error: BaseException | None = None
        self.inline_fallbacks: set[str] = set()
        """Task kinds that had a pooled task degrade to in-parent runs."""
        self._ready: deque[ScheduledTask] = deque()
        self._inflight: dict[Future, ScheduledTask] = {}
        self._n_pending = 0
        self.intervals: list[tuple[str, float, float]] = []
        """(kind, start, end) execution interval per completed task."""
        self.stage_spans: dict[str, list[tuple[float, float]]] = {}
        """Per-compile-stage execution spans, fed by segment completions."""
        self.n_tasks: dict[str, int] = {}
        """Tasks ever added, per kind."""
        self.sched_wall_s = 0.0

    @property
    def pool_broken(self) -> bool:
        return self.pool_error is not None

    # -- graph construction ----------------------------------------------------

    def add(
        self, task: ScheduledTask, deps: Sequence[ScheduledTask] = ()
    ) -> ScheduledTask:
        live = [d for d in deps if not d.done and not d.cancelled]
        task._n_deps = len(live)
        for d in live:
            d._children.append(task)
        self.n_tasks[task.kind] = self.n_tasks.get(task.kind, 0) + 1
        self._n_pending += 1
        if task._n_deps == 0:
            self._ready.append(task)
        return task

    def cancel(self, task: ScheduledTask) -> None:
        """Drop a not-yet-finished task (and never fire its callback).

        In-flight pool work is left to finish; its result is discarded on
        arrival.  Dependents are *not* cancelled implicitly — the caller
        owns its task sub-graph and cancels exactly what it means to.
        """
        if task.done or task.cancelled:
            return
        task.cancelled = True
        self._n_pending -= 1

    # -- event loop ------------------------------------------------------------

    def run(self) -> None:
        """Drain every pending task; returns when all are done/cancelled.

        Callbacks may :meth:`add` further tasks (that is how online lane
        batches chain onto offline completions); the loop keeps going
        until the whole transitive graph is drained.  Wall time across
        all :meth:`run` calls accumulates in :attr:`sched_wall_s`.
        """
        t0 = time.perf_counter()
        try:
            while self._n_pending:
                self._dispatch_pooled()
                task = self._pop_ready()
                if task is not None:
                    self._run_inline(task)
                elif self._inflight:
                    done, _ = wait(self._inflight, return_when=FIRST_COMPLETED)
                    for fut in done:
                        self._finish_pooled(fut)
                else:  # pragma: no cover - defensive: bookkeeping drift
                    break
        finally:
            self.sched_wall_s += time.perf_counter() - t0

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- metrics ---------------------------------------------------------------

    def overlap_s(self, kind_a: str = "offline", kind_b: str = "online") -> float:
        """Seconds during which both kinds had work executing."""

        def merged(kind: str) -> list[tuple[float, float]]:
            spans = sorted(
                (s, e) for k, s, e in self.intervals if k == kind and e > s
            )
            out: list[tuple[float, float]] = []
            for s, e in spans:
                if out and s <= out[-1][1]:
                    out[-1] = (out[-1][0], max(out[-1][1], e))
                else:
                    out.append((s, e))
            return out

        a, b = merged(kind_a), merged(kind_b)
        total, i, j = 0.0, 0, 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def stage_concurrency(self) -> dict[str, float]:
        """Per-stage busy-time / span-time — 1.0 means fully serialized.

        A stage whose executions overlap across designs (busy seconds
        exceeding its first-start-to-last-end span would be impossible;
        instead *campaign-level* concurrency shows up as span ≪ sum of a
        serial schedule) is reported as busy/span of the union timeline.
        """
        out: dict[str, float] = {}
        for stage, spans in sorted(self.stage_spans.items()):
            busy = sum(e - s for s, e in spans)
            lo = min(s for s, _ in spans)
            hi = max(e for _, e in spans)
            out[stage] = round(busy / (hi - lo), 3) if hi > lo else 1.0
        return out

    # -- internals -------------------------------------------------------------

    def _acquire_pool(self):
        if self._pool is None and not self.pool_broken:
            if self._executor_factory is None:
                self.pool_error = RuntimeError("no executor factory")
            else:
                try:
                    self._pool = self._executor_factory(self.pool_size)
                except POOL_ERRORS as exc:
                    self.pool_error = exc
        return self._pool

    def _dispatch_pooled(self) -> None:
        if not any(t.pooled for t in self._ready):
            return
        keep: deque[ScheduledTask] = deque()
        for task in self._ready:
            if task.cancelled:
                continue
            if not task.pooled or self.pool_broken:
                keep.append(task)
                continue
            pool = self._acquire_pool()
            if pool is None:
                keep.append(task)
                continue
            try:
                fut = pool.submit(_timed_call, task.worker_fn, task._materialize())
            except POOL_ERRORS as exc:
                self.pool_error = exc
                keep.append(task)
                continue
            self._inflight[fut] = task
        self._ready = keep

    def _pop_ready(self) -> ScheduledTask | None:
        while self._ready:
            task = self._ready.popleft()
            if not task.cancelled:
                return task
        return None

    def _run_inline(self, task: ScheduledTask) -> None:
        if task.pooled:
            # a pooled task running here means the pool broke under it
            self.inline_fallbacks.add(task.kind)
        if task.inline_fn is not None:
            fn = task.inline_fn
        else:
            payload = task._materialize()
            fn = lambda: task.worker_fn(payload)  # noqa: E731
        t0 = time.perf_counter()
        out = fn()
        self._complete(task, out, t0, time.perf_counter())

    def _finish_pooled(self, fut: Future) -> None:
        task = self._inflight.pop(fut)
        try:
            out, t0, t1 = fut.result()
        except POOL_ERRORS as exc:
            self.pool_error = exc
            if not task.cancelled:
                self._run_inline(task)
            return
        if task.cancelled:
            return
        self._complete(task, out, t0, t1)

    def _complete(
        self, task: ScheduledTask, out: Any, t0: float, t1: float
    ) -> None:
        task.result, task.start_s, task.end_s = out, t0, t1
        task.done = True
        self._n_pending -= 1
        self.intervals.append((task.kind, t0, t1))
        if task.on_done is not None:
            task.on_done(task, out)
        for child in task._children:
            if child.cancelled or child.done:
                continue
            child._n_deps -= 1
            if child._n_deps == 0:
                self._ready.append(child)


# -- compile-as-dataflow -------------------------------------------------------


def _segment_worker(payload, intra=None):
    """Run one fused chain of stage bodies (pool- or parent-side).

    ``intra`` (an :class:`~repro.util.intra.IntraPool`) is handed to every
    stage body via :attr:`StageContext.intra` so intra-parallel stages can
    fan their move/route waves onto the campaign's shared pool.  It is
    only ever non-``None`` when the segment runs in the parent — a worker
    process must not (and cannot) drive the pool it runs on.

    Returns ``("ok", values, times, spans)`` with absolute
    ``perf_counter`` spans per stage, or ``("err", message)`` — stage
    exceptions are marshalled, not raised, so a worker failure surfaces
    as a normal completion the parent can route to the owning design.
    """
    graph, config, params, names, values = payload
    values = dict(values)
    out: dict[str, Any] = {}
    times: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}
    try:
        for name in names:
            stage = graph[name]
            ctx = StageContext(
                config=config, params=params, artifacts=values, intra=intra
            )
            s0 = time.perf_counter()
            value = stage.fn(ctx)
            s1 = time.perf_counter()
            values[name] = out[name] = value
            times[name] = s1 - s0
            spans[name] = (s0, s1)
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        return ("err", f"{type(exc).__name__}: {exc}")
    return ("ok", out, times, spans)


def submit_compile(
    sched: DataflowScheduler,
    graph: StageGraph,
    net,
    plan: StagePlan,
    *,
    store=None,
    pooled: bool = False,
    kind: str = "offline",
    label: str = "",
    intra=None,
    intra_stages: Sequence[str] = ("place", "route"),
    on_complete: Callable[[CompileResult | None, str | None], None],
) -> list[ScheduledTask]:
    """Register one design's compile as dataflow tasks on ``sched``.

    Probes the store for every planned stage **now**, in the parent, in
    topological order — exactly the serial executor's lookup sequence, so
    hit/miss statistics are identical by construction.  Missing stages
    are fused into segments (:meth:`StageGraph.segments`) and submitted
    as tasks wired by their true dependencies; segment completions store
    built artifacts (again parent-side, same keys, same pass-through-ref
    aliasing) and, when the last segment lands, ``on_complete(result,
    None)`` fires.  A failing segment cancels only the segments
    *downstream of it* (independent siblings of the same design still
    complete and store their artifacts) and fires
    ``on_complete(None, message)`` once.

    ``intra`` (an :class:`~repro.util.intra.IntraPool`) declares
    *intra-design* parallelism: any segment touching a stage in
    ``intra_stages`` is forced to run **in the parent** (never pooled) so
    its stage bodies can fan sub-task waves onto the campaign's one
    shared worker pool through ``intra`` — intra-parallel segments do not
    nest a second pool, they *are* the parent feeding the existing one.
    Other segments keep the caller's ``pooled`` setting.

    A fully-warm design never creates a task: ``on_complete`` fires
    synchronously before this returns.  Returns the created tasks.
    """
    values: dict[str, Any] = {SOURCE: net}
    artifacts: dict[str, Artifact] = {}
    totals: dict[str, float] = {}
    for name, (key, value) in plan.preset.items():
        values[name] = value
        artifacts[name] = Artifact(name, key, value, hit=True)
    missing: list[str] = []
    for stage in plan.selected:
        key = plan.keys[stage.name]
        found = (
            store.get_if_present(stage.name, key, group=plan.group)
            if store is not None
            else None
        )
        if found is not None:
            values[stage.name] = found.value
            artifacts[stage.name] = Artifact(stage.name, key, found.value, hit=True)
        else:
            missing.append(stage.name)

    def finish() -> None:
        result = CompileResult(
            config=plan.config,
            source_key=plan.source_key,
            params=dict(plan.params),
            artifacts=artifacts,
            timers=PhaseTimer(
                totals=dict(totals), counts={k: 1 for k in totals}
            ),
        )
        on_complete(result, None)

    if not missing:
        finish()
        return []

    missing_set = set(missing)
    state = {"left": 0, "failed": False}
    owner: dict[str, ScheduledTask] = {}  # stage name -> owning task
    created: list[ScheduledTask] = []
    for seg_names in graph.segments(missing):
        seg_set = set(seg_names)
        ext = sorted(
            {
                d
                for n in seg_names
                for d in graph[n].inputs
                if d not in seg_set
            }
        )
        dep_tasks = sorted(
            {id(owner[d]): owner[d] for d in ext if d in missing_set}.values(),
            key=lambda t: t.label,
        )

        def payload_fn(names=tuple(seg_names), ext=tuple(ext)):
            return (
                graph,
                plan.config,
                plan.params,
                names,
                {d: values[d] for d in ext},
            )

        def seg_done(task, outcome, names=tuple(seg_names)):
            if outcome[0] == "err":
                already = state["failed"]
                state["failed"] = True
                # cancel only the segments downstream of the failure;
                # independent sibling segments keep running (their
                # artifacts are valid and land in the store as usual)
                stack, seen = [task], set()
                while stack:
                    for child in stack.pop()._children:
                        if id(child) not in seen:
                            seen.add(id(child))
                            sched.cancel(child)
                            stack.append(child)
                if not already:
                    on_complete(None, outcome[1])
                return
            _tag, out, times, spans = outcome
            values.update(out)
            for name in names:
                key = plan.keys[name]
                value = out[name]
                if store is not None:
                    store.put(
                        name,
                        key,
                        value,
                        group=plan.group,
                        ref=graph._passthrough_ref(
                            graph[name], value, values, plan.keys
                        ),
                    )
                artifacts[name] = Artifact(name, key, value, hit=False)
                totals[name] = times[name]
                sched.stage_spans.setdefault(name, []).append(spans[name])
            state["left"] -= 1
            if state["left"] == 0 and not state["failed"]:
                finish()

        seg_intra = intra is not None and any(
            n in seg_set for n in intra_stages
        )
        task = ScheduledTask(
            kind=kind,
            label=f"{label or plan.group or 'design'}:{seg_names[0]}",
            # intra-parallel segments run parent-side and drive the shared
            # pool themselves; shipping them to a worker would strand the
            # (unpicklable) pool handle and serialize the waves
            worker_fn=(
                (lambda payload, _i=intra: _segment_worker(payload, intra=_i))
                if seg_intra
                else _segment_worker
            ),
            payload_fn=payload_fn,
            pooled=pooled and not seg_intra,
            on_done=seg_done,
        )
        state["left"] += 1
        created.append(task)
        for n in seg_names:
            owner[n] = task
        sched.add(task, deps=dep_tasks)
    return created
