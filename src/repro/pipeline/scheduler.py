"""Futures-based dataflow scheduler for overlapped stage-graph execution.

The campaign runner's two historical barriers — offline-then-online phase
ordering, and lockstep stage execution within a design — both disappear
here.  Work is modelled as :class:`ScheduledTask` nodes (a fused segment
of compile stages, or an online lane batch) wired by explicit
dependencies; one single-threaded event loop in the parent process
dispatches every ready task onto one shared worker pool and fires
completion callbacks the moment results land, so a design's online work
launches while other designs are still building and a design's
independent stages (``rr-graph`` vs ``place``) run concurrently.

Store semantics are kept *exactly* equal to the serial path by
construction: the parent — never a worker — performs every
:class:`~repro.pipeline.store.ArtifactStore` probe and put, under the
same keys and in the same per-design order the serial executor uses
(:func:`submit_compile` probes with
:meth:`~repro.pipeline.store.ArtifactStore.get_if_present` in topological
order, then ships only the missing suffix to workers).  Hit/miss/
invalidation counters therefore match the serial path at any worker
count, and outcomes are byte-identical.

Failure isolation: a segment raising cancels only the *same design's*
downstream segments (its compile completes with an error); other designs'
tasks are untouched.

Supervision: every pooled task runs under the parent's watch.  A broken
worker pool (:data:`repro.errors.POOL_ERRORS`) is **respawned** up to
:attr:`DataflowScheduler.max_pool_respawns` times — completed in-flight
results are salvaged, only genuinely unfinished tasks are re-enqueued, so
store puts already performed are never redone.  Once the respawn budget
is exhausted the pool is declared dead and pooled tasks degrade to
in-parent execution, recorded per task kind in
:attr:`DataflowScheduler.inline_fallbacks` (the pre-supervision
behaviour).  Tasks may additionally carry a wall-clock ``timeout_s`` and
a bounded ``max_retries``; a timed-out or failing task is retried after a
**deterministic** backoff — :func:`retry_delay` derives the delay purely
from the task key and attempt number, so a retried schedule differs from
a fault-free one only in wall-clock time, never in outcomes.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, Sequence

from repro.errors import POOL_ERRORS
from repro.pipeline.graph import (
    SOURCE,
    Artifact,
    CompileResult,
    StageContext,
    StageGraph,
    StagePlan,
)
from repro.util import chaos
from repro.util.timing import PhaseTimer

__all__ = [
    "ScheduledTask",
    "DataflowScheduler",
    "submit_compile",
    "retry_delay",
    "POOL_ERRORS",
]


def retry_delay(key: str, attempt: int, base_s: float) -> float:
    """Deterministic exponential backoff for retry ``attempt`` of ``key``.

    ``base_s * 2**(attempt-1)`` scaled by a key-derived factor in
    ``[1, 2)`` — the factor spreads simultaneous retries apart (so a
    respawned pool is not thundering-herded) without any randomness:
    the same task key always backs off by the same amount, which keeps
    retried schedules reproducible.
    """
    h = int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=2).digest(), "little"
    )
    return base_s * (2.0 ** max(0, attempt - 1)) * (1.0 + h / 65536.0)


def _timed_call(fn: Callable[[Any], Any], payload: Any, label: str = ""):
    """Pool-side wrapper: run ``fn(payload)`` and report absolute times.

    ``time.perf_counter`` is ``CLOCK_MONOTONIC`` system-wide on Linux, so
    worker-side timestamps are directly comparable with the parent's —
    which is what makes the cross-process overlap/concurrency metrics
    honest rather than estimated.  The :mod:`repro.util.chaos` hook is a
    no-op unless a test armed fault injection for this process tree.
    """
    chaos.on_pooled_task(label)
    t0 = time.perf_counter()
    out = fn(payload)
    return out, t0, time.perf_counter()


@dataclass
class ScheduledTask:
    """One schedulable unit: a compile segment or an online lane batch."""

    kind: str
    """Metric bucket — ``"offline"`` or ``"online"``."""
    label: str
    worker_fn: Callable[[Any], Any] | None = None
    """Module-level (picklable) function for pool execution."""
    payload_fn: Callable[[], Any] | None = None
    """Builds the payload lazily at dispatch time, after deps resolved."""
    payload: Any = None
    inline_fn: Callable[[], Any] | None = None
    """In-parent alternative body (used when not pooled, or pool broken)."""
    pooled: bool = False
    on_done: Callable[["ScheduledTask", Any], None] | None = None
    on_fail: Callable[["ScheduledTask", str], None] | None = None
    """Fired instead of ``on_done`` when supervision gives up on the task
    (timeout/retries exhausted).  Tasks whose ``on_done`` already speaks
    the ``("err", message)`` outcome protocol (compile segments) may
    leave this unset — they receive the failure through ``on_done``."""
    timeout_s: float | None = None
    """Wall-clock budget per pooled attempt (inline runs are unbounded —
    the parent cannot preempt itself)."""
    max_retries: int = 0
    """Extra attempts after the first, for timeouts and task errors."""
    key: str = ""
    """Stable retry-backoff identity; defaults to ``label``."""
    attempts: int = 0
    """Pooled attempts charged so far (crash victims are not charged)."""
    result: Any = None
    start_s: float = 0.0
    end_s: float = 0.0
    done: bool = False
    cancelled: bool = False
    _n_deps: int = 0
    _deadline: float = 0.0
    _children: list["ScheduledTask"] = field(default_factory=list)

    def _materialize(self) -> Any:
        if self.payload_fn is not None:
            self.payload = self.payload_fn()
            self.payload_fn = None
        return self.payload


class DataflowScheduler:
    """Single-threaded event loop over one shared worker pool.

    The parent owns all bookkeeping (dependency counts, store access via
    task callbacks); only task bodies run in workers.  The pool is
    created lazily at the first pooled dispatch, so fully-inline
    configurations (``workers=1``, warm caches) never pay process
    startup — the serial path is literally this scheduler with no pooled
    tasks.
    """

    def __init__(
        self,
        *,
        pool_size: int = 1,
        executor_factory: Callable[[int], Any] | None = None,
        max_pool_respawns: int = 1,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.pool_size = max(1, pool_size)
        self._executor_factory = executor_factory
        self._pool = None
        self.max_pool_respawns = max(0, max_pool_respawns)
        """Pool failures tolerated before declaring the pool dead."""
        self.retry_backoff_s = retry_backoff_s
        """Base unit for :func:`retry_delay` (wall time only — outcomes
        do not depend on it)."""
        self.pool_error: BaseException | None = None
        """Most recent pool-level failure (survives a successful respawn
        as a diagnostic; see :attr:`pool_broken` for the current state)."""
        self.inline_fallbacks: set[str] = set()
        """Task kinds that had a pooled task degrade to in-parent runs."""
        self.pool_respawns = 0
        """Pool teardowns observed (charged crashes + timeout kills)."""
        self.n_retries = 0
        self.n_timeouts = 0
        self.n_reenqueued = 0
        """In-flight victim tasks re-enqueued after a pool teardown."""
        self._respawns_charged = 0
        self._pool_dead = False
        self._ready: deque[ScheduledTask] = deque()
        self._delayed: list[tuple[float, int, ScheduledTask]] = []
        self._seq = itertools.count()
        self._inflight: dict[Future, ScheduledTask] = {}
        self._tasks: list[ScheduledTask] = []
        self._n_pending = 0
        self.intervals: list[tuple[str, float, float]] = []
        """(kind, start, end) execution interval per completed task."""
        self.stage_spans: dict[str, list[tuple[float, float]]] = {}
        """Per-compile-stage execution spans, fed by segment completions."""
        self.n_tasks: dict[str, int] = {}
        """Tasks ever added, per kind."""
        self.sched_wall_s = 0.0

    @property
    def pool_broken(self) -> bool:
        """The pool is *permanently* unusable (respawn budget exhausted);
        transient failures that a respawn absorbed do not count."""
        return self._pool_dead

    # -- graph construction ----------------------------------------------------

    def add(
        self, task: ScheduledTask, deps: Sequence[ScheduledTask] = ()
    ) -> ScheduledTask:
        live = [d for d in deps if not d.done and not d.cancelled]
        task._n_deps = len(live)
        for d in live:
            d._children.append(task)
        self.n_tasks[task.kind] = self.n_tasks.get(task.kind, 0) + 1
        self._tasks.append(task)
        self._n_pending += 1
        if task._n_deps == 0:
            self._ready.append(task)
        return task

    def cancel(self, task: ScheduledTask) -> None:
        """Drop a not-yet-finished task (and never fire its callback).

        In-flight pool work is left to finish; its result is discarded on
        arrival.  Dependents are *not* cancelled implicitly — the caller
        owns its task sub-graph and cancels exactly what it means to.
        """
        if task.done or task.cancelled:
            return
        task.cancelled = True
        self._n_pending -= 1

    def abort(self) -> None:
        """Cancel every not-yet-finished task (the fail-fast path).

        No callback fires for aborted tasks; in-flight pool results are
        discarded on arrival.  :meth:`run` returns promptly (within one
        in-flight task completion), and the scheduler stays usable —
        :meth:`add` after an abort starts a fresh graph.
        """
        for task in self._tasks:
            self.cancel(task)
        self._delayed.clear()
        self._ready.clear()

    # -- event loop ------------------------------------------------------------

    def run(self) -> None:
        """Drain every pending task; returns when all are done/cancelled.

        Callbacks may :meth:`add` further tasks (that is how online lane
        batches chain onto offline completions); the loop keeps going
        until the whole transitive graph is drained.  Wall time across
        all :meth:`run` calls accumulates in :attr:`sched_wall_s`.
        """
        t0 = time.perf_counter()
        try:
            while self._n_pending:
                self._promote_delayed()
                self._dispatch_pooled()
                task = self._pop_ready()
                if task is not None:
                    self._run_inline(task)
                elif self._inflight:
                    done, _ = wait(
                        self._inflight,
                        timeout=self._wait_timeout(),
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in done:
                        self._finish_pooled(fut)
                    self._expire_timeouts()
                elif self._delayed:
                    # nothing runnable until the earliest backoff matures
                    time.sleep(
                        max(0.0, self._delayed[0][0] - time.monotonic())
                    )
                elif self._ready:
                    # pooled tasks parked while the pool respawns; each
                    # failed (re)spawn charges the budget, so this loops
                    # at most max_pool_respawns times before the tasks
                    # degrade to inline execution
                    continue
                else:  # pragma: no cover - defensive: bookkeeping drift
                    break
        finally:
            self.sched_wall_s += time.perf_counter() - t0

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- metrics ---------------------------------------------------------------

    def overlap_s(self, kind_a: str = "offline", kind_b: str = "online") -> float:
        """Seconds during which both kinds had work executing."""

        def merged(kind: str) -> list[tuple[float, float]]:
            spans = sorted(
                (s, e) for k, s, e in self.intervals if k == kind and e > s
            )
            out: list[tuple[float, float]] = []
            for s, e in spans:
                if out and s <= out[-1][1]:
                    out[-1] = (out[-1][0], max(out[-1][1], e))
                else:
                    out.append((s, e))
            return out

        a, b = merged(kind_a), merged(kind_b)
        total, i, j = 0.0, 0, 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def stage_concurrency(self) -> dict[str, float]:
        """Per-stage busy-time / span-time — 1.0 means fully serialized.

        A stage whose executions overlap across designs (busy seconds
        exceeding its first-start-to-last-end span would be impossible;
        instead *campaign-level* concurrency shows up as span ≪ sum of a
        serial schedule) is reported as busy/span of the union timeline.
        """
        out: dict[str, float] = {}
        for stage, spans in sorted(self.stage_spans.items()):
            busy = sum(e - s for s, e in spans)
            lo = min(s for s, _ in spans)
            hi = max(e for _, e in spans)
            out[stage] = round(busy / (hi - lo), 3) if hi > lo else 1.0
        return out

    # -- internals -------------------------------------------------------------

    def _acquire_pool(self):
        if self._pool is None and not self._pool_dead:
            if self._executor_factory is None:
                self.pool_error = RuntimeError("no executor factory")
                self._pool_dead = True
            else:
                try:
                    self._pool = self._executor_factory(self.pool_size)
                except POOL_ERRORS as exc:
                    self._respawn_pool(exc, charge=True)
        return self._pool

    def _respawn_pool(self, exc: BaseException, *, charge: bool) -> None:
        """Tear down the pool after a failure and recover its in-flight work.

        Futures that already finished successfully are *salvaged* — their
        results are delivered normally, so work (and the store puts its
        callbacks perform) is never redone.  Everything else is
        re-enqueued for the next pool, uncharged: crash victims are not
        at fault.  ``charge`` spends one unit of the respawn budget
        (crashes); timeout-driven teardowns pass ``charge=False`` — they
        are bounded by per-task retry budgets instead.
        """
        self.pool_error = exc
        pool, self._pool = self._pool, None
        if pool is not None:
            # ProcessPoolExecutor cannot cancel a *running* task; the only
            # way to reclaim a hung or poisoned worker is to kill the lot.
            try:
                for proc in list(
                    (getattr(pool, "_processes", None) or {}).values()
                ):
                    proc.kill()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001
                pass
        self.pool_respawns += 1
        if charge:
            self._respawns_charged += 1
            if self._respawns_charged > self.max_pool_respawns:
                self._pool_dead = True
        salvaged: dict[Future, ScheduledTask] = {}
        for fut, task in self._inflight.items():
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                salvaged[fut] = task
                continue
            if not task.cancelled:
                task.attempts = max(0, task.attempts - 1)
                self.n_reenqueued += 1
                self._ready.append(task)
        self._inflight = salvaged

    def _dispatch_pooled(self) -> None:
        if self._pool_dead or not any(t.pooled for t in self._ready):
            return
        pending, self._ready = self._ready, deque()
        while pending:
            task = pending.popleft()
            if task.cancelled:
                continue
            if not task.pooled or self._pool_dead:
                self._ready.append(task)
                continue
            pool = self._acquire_pool()
            if pool is None:
                self._ready.append(task)
                continue
            task.attempts += 1
            if task.timeout_s is not None:
                task._deadline = time.monotonic() + task.timeout_s
            try:
                fut = pool.submit(
                    _timed_call, task.worker_fn, task._materialize(), task.label
                )
            except POOL_ERRORS as exc:
                task.attempts = max(0, task.attempts - 1)
                self._respawn_pool(exc, charge=True)
                self._ready.append(task)
                continue
            self._inflight[fut] = task
        # crash victims _respawn_pool re-enqueued onto self._ready during
        # the loop are picked up by the next dispatch pass

    def _pop_ready(self) -> ScheduledTask | None:
        for _ in range(len(self._ready)):
            task = self._ready.popleft()
            if task.cancelled:
                continue
            if task.pooled and not self._pool_dead:
                # parked for pool (re)dispatch — inlining it here would
                # defeat the respawn budget and serialize the campaign
                self._ready.append(task)
                continue
            return task
        return None

    def _promote_delayed(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, task = heappop(self._delayed)
            if not task.cancelled:
                self._ready.append(task)

    def _wait_timeout(self) -> float | None:
        """Soonest in-flight deadline as a ``wait()`` timeout (None = block)."""
        deadlines = [
            t._deadline
            for t in self._inflight.values()
            if t.timeout_s is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic()) + 1e-3

    def _expire_timeouts(self) -> None:
        now = time.monotonic()
        expired = [
            (fut, task)
            for fut, task in self._inflight.items()
            if task.timeout_s is not None
            and now >= task._deadline
            and not fut.done()
        ]
        if not expired:
            return
        respawn = False
        for fut, task in expired:
            del self._inflight[fut]
            if not fut.cancel():
                # already running on a worker — only a pool teardown can
                # actually stop it (see _respawn_pool)
                respawn = True
            self.n_timeouts += 1
            if not task.cancelled:
                self._retry_or_fail(
                    task,
                    f"timeout: {task.label!r} exceeded "
                    f"{task.timeout_s}s (attempt {task.attempts})",
                )
        if respawn:
            self._respawn_pool(TimeoutError("pooled task timeout"), charge=False)

    def _retry_or_fail(self, task: ScheduledTask, msg: str) -> None:
        if task.attempts <= task.max_retries:
            self.n_retries += 1
            delay = retry_delay(
                task.key or task.label, task.attempts, self.retry_backoff_s
            )
            heappush(
                self._delayed,
                (time.monotonic() + delay, next(self._seq), task),
            )
        else:
            self._fail(task, msg)

    def _fail(self, task: ScheduledTask, msg: str) -> None:
        now = time.perf_counter()
        if task.on_fail is not None:
            task.on_fail(task, msg)
            task.on_done = None  # reported; don't double-deliver
        self._complete(task, ("err", msg), now, now)

    def _run_inline(self, task: ScheduledTask) -> None:
        if task.pooled:
            # a pooled task running here means the pool broke under it
            self.inline_fallbacks.add(task.kind)
        if task.inline_fn is not None:
            fn = task.inline_fn
        else:
            payload = task._materialize()
            fn = lambda: task.worker_fn(payload)  # noqa: E731
        t0 = time.perf_counter()
        out = fn()
        if task.cancelled:
            # aborted by its own (or a sibling's) callback mid-execution;
            # same contract as the pooled path: discard, no callback
            return
        self._complete(task, out, t0, time.perf_counter())

    def _finish_pooled(self, fut: Future) -> None:
        task = self._inflight.pop(fut, None)
        if task is None:
            # swept out by a _respawn_pool triggered earlier in this batch
            return
        try:
            out, t0, t1 = fut.result()
        except POOL_ERRORS as exc:
            # The pool died under this future.  Respawn (charged) and put
            # the triggering task back too — it is usually a victim, not
            # the culprit, and if it *does* reliably break its pool the
            # respawn budget caps the damage at inline degradation.
            self._respawn_pool(exc, charge=True)
            if not task.cancelled:
                task.attempts = max(0, task.attempts - 1)
                self.n_reenqueued += 1
                self._ready.append(task)
            return
        except Exception as exc:  # noqa: BLE001 - supervised task failure
            if not task.cancelled:
                self._retry_or_fail(task, f"{type(exc).__name__}: {exc}")
            return
        if task.cancelled:
            return
        self._complete(task, out, t0, t1)

    def _complete(
        self, task: ScheduledTask, out: Any, t0: float, t1: float
    ) -> None:
        task.result, task.start_s, task.end_s = out, t0, t1
        task.done = True
        self._n_pending -= 1
        self.intervals.append((task.kind, t0, t1))
        if task.on_done is not None:
            task.on_done(task, out)
        for child in task._children:
            if child.cancelled or child.done:
                continue
            child._n_deps -= 1
            if child._n_deps == 0:
                self._ready.append(child)


# -- compile-as-dataflow -------------------------------------------------------


def _segment_worker(payload, intra=None):
    """Run one fused chain of stage bodies (pool- or parent-side).

    ``intra`` (an :class:`~repro.util.intra.IntraPool`) is handed to every
    stage body via :attr:`StageContext.intra` so intra-parallel stages can
    fan their move/route waves onto the campaign's shared pool.  It is
    only ever non-``None`` when the segment runs in the parent — a worker
    process must not (and cannot) drive the pool it runs on.

    Returns ``("ok", values, times, spans)`` with absolute
    ``perf_counter`` spans per stage, or ``("err", message)`` — stage
    exceptions are marshalled, not raised, so a worker failure surfaces
    as a normal completion the parent can route to the owning design.
    """
    graph, config, params, names, values = payload
    values = dict(values)
    out: dict[str, Any] = {}
    times: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}
    try:
        for name in names:
            stage = graph[name]
            ctx = StageContext(
                config=config, params=params, artifacts=values, intra=intra
            )
            s0 = time.perf_counter()
            value = stage.fn(ctx)
            s1 = time.perf_counter()
            values[name] = out[name] = value
            times[name] = s1 - s0
            spans[name] = (s0, s1)
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        return ("err", f"{type(exc).__name__}: {exc}")
    return ("ok", out, times, spans)


def submit_compile(
    sched: DataflowScheduler,
    graph: StageGraph,
    net,
    plan: StagePlan,
    *,
    store=None,
    pooled: bool = False,
    kind: str = "offline",
    label: str = "",
    intra=None,
    intra_stages: Sequence[str] = (
        "initial-map",
        "tcon-map",
        "place",
        "route",
    ),
    timeout_s: float | None = None,
    max_retries: int = 0,
    on_complete: Callable[[CompileResult | None, str | None], None],
) -> list[ScheduledTask]:
    """Register one design's compile as dataflow tasks on ``sched``.

    Probes the store for every planned stage **now**, in the parent, in
    topological order — exactly the serial executor's lookup sequence, so
    hit/miss statistics are identical by construction.  Missing stages
    are fused into segments (:meth:`StageGraph.segments`) and submitted
    as tasks wired by their true dependencies; segment completions store
    built artifacts (again parent-side, same keys, same pass-through-ref
    aliasing) and, when the last segment lands, ``on_complete(result,
    None)`` fires.  A failing segment cancels only the segments
    *downstream of it* (independent siblings of the same design still
    complete and store their artifacts) and fires
    ``on_complete(None, message)`` once.

    ``intra`` (an :class:`~repro.util.intra.IntraPool`) declares
    *intra-design* parallelism: any segment touching a stage in
    ``intra_stages`` is forced to run **in the parent** (never pooled) so
    its stage bodies can fan sub-task waves onto the campaign's one
    shared worker pool through ``intra`` — intra-parallel segments do not
    nest a second pool, they *are* the parent feeding the existing one.
    Other segments keep the caller's ``pooled`` setting.

    ``timeout_s`` and ``max_retries`` are applied to every created
    segment task (supervision: a hung or failing segment is retried with
    deterministic backoff, then reported through the normal error path).

    A fully-warm design never creates a task: ``on_complete`` fires
    synchronously before this returns.  Returns the created tasks.
    """
    values: dict[str, Any] = {SOURCE: net}
    artifacts: dict[str, Artifact] = {}
    totals: dict[str, float] = {}
    for name, (key, value) in plan.preset.items():
        values[name] = value
        artifacts[name] = Artifact(name, key, value, hit=True)
    missing: list[str] = []
    for stage in plan.selected:
        key = plan.keys[stage.name]
        found = (
            store.get_if_present(stage.name, key, group=plan.group)
            if store is not None
            else None
        )
        if found is not None:
            values[stage.name] = found.value
            artifacts[stage.name] = Artifact(stage.name, key, found.value, hit=True)
        else:
            missing.append(stage.name)

    def finish() -> None:
        result = CompileResult(
            config=plan.config,
            source_key=plan.source_key,
            params=dict(plan.params),
            artifacts=artifacts,
            timers=PhaseTimer(
                totals=dict(totals), counts={k: 1 for k in totals}
            ),
        )
        on_complete(result, None)

    if not missing:
        finish()
        return []

    missing_set = set(missing)
    state = {"left": 0, "failed": False}
    owner: dict[str, ScheduledTask] = {}  # stage name -> owning task
    created: list[ScheduledTask] = []
    for seg_names in graph.segments(missing):
        seg_set = set(seg_names)
        ext = sorted(
            {
                d
                for n in seg_names
                for d in graph[n].inputs
                if d not in seg_set
            }
        )
        dep_tasks = sorted(
            {id(owner[d]): owner[d] for d in ext if d in missing_set}.values(),
            key=lambda t: t.label,
        )

        def payload_fn(names=tuple(seg_names), ext=tuple(ext)):
            return (
                graph,
                plan.config,
                plan.params,
                names,
                {d: values[d] for d in ext},
            )

        def seg_done(task, outcome, names=tuple(seg_names)):
            if outcome[0] == "err":
                already = state["failed"]
                state["failed"] = True
                # cancel only the segments downstream of the failure;
                # independent sibling segments keep running (their
                # artifacts are valid and land in the store as usual)
                stack, seen = [task], set()
                while stack:
                    for child in stack.pop()._children:
                        if id(child) not in seen:
                            seen.add(id(child))
                            sched.cancel(child)
                            stack.append(child)
                if not already:
                    on_complete(None, outcome[1])
                return
            _tag, out, times, spans = outcome
            values.update(out)
            for name in names:
                key = plan.keys[name]
                value = out[name]
                if store is not None:
                    store.put(
                        name,
                        key,
                        value,
                        group=plan.group,
                        ref=graph._passthrough_ref(
                            graph[name], value, values, plan.keys
                        ),
                    )
                artifacts[name] = Artifact(name, key, value, hit=False)
                totals[name] = times[name]
                sched.stage_spans.setdefault(name, []).append(spans[name])
            state["left"] -= 1
            if state["left"] == 0 and not state["failed"]:
                finish()

        seg_intra = intra is not None and any(
            n in seg_set for n in intra_stages
        )
        task = ScheduledTask(
            kind=kind,
            label=f"{label or plan.group or 'design'}:{seg_names[0]}",
            # intra-parallel segments run parent-side and drive the shared
            # pool themselves; shipping them to a worker would strand the
            # (unpicklable) pool handle and serialize the waves
            worker_fn=(
                (lambda payload, _i=intra: _segment_worker(payload, intra=_i))
                if seg_intra
                else _segment_worker
            ),
            payload_fn=payload_fn,
            pooled=pooled and not seg_intra,
            on_done=seg_done,
            # seg_done already speaks the ("err", message) protocol, so
            # supervision failures (timeout, retries exhausted) flow
            # through the same downstream-cancel path as stage exceptions
            timeout_s=timeout_s,
            max_retries=max_retries,
            key=f"{plan.group or label or 'design'}:{seg_names[0]}",
        )
        state["left"] += 1
        created.append(task)
        for n in seg_names:
            owner[n] = task
        sched.add(task, deps=dep_tasks)
    return created
