"""Stage-graph compilation pipeline with per-stage content-addressed caching.

The compile flow as an explicit DAG (:data:`DEBUG_FLOW_GRAPH`): each phase
— validate, cleanup, initial-map, signal-parameterisation, tcon-map,
pack, place, route, bitgen — is a declared :class:`Stage` with typed
input/output artifacts and a content-addressed key derived from the
config fields it reads plus its upstream artifacts' keys.  Running the
graph against an :class:`ArtifactStore` makes recompilation incremental:
a warm single-knob change rebuilds only the invalidated suffix of the
graph, a cold design runs everything — the architectural form of the
paper's "change the instrumentation without recompiling the design".

Quick start::

    from repro.pipeline import ArtifactStore, assemble_offline, compile_design

    store = ArtifactStore(cache_dir=".repro-cache")
    offline = assemble_offline(compile_design(net, config, store=store))
    # ... change only fold_polarity: everything up to the TCON mapping hits
    offline2 = assemble_offline(compile_design(net, config2, store=store))
    print(store.stats.as_dict()["per_stage"])

``run_generic_stage`` / ``run_physical_stage`` in :mod:`repro.core.flow`
are thin façades over this graph; the campaign layer threads an
:class:`ArtifactStore` through whole debug campaigns.
"""

from repro.pipeline.graph import (
    SOURCE,
    Artifact,
    CompileResult,
    Stage,
    StageContext,
    StageGraph,
    StagePlan,
    canonical_param,
    source_key,
)
from repro.pipeline.scheduler import (
    DataflowScheduler,
    ScheduledTask,
    submit_compile,
)
from repro.pipeline.stages import (
    DEBUG_FLOW_GRAPH,
    GENERIC_STAGES,
    PHYSICAL_STAGES,
    assemble_offline,
    assemble_physical,
    compile_design,
    run_physical_stages,
)
from repro.pipeline.store import ArtifactStore, StageStats, StoreStats

# The online phase persists compiled simulation programs
# (:mod:`repro.netlist.compiled`) in the same store, under a pseudo-stage
# alongside the offline pipeline's entries — re-exported here so store
# administrators can enumerate every stage name the system writes.
from repro.netlist.compiled import COMPILED_SIM_STAGE

__all__ = [
    "COMPILED_SIM_STAGE",
    "SOURCE",
    "Artifact",
    "CompileResult",
    "Stage",
    "StageContext",
    "StageGraph",
    "StagePlan",
    "DataflowScheduler",
    "ScheduledTask",
    "submit_compile",
    "source_key",
    "canonical_param",
    "DEBUG_FLOW_GRAPH",
    "GENERIC_STAGES",
    "PHYSICAL_STAGES",
    "assemble_offline",
    "assemble_physical",
    "compile_design",
    "run_physical_stages",
    "ArtifactStore",
    "StageStats",
    "StoreStats",
]
