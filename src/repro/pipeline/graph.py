"""The stage-graph compiler core: declared stages, derived keys, one runner.

The paper's incremental-recompilation advantage — change the
instrumentation, keep the compile — becomes an architectural property
here: the flow is an explicit DAG of :class:`Stage` declarations, each
producing exactly one artifact whose **content-addressed key** is derived
from (a) the stage's own declaration (name + version), (b) the subset of
:class:`~repro.core.flow.DebugFlowConfig` fields the stage actually reads,
(c) any extra per-stage parameters (tap overrides, placement seed, ...)
and (d) the keys of its upstream artifacts.  A knob change therefore
invalidates exactly the stages downstream of the knob and nothing
upstream; running the same graph against a
:class:`~repro.pipeline.store.ArtifactStore` turns that key algebra into
cache hits.

Keys chain derivations rather than hashing intermediate artifacts: the
only content ever serialized for hashing is the source network (its
canonical BLIF, names included — a renamed-but-structurally-equal design
conservatively misses).  Key computation is therefore cheap enough to run
speculatively (see :func:`StageGraph.stage_keys` and
:mod:`repro.baselines.incremental`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.flow import FLOW_CACHE_VERSION, DebugFlowConfig
from repro.errors import DebugFlowError
from repro.netlist.blif import write_blif
from repro.netlist.network import LogicNetwork
from repro.util.timing import PhaseTimer

__all__ = [
    "SOURCE",
    "Stage",
    "StageContext",
    "Artifact",
    "CompileResult",
    "StagePlan",
    "StageGraph",
    "source_key",
    "canonical_param",
]

#: Name of the pseudo-artifact holding the input network.  Every stage
#: graph is rooted at it; its key hashes the canonical BLIF.
SOURCE = "source"


@dataclass
class StageContext:
    """What a stage's ``fn`` sees: config, params and upstream artifacts."""

    config: DebugFlowConfig
    params: Mapping[str, Any]
    artifacts: dict[str, Any]
    intra: Any = None
    """Optional :class:`~repro.util.intra.IntraPool` for intra-stage
    subtask parallelism.  Deliberately **not** part of any stage key:
    stage bodies that consume it must produce results independent of its
    worker count (region-parallel placement is keyed by the
    ``place_regions`` *param* instead; round-parallel routing is
    byte-identical to serial by construction)."""

    def __getitem__(self, name: str) -> Any:
        return self.artifacts[name]


@dataclass(frozen=True)
class Stage:
    """One declared phase of the compile flow.

    Parameters
    ----------
    name:
        Unique stage name; also the name of the single artifact it emits.
    fn:
        ``fn(ctx) -> artifact value``.  Must be a pure function of the
        context (same inputs ⇒ equivalent artifact) — that is what makes
        the derived key a safe cache address.
    inputs:
        Upstream artifact names consumed (stage names, or :data:`SOURCE`).
    config_fields:
        The :class:`DebugFlowConfig` fields this stage reads.  Only these
        are folded into the key, so knobs a stage ignores can change
        without invalidating it.
    param_fields:
        Extra key discriminators looked up in the run's ``params`` mapping
        (e.g. ``"taps"`` for an explicit tap-selection override,
        ``"seed"`` for placement).
    version:
        Bump when the stage's semantics change, so persisted artifacts
        from the older implementation become unreachable.
    """

    name: str
    fn: Callable[[StageContext], Any]
    inputs: tuple[str, ...] = ()
    config_fields: tuple[str, ...] = ()
    param_fields: tuple[str, ...] = ()
    version: int = 1


@dataclass
class Artifact:
    """One stage output: the value plus its content-addressed key."""

    stage: str
    key: str
    value: Any
    hit: bool = False
    """Whether the value was served by the store rather than rebuilt."""


@dataclass
class CompileResult:
    """Everything one :meth:`StageGraph.run` produced."""

    config: DebugFlowConfig
    source_key: str
    """Content key of the input network (empty when no executed stage
    rooted in it — e.g. a physical-only run over preset artifacts)."""
    params: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Artifact] = field(default_factory=dict)
    timers: PhaseTimer = field(default_factory=PhaseTimer)

    def value(self, stage: str) -> Any:
        return self.artifacts[stage].value

    def keys(self) -> dict[str, str]:
        return {name: a.key for name, a in self.artifacts.items()}

    def hits(self) -> dict[str, bool]:
        return {name: a.hit for name, a in self.artifacts.items()}

    @property
    def full_hit(self) -> bool:
        """True when every stage was served from the store."""
        return all(a.hit for a in self.artifacts.values())


@dataclass
class StagePlan:
    """The execution-independent half of a :meth:`StageGraph.run`.

    Which stages will run, under which derived content keys, against which
    store lookup group — everything the dataflow scheduler needs to probe
    the store, partition the remaining work into segments and ship those
    segments to workers, without executing anything.  Produced by
    :meth:`StageGraph.plan`; consumed by :meth:`StageGraph.execute` (the
    serial path) and :func:`repro.pipeline.scheduler.submit_compile` (the
    overlapped path) so both derive byte-identical keys.
    """

    config: DebugFlowConfig
    params: dict[str, Any]
    source_key: str
    group: str | None
    selected: tuple[Stage, ...]
    """Stages to execute, topologically ordered, preset entries excluded."""
    keys: dict[str, str]
    """Derived content key per artifact name (selected + preset)."""
    preset: dict[str, tuple[str, Any]]


def canonical_param(value: Any) -> Any:
    """Reduce a stage parameter to a stably-``repr``-able form for hashing.

    Sequences (including numpy arrays, whose ``repr`` elides the middle of
    large arrays — a silent key-collision hazard) become plain tuples of
    their full content; mappings become sorted item tuples.
    """
    if hasattr(value, "tolist"):
        value = value.tolist()
    if isinstance(value, (list, tuple)):
        return tuple(canonical_param(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, canonical_param(v)) for k, v in value.items()))
    return value


def source_key(net: LogicNetwork) -> str:
    """Content key of the input network (canonical BLIF, names included)."""
    h = hashlib.sha256()
    h.update(f"repro-pipeline-source-v{FLOW_CACHE_VERSION}\n".encode())
    h.update(write_blif(net).encode())
    return h.hexdigest()


class StageGraph:
    """An ordered DAG of stages with derived per-stage cache keys.

    Stages are given in topological order (each stage's inputs must be
    :data:`SOURCE` or an earlier stage) — the natural shape of a compile
    flow, checked at construction.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        names: set[str] = set()
        for stage in stages:
            if stage.name in names or stage.name == SOURCE:
                raise DebugFlowError(f"duplicate stage name {stage.name!r}")
            for dep in stage.inputs:
                if dep != SOURCE and dep not in names:
                    raise DebugFlowError(
                        f"stage {stage.name!r} depends on {dep!r}, which is "
                        "not an earlier stage"
                    )
            names.add(stage.name)
        self.stages: tuple[Stage, ...] = tuple(stages)
        self._by_name = {s.name: s for s in self.stages}

    def __iter__(self):
        return iter(self.stages)

    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    def __getitem__(self, name: str) -> Stage:
        return self._by_name[name]

    def prefix(
        self, names: Sequence[str], *, have: Sequence[str] = ()
    ) -> list[Stage]:
        """The requested stages, validated to be dependency-closed.

        ``have`` names artifacts available from elsewhere (preset entries),
        which satisfy dependencies without being selected.
        """
        want = set(names)
        unknown = want - set(self._by_name)
        if unknown:
            raise DebugFlowError(f"unknown stage(s): {sorted(unknown)}")
        selected = [s for s in self.stages if s.name in want]
        have = {SOURCE, *have}
        for stage in selected:
            missing = [d for d in stage.inputs if d not in have]
            if missing:
                raise DebugFlowError(
                    f"stage {stage.name!r} requires {missing} which are not "
                    "in the selected stage set"
                )
            have.add(stage.name)
        return selected

    def downstream_of(self, name: str) -> list[str]:
        """``name`` plus every stage that (transitively) consumes it."""
        dirty = {name}
        for stage in self.stages:
            if stage.name in dirty:
                continue
            if any(d in dirty for d in stage.inputs):
                dirty.add(stage.name)
        return [s.name for s in self.stages if s.name in dirty]

    # -- key derivation --------------------------------------------------------

    def _stage_key(
        self,
        stage: Stage,
        config: DebugFlowConfig,
        params: Mapping[str, Any],
        keys: Mapping[str, str],
    ) -> str:
        h = hashlib.sha256()
        h.update(
            f"repro-stage/{stage.name}/v{stage.version}/"
            f"flow-v{FLOW_CACHE_VERSION}\n".encode()
        )
        for f in stage.config_fields:
            h.update(f"config:{f}={getattr(config, f)!r}\n".encode())
        for f in stage.param_fields:
            h.update(f"param:{f}={canonical_param(params.get(f))!r}\n".encode())
        for dep in stage.inputs:
            h.update(f"dep:{dep}={keys[dep]}\n".encode())
        return h.hexdigest()

    def stage_keys(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        params: Mapping[str, Any] | None = None,
        stages: Sequence[str] | None = None,
    ) -> dict[str, str]:
        """Every selected stage's content key, without running anything.

        This is the cheap, speculative half of the cache: the only content
        hashed is the source BLIF, so callers (invalidation analysis, the
        conventional-recompile baseline, tests) can ask "what *would* a
        config change rebuild?" in microseconds.
        """
        config = config or DebugFlowConfig()
        params = params or {}
        selected = (
            self.prefix(stages) if stages is not None else list(self.stages)
        )
        keys: dict[str, str] = {SOURCE: source_key(net)}
        for stage in selected:
            keys[stage.name] = self._stage_key(stage, config, params, keys)
        del keys[SOURCE]
        return keys

    # -- planning --------------------------------------------------------------

    def plan(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        params: Mapping[str, Any] | None = None,
        stages: Sequence[str] | None = None,
        preset: Mapping[str, tuple[str, Any]] | None = None,
    ) -> StagePlan:
        """Derive keys, selection and lookup group without running anything.

        The pure key-algebra half of :meth:`run`, factored out so the
        dataflow scheduler and the serial executor share one derivation —
        identical inputs yield identical keys by construction, which is
        what makes scheduled and serial store statistics comparable.
        """
        config = config or DebugFlowConfig()
        params = dict(params or {})
        preset = dict(preset or {})
        if stages is not None:
            selected = self.prefix(stages, have=tuple(preset))
        else:
            selected = list(self.stages)
        # hash the source BLIF only when a stage to run actually roots in
        # it — a physical-only run over preset artifacts skips the
        # O(design) serialization entirely
        needs_source = any(
            SOURCE in s.inputs for s in selected if s.name not in preset
        )
        src_key = source_key(net) if needs_source else ""
        keys: dict[str, str] = {SOURCE: src_key}
        for name, (key, _value) in preset.items():
            keys[name] = key
        selected = tuple(s for s in selected if s.name not in preset)
        # the lookup group identifies the design behind this run for the
        # store's invalidation accounting: the source content key, or —
        # on preset-rooted (physical-only) runs — the preset artifact key
        group = src_key or None
        if group is None and preset:
            group = (preset.get("tcon-map") or next(iter(preset.values())))[0]
        for stage in selected:
            keys[stage.name] = self._stage_key(stage, config, params, keys)
        del keys[SOURCE]
        return StagePlan(
            config=config,
            params=params,
            source_key=src_key,
            group=group,
            selected=selected,
            keys=keys,
            preset=preset,
        )

    def segments(self, names: Sequence[str]) -> list[tuple[str, ...]]:
        """Partition stages into maximal fusable chains for the scheduler.

        ``names`` is any subset of this graph's stages (dependencies
        outside the subset are treated as externally supplied — e.g.
        store hits).  Returns topologically-ordered segments such that

        * every segment is a chain the scheduler can run as **one** task
          (no concurrency is lost: a stage is fused into its producer's
          segment only when every *other* consumer of that segment
          transitively depends on the stage, so nothing outside could
          have started earlier anyway), and
        * segments only depend on earlier segments.

        For the full debug flow this yields the linear generic prefix
        through ``pack`` as one segment, ``rr-graph`` and ``place`` as two
        independent segments (the intra-design concurrency), and
        ``route``+``bitgen`` fused at the join.
        """
        want = set(names)
        selected = [s for s in self.stages if s.name in want]
        consumers: dict[str, list[str]] = {}
        depends: dict[str, set[str]] = {}
        for s in selected:
            deps = [d for d in s.inputs if d in want]
            closure = set(deps)
            for d in deps:
                consumers.setdefault(d, []).append(s.name)
                closure |= depends[d]
            depends[s.name] = closure
        seg_of: dict[str, int] = {}
        segs: list[list[str]] = []
        anc: list[set[int]] = []  # transitive segment ancestors
        for s in selected:
            dep_segs = {seg_of[d] for d in s.inputs if d in want}
            target = None
            for cand in dep_segs:
                # candidate must dominate the other dep segments ...
                if not all(d == cand or d in anc[cand] for d in dep_segs):
                    continue
                # ... and fusing must not delay any other consumer of it
                blocked = any(
                    s.name not in depends.get(c, ())
                    for m in segs[cand]
                    for c in consumers.get(m, ())
                    if c != s.name and seg_of.get(c) != cand
                )
                if not blocked:
                    target = cand
                    break
            new_anc = set().union(*(anc[d] for d in dep_segs)) if dep_segs else set()
            if target is None:
                seg_of[s.name] = len(segs)
                segs.append([s.name])
                anc.append(dep_segs | new_anc)
            else:
                seg_of[s.name] = target
                segs[target].append(s.name)
                anc[target] |= (dep_segs - {target}) | new_anc
        return [tuple(seg) for seg in segs]

    # -- execution -------------------------------------------------------------

    def run(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        store=None,
        params: Mapping[str, Any] | None = None,
        stages: Sequence[str] | None = None,
        preset: Mapping[str, tuple[str, Any]] | None = None,
        intra=None,
    ) -> CompileResult:
        """Execute the graph (or a dependency-closed subset of it).

        Parameters
        ----------
        store:
            Optional :class:`~repro.pipeline.store.ArtifactStore`.  Each
            stage is looked up under its derived key before running; built
            artifacts are stored back.  ``None`` runs everything.
        params:
            Per-run extra parameters (see :attr:`Stage.param_fields`).
        stages:
            Stage names to execute; defaults to the whole graph.
        preset:
            ``{artifact name: (key, value)}`` entries injected as
            already-available upstream artifacts — how the
            :func:`~repro.core.flow.run_physical_stage` façade feeds an
            existing offline artifact into the physical sub-graph.
        intra:
            Optional :class:`~repro.util.intra.IntraPool` handed to stage
            bodies via :attr:`StageContext.intra` (never keyed).
        """
        return self.execute(
            self.plan(net, config, params=params, stages=stages, preset=preset),
            net,
            store=store,
            intra=intra,
        )

    def execute(
        self, plan: StagePlan, net: LogicNetwork, *, store=None, intra=None
    ) -> CompileResult:
        """Serially execute a :meth:`plan` — the barrier-free reference path.

        One stage at a time in topological order: probe the store, build
        on a miss, store the result.  The dataflow scheduler reproduces
        exactly this store interaction (same keys, same probe order, same
        puts), just spread over segment tasks.
        """
        result = CompileResult(
            config=plan.config, source_key=plan.source_key, params=dict(plan.params)
        )
        values: dict[str, Any] = {SOURCE: net}
        for name, (key, value) in plan.preset.items():
            values[name] = value
            result.artifacts[name] = Artifact(name, key, value, hit=True)
        for stage in plan.selected:
            key = plan.keys[stage.name]
            value = None
            hit = False
            if store is not None:
                found = store.get(stage.name, key, group=plan.group)
                if found is not None:
                    value, hit = found.value, True
            if not hit:
                ctx = StageContext(
                    config=plan.config,
                    params=plan.params,
                    artifacts=values,
                    intra=intra,
                )
                with result.timers.phase(stage.name):
                    value = stage.fn(ctx)
                if store is not None:
                    store.put(
                        stage.name,
                        key,
                        value,
                        group=plan.group,
                        ref=self._passthrough_ref(stage, value, values, plan.keys),
                    )
            values[stage.name] = value
            result.artifacts[stage.name] = Artifact(stage.name, key, value, hit)
        return result

    @staticmethod
    def _passthrough_ref(
        stage: Stage,
        value: Any,
        values: Mapping[str, Any],
        keys: Mapping[str, str],
    ):
        """An alias target when ``stage`` passed an input through untouched.

        A stage returning one of its upstream artifacts *by identity*
        (``cleanup`` with ``run_cleanup=False``) holds no content of its
        own — persisting a :class:`~repro.pipeline.store.StoreRef` to the
        upstream entry instead of a second pickle halves the disk cost of
        that configuration.
        """
        from repro.pipeline.store import StoreRef

        for dep in stage.inputs:
            if dep != SOURCE and values.get(dep) is value:
                return StoreRef(dep, keys[dep])
        return None
