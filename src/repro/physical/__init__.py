"""Physical design orchestration: TPaR + bitstream generation.

:func:`build_physical_stage` takes an offline-stage artifact (or any
mapping result) through packing, placement, routing and configuration-bit
generation, returning a :class:`PhysicalStage` with every intermediate
plus phase timings — the data behind the compile-time experiment
(§V-C.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.arch.config_cells import ConfigLayout, build_config_layout
from repro.arch.device import DeviceGrid
from repro.arch.routing_graph import RRGraph, build_rr_graph
from repro.arch.spec import ArchSpec
from repro.arch.virtex5 import VIRTEX5_LIKE
from repro.bitgen.genbit import GeneratedBitstream, generate_bitstream
from repro.core.muxnet import InstrumentedDesign
from repro.mapping.result import MappingResult
from repro.pack.cluster import build_atoms
from repro.pack.tpack import PackedDesign, pack_design
from repro.place.tplace import Placement, place_design
from repro.route.troute import RoutingResult, route_design
from repro.util.timing import PhaseTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.flow import OfflineStage

__all__ = [
    "PhysicalStage",
    "build_physical_stage",
    "physical_from_mapping",
    "grid_for_packed",
    "pack_stage",
    "place_stage",
    "route_stage",
    "rr_graph_stage",
    "bitgen_stage",
]


@dataclass
class PhysicalStage:
    """All physical-design artifacts of one flow run."""

    arch: ArchSpec
    packed: PackedDesign
    grid: DeviceGrid
    placement: Placement
    rr: RRGraph
    routing: RoutingResult
    layout: ConfigLayout
    bitstream: GeneratedBitstream
    timers: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def n_clbs_used(self) -> int:
        return self.packed.n_clusters

    @property
    def wires_used(self) -> int:
        return self.routing.total_wires_used()

    def summary(self) -> dict[str, float]:
        s = self.routing.summary()
        s.update(
            {
                "clbs": float(self.n_clbs_used),
                "bles": float(self.packed.n_bles),
                "placement_hpwl": self.placement.cost,
                "config_bits": float(self.layout.n_bits),
                "tunable_bits": float(self.bitstream.pconf.n_tunable),
                "pnr_runtime_s": self.timers.total(),
            }
        )
        return s


def pack_stage(
    mapping: MappingResult,
    design: InstrumentedDesign | None,
    arch: ArchSpec,
) -> PackedDesign:
    """The ``pack`` stage body: atoms + clustering."""
    return pack_design(build_atoms(mapping, design), arch)


def grid_for_packed(
    packed: PackedDesign, *, utilization: float = 0.7
) -> DeviceGrid:
    """The device grid a packed design places onto.

    A pure function of the pack output — exactly the grid
    :func:`repro.place.tplace.place_design` derives internally when no
    grid is supplied.  Exposed so the ``rr-graph`` pipeline stage can
    build the routing-resource graph from ``pack`` alone, concurrently
    with placement (the two produce value-identical grids).
    """
    physical = packed.physical
    n_pads = len(physical.pi_signals) + len(physical.po_signals)
    return DeviceGrid.for_design(
        packed.arch,
        n_clbs=max(1, packed.n_clusters),
        n_pads=n_pads,
        utilization=utilization,
    )


def place_stage(
    packed: PackedDesign,
    grid: DeviceGrid | None = None,
    *,
    seed: int = 2016,
    effort: float = 4.0,
    regions: int = 0,
    intra=None,
) -> Placement:
    """The ``place`` stage body: simulated-annealing placement.

    ``regions > 1`` selects the region-parallel annealer
    (:func:`repro.place.parallel.place_design_regions`) — a *different*
    (cache-keyed) algorithm whose result depends on ``regions`` but not
    on the worker count of ``intra``, the optional
    :class:`~repro.util.intra.IntraPool` its per-region move batches fan
    out on.
    """
    if regions and regions > 1:
        from repro.place.parallel import place_design_regions

        return place_design_regions(
            packed, grid, seed=seed, effort=effort, regions=regions,
            intra=intra,
        )
    return place_design(packed, grid, seed=seed, effort=effort)


def rr_graph_stage(packed: PackedDesign) -> RRGraph:
    """The ``rr-graph`` stage body: device grid + routing-resource graph.

    Depends only on ``pack``, so the dataflow scheduler runs it in
    parallel with the (much longer) placement anneal of the same design.
    """
    return build_rr_graph(grid_for_packed(packed))


def route_stage(
    placement: Placement,
    rr: RRGraph | None = None,
    *,
    max_route_iterations: int = 40,
    intra=None,
) -> tuple[RRGraph, RoutingResult]:
    """The ``route`` stage body: PathFinder over the RR graph.

    ``rr`` is normally the ``rr-graph`` stage's artifact (built from the
    identical, pack-derived grid); when absent it is built here — the
    historical single-call path.

    ``intra`` (an :class:`~repro.util.intra.IntraPool` with more than one
    worker) switches to the round-parallel
    :class:`~repro.route.parallel.RoundPathFinder`, whose result is
    byte-identical to the serial router at any worker count — a pure
    execution detail, so it never enters the stage's cache key.
    """
    if rr is None:
        rr = build_rr_graph(placement.grid)
    rounds = intra is not None and getattr(intra, "workers", 1) > 1
    return rr, route_design(
        placement,
        rr,
        max_iterations=max_route_iterations,
        rounds=rounds,
        intra=intra,
    )


def bitgen_stage(
    packed: PackedDesign,
    placement: Placement,
    rr: RRGraph,
    routing: RoutingResult,
    design: InstrumentedDesign | None,
) -> tuple[ConfigLayout, GeneratedBitstream]:
    """The ``bitgen`` stage body: config layout + bitstream generation."""
    layout = build_config_layout(rr)
    return layout, generate_bitstream(packed, placement, routing, layout, design)


def physical_from_mapping(
    mapping: MappingResult,
    design: InstrumentedDesign | None = None,
    *,
    arch: ArchSpec | None = None,
    grid: DeviceGrid | None = None,
    seed: int = 2016,
    effort: float = 4.0,
    max_route_iterations: int = 40,
) -> PhysicalStage:
    """Pack, place, route and generate bits for any mapping result.

    This is the direct, uncached path (conventional-flow experiments, ad
    hoc mapping results); the same stage bodies run behind the stage graph
    of :mod:`repro.pipeline` for cached/incremental compilation.
    """
    arch = arch or VIRTEX5_LIKE
    timers = PhaseTimer()

    with timers.phase("pack"):
        packed = pack_stage(mapping, design, arch)
    with timers.phase("place"):
        placement = place_stage(packed, grid, seed=seed, effort=effort)
    with timers.phase("route"):
        rr, routing = route_stage(
            placement, max_route_iterations=max_route_iterations
        )
    with timers.phase("bitgen"):
        layout, bitstream = bitgen_stage(packed, placement, rr, routing, design)
    return PhysicalStage(
        arch=arch,
        packed=packed,
        grid=placement.grid,
        placement=placement,
        rr=rr,
        routing=routing,
        layout=layout,
        bitstream=bitstream,
        timers=timers,
    )


def build_physical_stage(offline: "OfflineStage", arch: ArchSpec | None = None) -> PhysicalStage:
    """Physical back-end for an offline-stage artifact (the proposed flow).

    A façade over the stage graph's physical sub-graph — see
    :func:`repro.pipeline.run_physical_stages`, which also accepts an
    artifact store for per-stage caching.
    """
    from repro.pipeline import run_physical_stages

    return run_physical_stages(offline, arch=arch)
