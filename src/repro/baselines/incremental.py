"""Incremental-recompilation accounting: stages invalidated per change.

The overlay-debug literature (Eslami et al.'s survey among it) frames the
cost of changing instrumentation as "how much of the compile do you pay
again?".  With the flow expressed as a stage graph
(:mod:`repro.pipeline`), that question becomes directly measurable
**without running anything**: diff the content-addressed stage keys of
the old and new configurations.

* The **parameterized** flow (this paper) invalidates only the stages
  whose read config fields — or upstream artifacts — changed; a pure
  online knob (``trace_depth``) invalidates nothing at all.
* The **conventional** baseline is the very same graph with caching
  disabled: any instrumentation change is a full recompile, i.e. every
  stage invalidated, every time.  One code path, two cost models — which
  is what makes the Table I/II-style comparisons honest.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping, Sequence

from repro.core.flow import DebugFlowConfig
from repro.netlist.network import LogicNetwork
from repro.pipeline import DEBUG_FLOW_GRAPH, GENERIC_STAGES, PHYSICAL_STAGES
from repro.util.tables import TextTable

__all__ = [
    "stages_invalidated",
    "conventional_stages_invalidated",
    "invalidation_table",
    "changed_fields",
]


def _selected(with_physical: bool) -> tuple[str, ...]:
    return GENERIC_STAGES + PHYSICAL_STAGES if with_physical else GENERIC_STAGES


def stages_invalidated(
    net: LogicNetwork,
    base: DebugFlowConfig,
    changed: DebugFlowConfig,
    *,
    with_physical: bool = False,
    base_params: Mapping[str, Any] | None = None,
    changed_params: Mapping[str, Any] | None = None,
) -> list[str]:
    """Stages the parameterized flow re-runs going from ``base`` to ``changed``.

    Pure key algebra — nothing is compiled.  ``*_params`` carry per-run
    stage parameters (e.g. a ``taps`` override entering at
    signal-parameterisation, a placement ``seed``).
    """
    stages = _selected(with_physical)
    old = DEBUG_FLOW_GRAPH.stage_keys(
        net, base, params=base_params, stages=stages
    )
    new = DEBUG_FLOW_GRAPH.stage_keys(
        net, changed, params=changed_params, stages=stages
    )
    return [s for s in stages if old[s] != new[s]]


def conventional_stages_invalidated(
    net: LogicNetwork,
    base: DebugFlowConfig,
    changed: DebugFlowConfig,
    *,
    with_physical: bool = False,
) -> list[str]:
    """The conventional-recompile baseline: the same graph, caching disabled.

    Vendor ELA flows re-synthesize and re-place-and-route on every
    instrumentation change, so every stage of the graph is invalidated
    regardless of what changed (the arguments beyond ``with_physical``
    only document intent).  Kept as a function — not a constant — so both
    baselines are queried through one shape.
    """
    del net, base, changed
    return list(_selected(with_physical))


def invalidation_table(
    net: LogicNetwork,
    base: DebugFlowConfig,
    variants: Sequence[tuple[str, DebugFlowConfig]],
    *,
    with_physical: bool = False,
) -> str:
    """Render a per-change comparison of both flows' recompile footprints.

    One row per variant: which stages the parameterized stage graph
    re-runs versus the conventional full recompile — the
    "stages invalidated per instrumentation change" metric.
    """
    n_total = len(_selected(with_physical))
    t = TextTable(
        ["change", "stages invalidated (parameterized)", "param", "conv"],
        aligns="llrr",
    )
    for label, cfg in variants:
        inv = stages_invalidated(net, base, cfg, with_physical=with_physical)
        t.add_row(
            [
                label,
                ", ".join(inv) if inv else "(none)",
                f"{len(inv)}/{n_total}",
                f"{n_total}/{n_total}",
            ]
        )
    return t.render()


def changed_fields(base: DebugFlowConfig, other: DebugFlowConfig) -> list[str]:
    """The config fields that differ — handy for labeling sweeps."""
    return [
        f.name
        for f in fields(DebugFlowConfig)
        if getattr(base, f.name) != getattr(other, f.name)
    ]
