"""Conventional (vendor-style) debugging baselines.

These model the embedded-logic-analyzer flows the paper compares against
(ChipScope / SignalTap / Certus class, §II-B): the debug multiplexers and
trigger units are pre-synthesized macros consuming regular LUTs, and every
change of the observed-signal set requires a recompilation.
"""

from repro.baselines.conventional import (
    ConventionalResult,
    run_conventional_flow,
)
from repro.baselines.incremental import (
    conventional_stages_invalidated,
    invalidation_table,
    stages_invalidated,
)
from repro.baselines.recompile_model import RecompileModel

__all__ = [
    "ConventionalResult",
    "run_conventional_flow",
    "RecompileModel",
    "stages_invalidated",
    "conventional_stages_invalidated",
    "invalidation_table",
]
