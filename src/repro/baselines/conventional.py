"""The conventional instrumented-in-logic debug flow.

Pipeline (mirrors vendor ELA insertion, §II-B of the paper):

1. map the user design with the chosen conventional mapper (SimpleMap or
   ABC-style) — the mapper's own LUT roots become the observable signals;
2. instrument the gate-level netlist with the trace mux network *plus*
   trigger units, select/pattern inputs being ordinary PIs;
3. re-map the instrumented design with the same mapper, with every
   instrumentation node pinned as a macro (vendor debug cores ship
   pre-synthesized and are excluded from re-synthesis) and every observed
   signal forced to remain a physical net.

The resulting LUT count is the Table I "SM"/"ABC" column; the user-sink
depth is the Table II column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.core.muxnet import InstrumentedDesign, build_trace_network
from repro.errors import DebugFlowError
from repro.mapping import AbcMap, MappingResult, SimpleMap
from repro.netlist.network import LogicNetwork

__all__ = ["ConventionalResult", "run_conventional_flow", "user_sink_names"]

MapperName = Literal["simplemap", "abc"]


def user_sink_names(net: LogicNetwork) -> list[str]:
    """Original design sinks: POs plus latch-driver signals.

    Used as the Table II depth sink set so debug-infrastructure paths
    (trace-buffer and trigger outputs) don't pollute the user-depth metric.
    """
    names = list(net.po_names)
    names += [
        net.node_name(l.driver) for l in net.latches if l.driver >= 0
    ]
    return names


@dataclass
class ConventionalResult:
    """All artifacts and metrics of one conventional-flow run."""

    mapper_name: str
    phase1: MappingResult
    instrumented: InstrumentedDesign
    final: MappingResult
    user_sinks: list[str]

    @property
    def n_luts(self) -> int:
        return self.final.n_luts

    @property
    def n_instrumentation_luts(self) -> int:
        macro = self.instrumented.macro_nodes
        return sum(1 for r in self.final.luts if r in macro)

    @property
    def user_depth(self) -> int:
        return self.final.depth_to(self.user_sinks)

    @property
    def n_taps(self) -> int:
        return len(self.instrumented.taps)

    def summary(self) -> str:
        return (
            f"{self.mapper_name}: {self.n_luts} LUTs "
            f"({self.n_instrumentation_luts} instrumentation), "
            f"user depth {self.user_depth}, {self.n_taps} observable signals"
        )


def _make_mapper(name: MapperName, k: int, **kw):
    if name == "simplemap":
        return SimpleMap(k=k, **kw)
    if name == "abc":
        return AbcMap(k=k, **kw)
    raise DebugFlowError(f"unknown conventional mapper {name!r}")


def run_conventional_flow(
    net: LogicNetwork,
    mapper: MapperName = "abc",
    *,
    k: int = 6,
    n_buffer_inputs: int | None = None,
    with_triggers: bool = True,
) -> ConventionalResult:
    """Run the full conventional instrument-and-map flow on ``net``."""
    sinks = user_sink_names(net)

    phase1 = _make_mapper(mapper, k).map(net)
    taps = sorted(phase1.luts.keys()) + [l.q for l in net.latches]
    if not taps:
        raise DebugFlowError("nothing observable after phase-1 mapping")

    instrumented = build_trace_network(
        net,
        taps,
        n_buffer_inputs=n_buffer_inputs,
        with_triggers=with_triggers,
    )
    final = _make_mapper(
        mapper,
        k,
        macro_nodes=instrumented.macro_nodes,
        forced_roots=frozenset(taps),
    ).map(instrumented.network)

    return ConventionalResult(
        mapper_name=mapper,
        phase1=phase1,
        instrumented=instrumented,
        final=final,
        user_sinks=sinks,
    )
