"""Compile-time model of the conventional debug cycle.

In the conventional flow every new observed-signal set requires re-running
synthesis + place and route.  The paper (citing Chin & Wilton's analytical
model, ref. [6]) treats FPGA compile time as strongly superlinear in design
size, "minutes to hours" in practice, which is what makes recompilation the
bottleneck of FPGA debugging.

:class:`RecompileModel` provides that cost analytically — calibrated so a
mid-size (~25k LUT) design recompiles in about one hour — and can also be
anchored to a *measured* place-and-route runtime from our own TPaR so the
runtime-overhead benchmark can report both views.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecompileModel"]


@dataclass(frozen=True)
class RecompileModel:
    """Analytic recompilation-time model ``t = base + coeff * n**exponent``.

    Defaults give ≈3.6 ks (one hour) at 25k LUTs and ≈6 minutes at 2k
    LUTs — consistent with the "minutes to hours" the paper quotes for
    commercial tools on real designs.
    """

    base_s: float = 30.0
    coeff_s: float = 8.0e-4
    exponent: float = 1.51

    def compile_time_s(self, n_luts: int) -> float:
        """Modeled full recompilation time for an ``n_luts`` design."""
        if n_luts < 0:
            raise ValueError("n_luts must be non-negative")
        return self.base_s + self.coeff_s * float(n_luts) ** self.exponent

    def scaled_to_measurement(
        self, n_luts: int, measured_s: float
    ) -> "RecompileModel":
        """Rescale the model so ``compile_time_s(n_luts) == measured_s``.

        Used to anchor the analytic curve to our own measured TPaR runtime
        for a given design, keeping the exponent (growth shape) intact.
        """
        cur = self.compile_time_s(n_luts)
        if cur <= self.base_s:
            return self
        scale = max(0.0, (measured_s - self.base_s)) / (cur - self.base_s)
        return RecompileModel(
            base_s=self.base_s,
            coeff_s=self.coeff_s * scale,
            exponent=self.exponent,
        )

    def debug_cycles_per_hour(self, n_luts: int) -> float:
        """How many observe-new-signals cycles fit in an hour, conventionally."""
        t = self.compile_time_s(n_luts)
        return 3600.0 / t if t > 0 else float("inf")
