"""The virtual (pre-placement) parameterized bitstream.

The paper's offline stage first creates "a virtual intermediate level" —
a generalized configuration whose bits are Boolean functions, *before* the
design is committed to device frames (§III, §IV-A.3).  This module builds
exactly that from a mapping result:

* every LUT contributes ``2**n`` configuration bits (its truth table over
  physical inputs).  For a **TLUT**, each bit is the parameter-cofactored
  function — a :class:`~repro.core.boolfunc.BoolExpr`;
* every **TCON** contributes one bit per candidate connection, whose
  expression is the connection's activation condition (``sel`` / ``~sel``).

The same layout logic is reused by the physical bitstream generator
(:mod:`repro.bitgen.genbit`), which simply re-bases the regions onto device
frames; and the online debug session uses the virtual PConf to drive the
SCG before any place-and-route has happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.boolfunc import BoolExpr, bf_conj, bf_const, bf_not, bf_var
from repro.core.muxnet import InstrumentedDesign
from repro.core.pconf import ParameterizedBitstream
from repro.errors import SpecializationError
from repro.mapping.result import LutImpl, MappingResult
from repro.netlist.sop import truthtable_to_cover

__all__ = ["VirtualPConf", "build_virtual_pconf", "tlut_bit_expr"]


@dataclass
class VirtualPConf:
    """A parameterized bitstream plus its region directory."""

    bitstream: ParameterizedBitstream
    lut_regions: dict[int, tuple[int, int]] = field(default_factory=dict)
    """LUT root node → (first bit, n bits)."""
    tcon_regions: dict[int, tuple[int, int]] = field(default_factory=dict)
    """TCON root node → (first bit, n bits=2)."""

    @property
    def n_bits(self) -> int:
        return self.bitstream.n_bits


def tlut_bit_expr(
    lut: LutImpl,
    phys_index: int,
    param_index_of: dict[int, int],
) -> BoolExpr:
    """Configuration-bit expression for one TLUT truth-table entry.

    ``phys_index`` packs the physical-input assignment (bit ``i`` equals
    physical input ``i``).  Cofactoring the mixed function on that
    assignment leaves a function of the parameter leaves only, which is
    converted to a BoolExpr through its ISOP cover.
    """
    func = lut.func
    phys = lut.physical_inputs
    pset = set(lut.param_leaves)
    # fix each physical variable to its bit in phys_index
    tt = func
    phys_pos = 0
    for var, leaf in enumerate(lut.leaves):
        if leaf in pset:
            continue
        tt = tt.cofactor(var, (phys_index >> phys_pos) & 1)
        phys_pos += 1
    # remaining support is over parameter variables
    const = tt.const_value()
    if const is not None:
        return bf_const(const)
    cover = truthtable_to_cover(tt)
    terms = []
    param_var_of: dict[int, int] = {}
    for var, leaf in enumerate(lut.leaves):
        if leaf in pset:
            param_var_of[var] = param_index_of[leaf]
    for cube in cover.cubes:
        lits = []
        for var in range(func.n_vars):
            if (cube.mask >> var) & 1:
                if var not in param_var_of:
                    raise SpecializationError(
                        "cofactored TLUT function depends on a physical var"
                    )
                lits.append((param_var_of[var], (cube.polarity >> var) & 1))
        terms.append(bf_conj(lits))
    expr = terms[0]
    for t in terms[1:]:
        expr = expr | t
    return expr


def build_virtual_pconf(
    mapping: MappingResult, design: InstrumentedDesign
) -> VirtualPConf:
    """Lay out every LUT/TCON configuration bit and parameterize it."""
    space = design.param_space
    param_index_of = {
        nid: space.index_of(name) for name, nid in design.param_nodes.items()
    }

    # layout: LUTs first (sorted by root id for determinism), then TCONs
    total = 0
    lut_regions: dict[int, tuple[int, int]] = {}
    for root in sorted(mapping.luts):
        n = 1 << len(mapping.luts[root].physical_inputs)
        lut_regions[root] = (total, n)
        total += n
    tcon_regions: dict[int, tuple[int, int]] = {}
    for root in sorted(mapping.tcons):
        tcon_regions[root] = (total, 2)
        total += 2

    pb = ParameterizedBitstream(space, total)

    for root, (base, n) in lut_regions.items():
        lut = mapping.luts[root]
        if not lut.is_tlut:
            # static truth table over its (physical == all) inputs
            for i in range(n):
                pb.set_constant(base + i, lut.func.eval_index(i))
            continue
        for i in range(n):
            pb.set_tunable(base + i, tlut_bit_expr(lut, i, param_index_of))

    for root, (base, _n) in tcon_regions.items():
        t = mapping.tcons[root]
        sel_idx = param_index_of.get(t.sel)
        if sel_idx is None:
            raise SpecializationError(
                f"TCON select {mapping.network.node_name(t.sel)!r} "
                "is not a declared parameter"
            )
        sel = bf_var(sel_idx)
        pb.set_tunable(base + 0, bf_not(sel))  # source0 active when sel=0
        pb.set_tunable(base + 1, sel)          # source1 active when sel=1

    return VirtualPConf(
        bitstream=pb, lut_regions=lut_regions, tcon_regions=tcon_regions
    )
