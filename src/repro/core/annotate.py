"""The ``.par`` annotation file.

The paper's flow (§V-A) runs signal identification/parameterisation on the
synthesized ``.blif`` and emits two files: a new ``.blif`` (the instrumented
netlist, staying as close as possible to the original design) and a
``.par`` file telling the mapper which signals are parameters.  This module
models the ``.par`` side: the parameter names, the tapped (observable)
signal names, and the trace-buffer outputs — with a plain-text round-trip
format so the artifacts can be inspected and diffed like the originals.

Format::

    # repro .par v1
    .param dbg_sel_0_0_0
    .param dbg_sel_0_0_1
    .tap n17
    .tap n42
    .buffer tb_0
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import TextIO

from repro.errors import ParameterError

__all__ = ["ParAnnotation", "write_par", "parse_par"]


@dataclass
class ParAnnotation:
    """Names of parameters, taps and trace-buffer outputs."""

    param_names: list[str] = field(default_factory=list)
    tap_names: list[str] = field(default_factory=list)
    buffer_names: list[str] = field(default_factory=list)

    def validate(self) -> None:
        for group_name, group in (
            ("param", self.param_names),
            ("tap", self.tap_names),
            ("buffer", self.buffer_names),
        ):
            seen: set[str] = set()
            for n in group:
                if not n or any(c.isspace() for c in n):
                    raise ParameterError(
                        f"bad {group_name} name {n!r} (empty or whitespace)"
                    )
                if n in seen:
                    raise ParameterError(f"duplicate {group_name} name {n!r}")
                seen.add(n)
        overlap = set(self.param_names) & set(self.tap_names)
        if overlap:
            raise ParameterError(
                f"names both parameter and tap: {sorted(overlap)[:4]}"
            )


def write_par(ann: ParAnnotation, fh: TextIO | None = None) -> str:
    """Serialize an annotation (also writes to ``fh`` when given)."""
    ann.validate()
    out = io.StringIO()
    out.write("# repro .par v1\n")
    for n in ann.param_names:
        out.write(f".param {n}\n")
    for n in ann.tap_names:
        out.write(f".tap {n}\n")
    for n in ann.buffer_names:
        out.write(f".buffer {n}\n")
    text = out.getvalue()
    if fh is not None:
        fh.write(text)
    return text


def parse_par(text: str) -> ParAnnotation:
    """Parse the text format produced by :func:`write_par`."""
    ann = ParAnnotation()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if len(tokens) != 2:
            raise ParameterError(f".par line {line_no}: expected 2 tokens")
        kind, name = tokens
        if kind == ".param":
            ann.param_names.append(name)
        elif kind == ".tap":
            ann.tap_names.append(name)
        elif kind == ".buffer":
            ann.buffer_names.append(name)
        else:
            raise ParameterError(f".par line {line_no}: unknown kind {kind!r}")
    ann.validate()
    return ann
