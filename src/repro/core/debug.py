"""The online debugging loop (§IV-B, Fig. 4(b)).

A :class:`DebugSession` drives the specialisation stage over an
:class:`~repro.core.flow.OfflineStage`:

1. ``observe(signals)`` — compute the select-parameter values routing the
   requested signals to trace-buffer inputs, run the SCG (respecialize the
   PConf; only changed frames are rewritten) and account the overhead;
2. ``run(n_cycles, stimulus)`` — emulate the specialized design cycle by
   cycle, capturing every trace-buffer input into the trace memory;
3. ``waveforms()`` — hand back the captured windows keyed by the *observed
   signal names*, exactly what an engineer inspects.

The session executes the **mapped** network (LUTs/TLUTs/TCONs materialized
via :meth:`~repro.mapping.result.MappingResult.to_lut_network`), so what
runs is the artifact the flow produced, not the source netlist; parameters
enter the emulation as the PIs they physically are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.core.costmodel import Virtex5Model
from repro.core.flow import OfflineStage
from repro.core.parameters import ParameterAssignment
from repro.core.scg import SpecializedConfigGenerator
from repro.core.tracebuffer import TraceBuffer
from repro.core.virtual import build_virtual_pconf
from repro.emu.fault import NEVER_ENDS, ForcedFault, active_overrides
from repro.errors import DebugFlowError
from repro.netlist.simulate import SequentialSimulator

__all__ = ["DebugSession", "DebugTurnLog", "ForcedFault"]

Stimulus = Callable[[int], Mapping[str, int]]
"""Per-cycle primary-input values: cycle → {pi name: 0/1}."""


@dataclass
class DebugTurnLog:
    """Bookkeeping for one observe+run round."""

    observed: list[str]
    cycles_run: int
    modeled_overhead_s: float
    frames_touched: int
    software_s: float


# ForcedFault lives in repro.emu.fault (one shared stuck-at implementation
# for plain netlist simulation and mapped-network debug sessions) and is
# re-exported here for the session-facing API.  In a session, the fault's
# node is a *mapped-network* node: the emulated design misbehaves, but the
# bitstream is the clean one, so every scenario targeting the same design
# shares one offline-stage artifact.  Forcing a mapped node is not always
# equivalent to forcing it in the source netlist — technology mapping
# duplicates logic into LUT cones, so paths that absorbed the signal's
# logic do not see the override.  Failure detection must therefore happen
# at the mapped level (:meth:`DebugSession.output_trace`), which is also
# what a real bench observes.


class DebugSession:
    """Interactive debugging against an offline-stage artifact."""

    def __init__(
        self,
        offline: OfflineStage,
        *,
        model: Virtex5Model | None = None,
        trace_depth: int | None = None,
    ) -> None:
        self.offline = offline
        self.design = offline.instrumented
        self.model = model or Virtex5Model()
        self.mapped_net = offline.mapping.to_lut_network()
        self.sim = SequentialSimulator(self.mapped_net, n_words=1)
        self.pconf = build_virtual_pconf(offline.mapping, self.design)
        self.scg = SpecializedConfigGenerator(
            self.pconf.bitstream, model=self.model
        )
        self.assignment: ParameterAssignment = self.design.param_space.zeros()
        self.scg.load_full(self.assignment)
        depth = trace_depth or offline.config.trace_depth
        self.trace = TraceBuffer(
            width=self.design.n_buffer_inputs, depth=depth
        )
        self._observed: dict[str, str] = self.design.observed_at({})
        self.turns: list[DebugTurnLog] = []
        self._cycles_this_turn = 0

        self._param_pi_values = {
            self.mapped_net.require(name): np.zeros(1, dtype=np.uint64)
            for name in self.design.param_space.names
        }
        self._user_pis = [
            pi
            for pi in self.mapped_net.pis
            if self.mapped_net.node_name(pi) not in self.design.param_nodes
        ]
        self._tb_nodes = [
            self.mapped_net.require(g.po_name) for g in self.design.groups
        ]
        self._forces: list[ForcedFault] = []
        # design nodes a fault may be forced on: taps, latches and user PIs
        # (param PIs excluded — forcing a select corrupts observation)
        net_i = self.design.network
        self._forceable_nodes = (
            set(self.design.taps)
            | {latch.q for latch in net_i.latches}
            | set(net_i.pis)
        ) - set(self.design.param_nodes.values())
        tb_pos = {g.po_name for g in self.design.groups}
        self._user_po_names = [
            po
            for po in offline.source.po_names
            if po not in tb_pos and self.mapped_net.find(po) is not None
        ]

    # -- observation ------------------------------------------------------------

    @property
    def observable_signals(self) -> list[str]:
        net = self.design.network
        return [net.node_name(t) for t in self.design.taps]

    def observe(self, signals: list[str]) -> dict[str, str]:
        """Route ``signals`` to trace buffers; returns buffer→signal map.

        This closes the previous debug turn: its cycle count and the
        specialization overhead are logged for the amortization analysis.
        """
        values = self.design.selection_for(signals)
        self.assignment = self.design.param_space.assignment(values)
        rec = self.scg.respecialize(self.assignment)
        for name in self.design.param_space.names:
            nid = self.mapped_net.require(name)
            self._param_pi_values[nid][0] = np.uint64(values.get(name, 0))
        self._observed = self.design.observed_at(values)
        self.trace.reset()
        self.turns.append(
            DebugTurnLog(
                observed=list(signals),
                cycles_run=0,
                modeled_overhead_s=rec.device_cost.specialization_s,
                frames_touched=len(rec.frames_touched),
                software_s=rec.software_seconds,
            )
        )
        return dict(self._observed)

    @property
    def observed(self) -> dict[str, str]:
        """Current buffer input → observed signal name."""
        return dict(self._observed)

    # -- fault forcing ------------------------------------------------------------

    def force(
        self,
        signal: str,
        value: int,
        *,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` during ``[first_cycle, last_cycle]``.

        The override is applied inside the mapped-network emulation on every
        :meth:`run` / :meth:`output_trace` cycle in range, modeling a bug
        manifesting in the emulated design while the configuration itself
        stays clean.  Only *design* signals that physically exist in the
        mapped network — the observable taps (LUT roots), latches and user
        PIs — can be forced; debug-infrastructure nodes (select parameters,
        mux tree, trace-buffer outputs) are rejected, since forcing those
        would corrupt observation itself.  Forces survive :meth:`reset`;
        use :meth:`clear_forces` to remove them.
        """
        nid = self.mapped_net.find(signal)
        design_node = self.design.network.find(signal)
        if (
            nid is None
            or design_node is None
            or design_node not in self._forceable_nodes
        ):
            raise DebugFlowError(
                f"signal {signal!r} is not a forceable design signal; only "
                "observable taps, latches and user PIs exist in the mapped "
                "network as design nodes (debug-network nodes cannot be "
                "forced without corrupting observation)"
            )
        if value not in (0, 1):
            raise DebugFlowError("forced value must be 0 or 1")
        fault = ForcedFault(
            node=nid,
            signal=signal,
            value=value,
            first_cycle=first_cycle,
            last_cycle=last_cycle if last_cycle is not None else NEVER_ENDS,
        )
        self._forces.append(fault)
        return fault

    def clear_forces(self) -> None:
        """Remove every active forced fault."""
        self._forces.clear()

    @property
    def forces(self) -> list[ForcedFault]:
        """The currently active forced faults."""
        return list(self._forces)

    def _cycle_overrides(self) -> dict[int, np.ndarray] | None:
        """Override arrays for faults active on the upcoming cycle."""
        return active_overrides(self._forces, self.sim.cycle, n_words=1)

    # -- execution ----------------------------------------------------------------

    def reset(self) -> None:
        """Reset emulated latches and the trace memory (not the turn log)."""
        self.sim.reset()
        self.trace.reset()

    def _step_with_stimulus(self, stimulus: Stimulus) -> dict[int, np.ndarray]:
        """Advance one cycle: user stimulus + parameter PIs + active forces."""
        pi_vals: dict[int, np.ndarray] = dict(self._param_pi_values)
        stim = stimulus(self.sim.cycle)
        for pi in self._user_pis:
            name = self.mapped_net.node_name(pi)
            bit = int(stim.get(name, 0)) & 1
            pi_vals[pi] = np.array([bit], dtype=np.uint64)
        return self.sim.step(pi_vals, overrides=self._cycle_overrides())

    def run(
        self,
        n_cycles: int,
        stimulus: Stimulus,
        *,
        trigger: Callable[[int, dict[str, int]], bool] | None = None,
    ) -> np.ndarray:
        """Emulate ``n_cycles``, capturing trace-buffer inputs every cycle.

        ``stimulus(cycle)`` provides user PI values (missing PIs default 0).
        ``trigger(cycle, buffer_values)`` may arm the trace buffer's
        post-trigger stop.  Returns the captured window.
        """
        if n_cycles < 0:
            raise DebugFlowError("n_cycles must be non-negative")
        for c in range(n_cycles):
            values = self._step_with_stimulus(stimulus)
            sample = [int(values[n][0] & np.uint64(1)) for n in self._tb_nodes]
            named = {
                g.po_name: sample[i]
                for i, g in enumerate(self.design.groups)
            }
            fire = bool(trigger(self.sim.cycle - 1, named)) if trigger else False
            self.trace.capture(sample, trigger=fire)
        if self.turns:
            self.turns[-1].cycles_run += n_cycles
        return self.trace.window()

    @property
    def user_po_names(self) -> list[str]:
        """The design's own primary outputs (excluding trace-buffer POs)."""
        return list(self._user_po_names)

    def output_trace(
        self, n_cycles: int, stimulus: Stimulus
    ) -> list[dict[str, int]]:
        """Emulate ``n_cycles`` recording the design's primary outputs.

        Primary outputs are board pins — visible without any
        instrumentation — so this models the engineer watching the failing
        outputs before deciding which internal signals to observe.  It
        advances the same emulation state as :meth:`run` (active forces
        apply, cycles count toward the current debug turn) but does not
        capture into the trace buffer.  Returns one ``{po name: 0/1}`` dict
        per cycle.
        """
        if n_cycles < 0:
            raise DebugFlowError("n_cycles must be non-negative")
        po_ids = [self.mapped_net.require(po) for po in self._user_po_names]
        out: list[dict[str, int]] = []
        for _ in range(n_cycles):
            values = self._step_with_stimulus(stimulus)
            out.append(
                {
                    po: int(values[nid][0] & np.uint64(1))
                    for po, nid in zip(self._user_po_names, po_ids)
                }
            )
        if self.turns:
            self.turns[-1].cycles_run += n_cycles
        return out

    # -- results --------------------------------------------------------------------

    def waveforms(self) -> dict[str, np.ndarray]:
        """Captured windows keyed by observed *signal* name."""
        window = self.trace.window()
        out: dict[str, np.ndarray] = {}
        for i, g in enumerate(self.design.groups):
            sig = self._observed.get(g.po_name)
            if sig is not None:
                out[sig] = window[:, i]
        return out

    # -- session accounting ------------------------------------------------------------

    def total_modeled_overhead_s(self) -> float:
        return sum(t.modeled_overhead_s for t in self.turns)

    def total_cycles(self) -> int:
        return sum(t.cycles_run for t in self.turns)

    def amortization_report(self) -> dict[str, float]:
        """Overhead vs emulation time — the §V-C.2 trade-off for this session."""
        overhead = self.total_modeled_overhead_s()
        turn_s = self.model.debug_turn_s()
        run_s = self.total_cycles() * (1.0 / self.model.fpga_clock_hz)
        return {
            "specializations": float(len(self.turns)),
            "modeled_overhead_s": overhead,
            "emulated_run_s": run_s,
            "overhead_fraction": overhead / (overhead + run_s)
            if (overhead + run_s) > 0
            else 0.0,
            "break_even_turns_per_specialization": float(
                self.model.break_even_turns(
                    overhead / max(1, len(self.turns))
                )
            ),
            "debug_turn_s": turn_s,
        }
