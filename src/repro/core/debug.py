"""The online debugging loop (§IV-B, Fig. 4(b)).

A :class:`DebugSession` drives the specialisation stage over an
:class:`~repro.core.flow.OfflineStage`:

1. ``observe(signals)`` — compute the select-parameter values routing the
   requested signals to trace-buffer inputs, run the SCG (respecialize the
   PConf; only changed frames are rewritten) and account the overhead;
2. ``run(n_cycles, stimulus)`` — emulate the specialized design cycle by
   cycle, capturing every trace-buffer input into the trace memory;
3. ``waveforms()`` — hand back the captured windows keyed by the *observed
   signal names*, exactly what an engineer inspects.

The session executes the **mapped** network (LUTs/TLUTs/TCONs materialized
via :meth:`~repro.mapping.result.MappingResult.to_lut_network`), so what
runs is the artifact the flow produced, not the source netlist; parameters
enter the emulation as the PIs they physically are.

Since the lane-parallel refactor the session is a **one-lane facade**
over :class:`repro.engine.LaneEngine`: the exact same engine that packs
whole campaign batches (64 scenarios per word, words added beyond that)
into one compiled-kernel emulation serves a single interactive session
bound to lane 0.  The public API is unchanged; batch users who want many
scenarios per emulation step should use the engine (or the campaign
layer) directly.  ``interpreted=True`` selects the reference per-gate
interpreter instead of the compiled kernels (bit-identical, much
slower); ``program_store`` persists compiled programs across restarts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.costmodel import Virtex5Model
from repro.core.flow import OfflineStage
from repro.core.parameters import ParameterAssignment
from repro.core.tracebuffer import LaneView
from repro.emu.fault import ForcedFault
from repro.engine import DebugTurnLog, LaneEngine, Stimulus

__all__ = ["DebugSession", "DebugTurnLog", "ForcedFault", "Stimulus"]


# ForcedFault lives in repro.emu.fault (one shared stuck-at implementation
# for plain netlist simulation and mapped-network debug sessions) and is
# re-exported here for the session-facing API.  In a session, the fault's
# node is a *mapped-network* node: the emulated design misbehaves, but the
# bitstream is the clean one, so every scenario targeting the same design
# shares one offline-stage artifact.  Forcing a mapped node is not always
# equivalent to forcing it in the source netlist — technology mapping
# duplicates logic into LUT cones, so paths that absorbed the signal's
# logic do not see the override.  Failure detection must therefore happen
# at the mapped level (:meth:`DebugSession.output_trace`), which is also
# what a real bench observes.


class DebugSession:
    """Interactive debugging against an offline-stage artifact."""

    def __init__(
        self,
        offline: OfflineStage,
        *,
        model: Virtex5Model | None = None,
        trace_depth: int | None = None,
        interpreted: bool = False,
        program_store=None,
        backend: str | None = None,
    ) -> None:
        self._engine = LaneEngine(
            offline,
            n_lanes=1,
            model=model,
            trace_depth=trace_depth,
            interpreted=interpreted,
            program_store=program_store,
            backend=backend,
        )
        self.trace = LaneView(self._engine.trace, lane=0)

    # -- engine delegation --------------------------------------------------------

    @property
    def engine(self) -> LaneEngine:
        """The underlying one-lane engine (this session is lane 0)."""
        return self._engine

    @property
    def offline(self) -> OfflineStage:
        return self._engine.offline

    @property
    def design(self):
        return self._engine.design

    @property
    def model(self) -> Virtex5Model:
        return self._engine.model

    @property
    def mapped_net(self):
        return self._engine.mapped_net

    @property
    def sim(self):
        return self._engine.sim

    @property
    def pconf(self):
        return self._engine.pconf

    @property
    def scg(self):
        return self._engine.scgs[0]

    @property
    def assignment(self) -> ParameterAssignment:
        return self._engine.assignments[0]

    @property
    def turns(self) -> list[DebugTurnLog]:
        return self._engine.turns[0]

    # -- observation ------------------------------------------------------------

    @property
    def observable_signals(self) -> list[str]:
        return self._engine.observable_signals

    def observe(self, signals: list[str]) -> dict[str, str]:
        """Route ``signals`` to trace buffers; returns buffer→signal map.

        This closes the previous debug turn: its cycle count and the
        specialization overhead are logged for the amortization analysis.
        """
        hookup = self._engine.observe(signals, lane=0)
        self._engine.reset_trace()
        return hookup

    @property
    def observed(self) -> dict[str, str]:
        """Current buffer input → observed signal name."""
        return self._engine.observed(0)

    # -- fault forcing ------------------------------------------------------------

    def force(
        self,
        signal: str,
        value: int,
        *,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` during ``[first_cycle, last_cycle]``.

        The override is applied inside the mapped-network emulation on every
        :meth:`run` / :meth:`output_trace` cycle in range, modeling a bug
        manifesting in the emulated design while the configuration itself
        stays clean.  Only *design* signals that physically exist in the
        mapped network — the observable taps (LUT roots), latches and user
        PIs — can be forced; debug-infrastructure nodes (select parameters,
        mux tree, trace-buffer outputs) are rejected, since forcing those
        would corrupt observation itself.  Forces survive :meth:`reset`;
        use :meth:`clear_forces` to remove them.
        """
        return self._engine.force(
            signal,
            value,
            lane=0,
            first_cycle=first_cycle,
            last_cycle=last_cycle,
        )

    def clear_forces(self) -> None:
        """Remove every active forced fault."""
        self._engine.clear_forces(0)

    @property
    def forces(self) -> list[ForcedFault]:
        """The currently active forced faults."""
        return self._engine.forces(0)

    # -- execution ----------------------------------------------------------------

    def reset(self) -> None:
        """Reset emulated latches and the trace memory (not the turn log)."""
        self._engine.reset()

    def run(
        self,
        n_cycles: int,
        stimulus: Stimulus,
        *,
        trigger: Callable[[int, dict[str, int]], bool] | None = None,
    ) -> np.ndarray:
        """Emulate ``n_cycles``, capturing trace-buffer inputs every cycle.

        ``stimulus(cycle)`` provides user PI values (missing PIs default 0).
        ``trigger(cycle, buffer_values)`` may arm the trace buffer's
        post-trigger stop.  Returns the captured window.
        """
        self._engine.bind_stimulus(0, stimulus)
        self._engine.run(
            n_cycles, triggers={0: trigger} if trigger is not None else None
        )
        return self.trace.window()

    @property
    def user_po_names(self) -> list[str]:
        """The design's own primary outputs (excluding trace-buffer POs)."""
        return self._engine.user_po_names

    def output_trace(
        self, n_cycles: int, stimulus: Stimulus
    ) -> list[dict[str, int]]:
        """Emulate ``n_cycles`` recording the design's primary outputs.

        Primary outputs are board pins — visible without any
        instrumentation — so this models the engineer watching the failing
        outputs before deciding which internal signals to observe.  It
        advances the same emulation state as :meth:`run` (active forces
        apply, cycles count toward the current debug turn) but does not
        capture into the trace buffer.  Returns one ``{po name: 0/1}`` dict
        per cycle.
        """
        self._engine.bind_stimulus(0, stimulus)
        packed = self._engine.run_outputs(n_cycles)
        names = self._engine.user_po_names
        one = np.uint64(1)
        return [
            {po: int(packed[c, j, 0] & one) for j, po in enumerate(names)}
            for c in range(packed.shape[0])
        ]

    # -- results --------------------------------------------------------------------

    def waveforms(self) -> dict[str, np.ndarray]:
        """Captured windows keyed by observed *signal* name."""
        return self._engine.waveforms(0)

    # -- session accounting ------------------------------------------------------------

    def total_modeled_overhead_s(self) -> float:
        return self._engine.total_modeled_overhead_s(0)

    def total_cycles(self) -> int:
        return self._engine.total_cycles(0)

    def amortization_report(self) -> dict[str, float]:
        """Overhead vs emulation time — the §V-C.2 trade-off for this session."""
        overhead = self.total_modeled_overhead_s()
        turn_s = self.model.debug_turn_s()
        run_s = self.total_cycles() * (1.0 / self.model.fpga_clock_hz)
        turns = self.turns
        return {
            "specializations": float(len(turns)),
            "modeled_overhead_s": overhead,
            "emulated_run_s": run_s,
            "overhead_fraction": overhead / (overhead + run_s)
            if (overhead + run_s) > 0
            else 0.0,
            "break_even_turns_per_specialization": float(
                self.model.break_even_turns(overhead / max(1, len(turns)))
            ),
            "debug_turn_s": turn_s,
        }
