"""Signal-selection strategies for the online debug loop.

The paper's conclusion names "a critical signal selection technique" as
planned work; we implement three strategies a debug session can iterate:

* :class:`ManualSelection` — an explicit script of signal sets;
* :class:`RoundRobinSweep` — sweep every observable signal across
  debugging runs, one new signal per trace group per run (the "virtually
  enlarge the observed set" usage of §I);
* :class:`ConeOfInfluenceSelection` — prioritize signals in the structural
  cone feeding a failing output, nearest first (the usual manual debugging
  heuristic, automated).

A strategy is an iterator of signal-name lists; each list is collision-free
(at most one signal per trace group) by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Protocol

from repro.core.muxnet import InstrumentedDesign
from repro.errors import DebugFlowError

__all__ = [
    "SelectionStrategy",
    "ManualSelection",
    "RoundRobinSweep",
    "ConeOfInfluenceSelection",
]


class SelectionStrategy(Protocol):
    """Anything yielding successive collision-free signal selections."""

    def __iter__(self) -> Iterator[list[str]]: ...


class ManualSelection:
    """A fixed script of selections, validated against the instrumentation.

    >>> # doctest-level illustration; real use needs an InstrumentedDesign
    """

    def __init__(
        self, design: InstrumentedDesign, script: Iterable[list[str]]
    ) -> None:
        self.design = design
        self.script = [list(sel) for sel in script]
        for sel in self.script:
            design.selection_for(sel)  # raises on collisions/unknowns

    def __iter__(self) -> Iterator[list[str]]:
        return iter(self.script)


class RoundRobinSweep:
    """Observe every tapped signal over ⌈max group size⌉ debugging runs."""

    def __init__(self, design: InstrumentedDesign) -> None:
        self.design = design

    def __iter__(self) -> Iterator[list[str]]:
        net = self.design.network
        queues = [deque(g.leaves) for g in self.design.groups]
        while any(queues):
            sel: list[str] = []
            for q in queues:
                if q:
                    sel.append(net.node_name(q.popleft()))
            yield sel


class ConeOfInfluenceSelection:
    """Prioritize tapped signals feeding a failing output, nearest first.

    Breadth-first from the failing signal's driver through the
    combinational fan-in (crossing latches), signals are ranked by
    structural distance; each round packs the highest-priority signals
    whose trace groups are still free.
    """

    def __init__(
        self,
        design: InstrumentedDesign,
        failing_signal: str,
        *,
        max_rounds: int | None = None,
    ) -> None:
        self.design = design
        self.max_rounds = max_rounds
        net = design.network
        start = net.find(failing_signal)
        if start is None:
            raise DebugFlowError(f"unknown failing signal {failing_signal!r}")
        self._priority = self._rank(start)

    def _rank(self, start: int) -> list[int]:
        net = self.design.network
        tapped = set(self.design.taps)
        latch_by_q = {l.q: l for l in net.latches}
        dist: dict[int, int] = {start: 0}
        frontier = deque([start])
        while frontier:
            nid = frontier.popleft()
            preds: tuple[int, ...] = net.fanins(nid)
            if nid in latch_by_q:
                drv = latch_by_q[nid].driver
                preds = preds + ((drv,) if drv >= 0 else ())
            for p in preds:
                if p not in dist:
                    dist[p] = dist[nid] + 1
                    frontier.append(p)
        ranked = [nid for nid in dist if nid in tapped]
        ranked.sort(key=lambda n: (dist[n], n))
        return ranked

    def __iter__(self) -> Iterator[list[str]]:
        design = self.design
        net = design.network
        remaining = list(self._priority)
        rounds = 0
        while remaining:
            if self.max_rounds is not None and rounds >= self.max_rounds:
                return
            used_groups: set[int] = set()
            sel: list[str] = []
            rest: list[int] = []
            for nid in remaining:
                g = design.group_of(nid)
                if g.index in used_groups:
                    rest.append(nid)
                else:
                    used_groups.add(g.index)
                    sel.append(net.node_name(nid))
            if not sel:
                return
            yield sel
            remaining = rest
            rounds += 1
