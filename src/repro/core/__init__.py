"""The paper's contribution: parameterized configurations for debugging.

Subpackage map (paper section in parentheses):

* :mod:`repro.core.parameters` — parameter declarations/assignments (§II-A)
* :mod:`repro.core.boolfunc` — Boolean functions of parameters (§II-A)
* :mod:`repro.core.pconf` — the parameterized bitstream (§I, §III)
* :mod:`repro.core.annotate` — the ``.par`` signal annotation (§V-A)
* :mod:`repro.core.muxnet` — signal parameterisation / mux network (§IV-A.2)
* :mod:`repro.core.tracebuffer` — trace buffers (§I)
* :mod:`repro.core.flow` — the offline generic stage (§IV-A)
* :mod:`repro.core.scg` — the Specialized Configuration Generator (§IV-B)
* :mod:`repro.core.debug` — the online debugging loop (§IV-B, Fig. 4b)
* :mod:`repro.core.selection` — signal-selection strategies (§VI)
* :mod:`repro.core.costmodel` — device timing model (§V-C)
"""

from repro.core.parameters import Parameter, ParameterSpace, ParameterAssignment
from repro.core.boolfunc import BoolExpr, bf_const, bf_var, bf_and, bf_or, bf_not, bf_xor
from repro.core.annotate import ParAnnotation, write_par, parse_par
from repro.core.muxnet import (
    InstrumentedDesign,
    TraceGroup,
    build_trace_network,
)
from repro.core.tracebuffer import TraceBuffer
from repro.core.pconf import ParameterizedBitstream
from repro.core.scg import SpecializedConfigGenerator
from repro.core.flow import DebugFlowConfig, OfflineStage, run_generic_stage
from repro.core.debug import DebugSession
from repro.core.selection import (
    SelectionStrategy,
    ManualSelection,
    RoundRobinSweep,
    ConeOfInfluenceSelection,
)
from repro.core.costmodel import Virtex5Model, ReconfigCostReport

__all__ = [
    "Parameter",
    "ParameterSpace",
    "ParameterAssignment",
    "BoolExpr",
    "bf_const",
    "bf_var",
    "bf_and",
    "bf_or",
    "bf_not",
    "bf_xor",
    "ParAnnotation",
    "write_par",
    "parse_par",
    "InstrumentedDesign",
    "TraceGroup",
    "build_trace_network",
    "TraceBuffer",
    "ParameterizedBitstream",
    "SpecializedConfigGenerator",
    "DebugFlowConfig",
    "OfflineStage",
    "run_generic_stage",
    "DebugSession",
    "SelectionStrategy",
    "ManualSelection",
    "RoundRobinSweep",
    "ConeOfInfluenceSelection",
    "Virtex5Model",
    "ReconfigCostReport",
]
