"""The offline ("generic") stage of the proposed debug flow (§IV-A).

``run_generic_stage`` executes, once per design:

1. **Synthesis front-end** — the caller provides a synthesized gate-level
   :class:`~repro.netlist.network.LogicNetwork` (from BLIF or a workload
   generator); we run the light cleanup conventional flows apply.
2. **Initial mapping** — the ABC-style K-LUT mapping of the *un-instrumented*
   design; its LUT roots define the observable signal set (these are the
   nets that physically exist on the emulator) and its metrics are the
   "Initial"/"Golden" reference columns of Tables I/II.
3. **Signal parameterisation** — :func:`~repro.core.muxnet.build_trace_network`
   inserts the parameterized mux network toward the trace buffers and emits
   the ``.par`` annotation.
4. **TCON technology mapping** — :class:`~repro.mapping.tconmap.TconMap`
   maps logic to LUTs/TLUTs and the mux network to TCONs.

The physical back-end (TPaR placement/routing and PConf bitstream
generation) lives in :func:`run_physical_stage`, which imports the physical
design subpackages lazily so mapping-level users don't pay for them.

Both entry points are thin façades over the **stage graph** of
:mod:`repro.pipeline`: each phase is a declared stage with a
content-addressed key, so passing ``store=ArtifactStore(...)`` makes
recompilation incremental — a changed ``fold_polarity`` reuses the
cleanup/initial-map/parameterisation artifacts and rebuilds only the TCON
mapping onward.  Without a store the graph simply runs every stage, which
is byte-for-byte the historical behavior.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.annotate import ParAnnotation
from repro.core.muxnet import InstrumentedDesign
from repro.mapping import MappingResult
from repro.netlist.blif import write_blif
from repro.netlist.network import LogicNetwork
from repro.util.timing import PhaseTimer

__all__ = [
    "DebugFlowConfig",
    "OfflineStage",
    "FLOW_CACHE_VERSION",
    "offline_cache_key",
    "run_generic_stage",
    "run_physical_stage",
]

#: Bump whenever the offline flow's semantics change in a way that makes
#: previously cached :class:`OfflineStage` artifacts stale (mapper changes,
#: new instrumentation, different tap selection...).  The version is folded
#: into :func:`offline_cache_key`, so stale disk caches miss instead of
#: returning artifacts from an older flow.
FLOW_CACHE_VERSION = 2
"""v2: PR 5's vectorized placer/router — whole-artifact entries built by
the v1 physical back-end carry a different placement/routing and must
miss rather than be served alongside v2 builds."""


@dataclass(frozen=True)
class DebugFlowConfig:
    """Knobs of the offline stage."""

    k: int = 6
    cut_limit: int = 8
    area_rounds: int = 2
    n_buffer_inputs: int | None = None
    """Trace-buffer inputs; default = #taps // 4."""
    run_cleanup: bool = True
    fold_polarity: bool = True
    trace_depth: int = 1024
    """Trace-buffer sample depth used by online sessions."""


@dataclass
class OfflineStage:
    """Everything the online stage needs, produced once per design."""

    source: LogicNetwork
    config: DebugFlowConfig
    initial: MappingResult
    instrumented: InstrumentedDesign
    mapping: MappingResult
    annotation: ParAnnotation
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    physical: Any | None = None
    """Filled by :func:`run_physical_stage` (a PhysicalStage)."""
    cache_key: str | None = None
    """Content key identifying this artifact.

    Set to the terminal generic stage's (``tcon-map``) content key by the
    pipeline assembler, and overwritten with the whole-artifact key by
    :class:`repro.campaign.OfflineCache` when cached there.  The whole
    dataclass is picklable (networks, mappings and timers are plain
    containers), which is what lets campaign workers receive the artifact
    and what the disk caches serialize.
    """
    stage_keys: dict[str, str] | None = None
    """Graph-native per-stage content keys this artifact was assembled
    from (set by the pipeline assembler; ``None`` for artifacts unpickled
    from older caches).  :func:`run_physical_stage` reuses them so its
    physical-stage cache entries are shared with full-graph compiles."""

    @property
    def taps(self) -> list[int]:
        return self.instrumented.taps

    def summary(self) -> str:
        m = self.mapping
        return (
            f"{self.source.name}: initial {self.initial.n_luts} LUTs "
            f"depth {self.initial.depth()}; proposed {m.n_luts} LUTs "
            f"({m.n_tluts} TLUTs, {m.n_tcons} TCONs) depth {m.depth()}; "
            f"{len(self.taps)} observable signals on "
            f"{self.instrumented.n_buffer_inputs} buffer inputs"
        )


def offline_cache_key(
    net: LogicNetwork,
    config: DebugFlowConfig | None = None,
    *,
    extra: tuple = (),
) -> str:
    """Content key identifying the offline artifact for ``(net, config)``.

    The key is a SHA-256 over the BLIF serialization of the network, every
    :class:`DebugFlowConfig` field, the flow version
    (:data:`FLOW_CACHE_VERSION`) and any ``extra`` discriminators (the
    campaign layer adds ``"physical"`` when the cached artifact includes the
    physical back-end).  Designs that serialize identically — e.g. every
    regeneration of a workload from the same ``(spec, seed)``, or repeated
    bug scenarios on one design — share one key, which is what lets a debug
    campaign pay the generic stage once per design.  The serialization
    includes model and signal *names*, so a renamed-but-structurally-equal
    design conservatively misses (and rebuilds) rather than risking a wrong
    hit.
    """
    config = config or DebugFlowConfig()
    h = hashlib.sha256()
    h.update(f"repro-offline-v{FLOW_CACHE_VERSION}\n".encode())
    h.update(write_blif(net).encode())
    for key, value in sorted(asdict(config).items()):
        h.update(f"{key}={value!r}\n".encode())
    for item in extra:
        h.update(f"extra={item!r}\n".encode())
    return h.hexdigest()


def run_generic_stage(
    net: LogicNetwork, config: DebugFlowConfig | None = None, *, store=None
) -> OfflineStage:
    """Run the offline flow on a synthesized network.

    The input network is not modified; all artifacts reference fresh
    copies.  A façade over :func:`repro.pipeline.compile_design`: pass an
    :class:`~repro.pipeline.ArtifactStore` via ``store`` and every stage
    whose content key is unchanged is reused instead of re-run.
    """
    from repro.pipeline import assemble_offline, compile_design

    return assemble_offline(
        compile_design(net, config or DebugFlowConfig(), store=store)
    )


def run_physical_stage(offline: OfflineStage, arch=None, *, store=None):
    """TPaR + bitstream generation: pack, place, route, emit the PConf.

    Returns the :class:`~repro.physical.PhysicalStage` and stores it on
    ``offline.physical``.  A façade over the physical sub-graph of
    :mod:`repro.pipeline` (imported lazily so mapping-level users don't
    pay for the physical subpackages); ``store`` enables per-stage
    caching keyed off the offline artifact's content key.
    """
    from repro.pipeline import run_physical_stages

    stage = run_physical_stages(offline, arch=arch, store=store)
    offline.physical = stage
    return stage
