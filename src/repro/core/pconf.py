"""The parameterized bitstream (PConf).

A PConf (§I, §III) is ``an FPGA configuration bitstream with some of its
bits expressed as Boolean functions of parameters``.  Concretely:

* a dense *baseline* bit array (the static bits, packed ``uint64``);
* a sparse map ``bit index → BoolExpr`` for the tunable bits.

:meth:`ParameterizedBitstream.specialize` evaluates every tunable bit for a
parameter assignment and returns a concrete bit array — the operation the
embedded Specialized Configuration Generator performs on-device.  Distinct
bits frequently share expressions (all switches on one mux-tree branch
carry the same path condition), so evaluation memoizes per expression
object; the memoization also gives an honest operation count for the
§V-C.2 timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecializationError
from repro.core.boolfunc import BoolExpr
from repro.core.parameters import ParameterAssignment, ParameterSpace
from repro.util.bitops import words_for_bits

__all__ = ["ParameterizedBitstream", "SpecializeStats"]


@dataclass
class SpecializeStats:
    """Work accounting for one specialization (feeds the cost model)."""

    n_tunable_bits: int
    n_expr_nodes_evaluated: int
    n_bits_changed: int


class ParameterizedBitstream:
    """Bitstream with Boolean-function bits.

    >>> from repro.core.boolfunc import bf_var
    >>> from repro.core.parameters import ParameterSpace
    >>> sp = ParameterSpace(["p"])
    >>> pb = ParameterizedBitstream(sp, n_bits=8)
    >>> pb.set_constant(0, 1)
    >>> pb.set_tunable(3, bf_var(0))
    >>> bits, _ = pb.specialize(sp.assignment({"p": 1}))
    >>> int(bits[0]), int(bits[3])
    (1, 1)
    """

    def __init__(self, space: ParameterSpace, n_bits: int) -> None:
        if n_bits < 0:
            raise SpecializationError("n_bits must be non-negative")
        self.space = space
        self.n_bits = int(n_bits)
        self.baseline = np.zeros(self.n_bits, dtype=np.uint8)
        self.tunable: dict[int, BoolExpr] = {}

    # -- construction -------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_bits:
            raise SpecializationError(
                f"bit index {index} out of range [0, {self.n_bits})"
            )

    def set_constant(self, index: int, value: int) -> None:
        """Pin a static bit."""
        self._check_index(index)
        if index in self.tunable:
            raise SpecializationError(f"bit {index} is already tunable")
        self.baseline[index] = 1 if value else 0

    def set_tunable(self, index: int, expr: BoolExpr) -> None:
        """Make a bit a Boolean function of the parameters."""
        self._check_index(index)
        bad = expr.support() - frozenset(range(len(self.space)))
        if bad:
            raise SpecializationError(
                f"bit {index}: expression uses unknown parameter indices "
                f"{sorted(bad)[:4]}"
            )
        if expr.is_const():
            # constant expressions are static bits; keep the sparse map tight
            self.baseline[index] = expr.value
            self.tunable.pop(index, None)
        else:
            self.tunable[index] = expr

    @property
    def n_tunable(self) -> int:
        return len(self.tunable)

    @property
    def n_distinct_exprs(self) -> int:
        return len({id(e) for e in self.tunable.values()})

    # -- specialization ----------------------------------------------------------

    def specialize(
        self, assignment: ParameterAssignment
    ) -> tuple[np.ndarray, SpecializeStats]:
        """Evaluate every tunable bit; returns ``(bits, stats)``.

        ``bits`` is a dense ``uint8`` 0/1 array of length :attr:`n_bits`.
        """
        if assignment.space is not self.space:
            raise SpecializationError(
                "assignment belongs to a different parameter space"
            )
        bits = self.baseline.copy()
        vec = assignment.vector
        cache: dict[int, int] = {}
        nodes_evaluated = 0
        changed = 0
        for index, expr in self.tunable.items():
            key = id(expr)
            val = cache.get(key)
            if val is None:
                val = expr.evaluate(vec)
                nodes_evaluated += expr.n_nodes()
                cache[key] = val
            if bits[index] != val:
                changed += 1
            bits[index] = val
        stats = SpecializeStats(
            n_tunable_bits=len(self.tunable),
            n_expr_nodes_evaluated=nodes_evaluated,
            n_bits_changed=changed,
        )
        return bits, stats

    def specialize_packed(
        self, assignment: ParameterAssignment
    ) -> tuple[np.ndarray, SpecializeStats]:
        """Like :meth:`specialize` but returns packed ``uint64`` words."""
        from repro.util.bitops import pack_bits

        bits, stats = self.specialize(assignment)
        return pack_bits(bits), stats

    def __repr__(self) -> str:
        return (
            f"ParameterizedBitstream(bits={self.n_bits}, "
            f"tunable={self.n_tunable}, params={len(self.space)})"
        )
