"""Trace-buffer model.

A trace buffer is an embedded memory that records, every cycle, the value
of each of its inputs (§I of the paper).  The model is a circular buffer of
``depth`` samples × ``width`` channels with an optional trigger: once the
trigger fires, capture continues for ``post_trigger`` samples and stops, so
the window brackets the event of interest — the standard ELA behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DebugFlowError

__all__ = ["TraceBuffer", "LaneTraceBuffer", "LaneView"]


class TraceBuffer:
    """Circular capture memory.

    >>> tb = TraceBuffer(width=2, depth=4)
    >>> for t in range(6):
    ...     tb.capture([t % 2, 1])
    >>> tb.window().shape
    (4, 2)
    >>> tb.window()[-1].tolist()   # most recent sample last
    [1, 1]
    """

    def __init__(self, width: int, depth: int, *, post_trigger: int | None = None):
        if width <= 0 or depth <= 0:
            raise DebugFlowError("trace buffer width/depth must be positive")
        self.width = width
        self.depth = depth
        self.post_trigger = depth // 2 if post_trigger is None else post_trigger
        self._mem = np.zeros((depth, width), dtype=np.uint8)
        self._head = 0
        self._count = 0
        self._triggered_at: int | None = None
        self._remaining: int | None = None
        self.stopped = False
        self._cycle = 0

    def reset(self) -> None:
        self._mem[:] = 0
        self._head = 0
        self._count = 0
        self._triggered_at = None
        self._remaining = None
        self.stopped = False
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Cycles observed since reset (captured or not)."""
        return self._cycle

    @property
    def triggered_at(self) -> int | None:
        return self._triggered_at

    def capture(self, sample, *, trigger: bool = False) -> None:
        """Record one cycle's sample unless capture already stopped."""
        self._cycle += 1
        if self.stopped:
            return
        row = np.asarray(sample, dtype=np.uint8)
        if row.shape != (self.width,):
            raise DebugFlowError(
                f"sample width {row.shape} != buffer width {self.width}"
            )
        self._mem[self._head] = row
        self._head = (self._head + 1) % self.depth
        self._count = min(self._count + 1, self.depth)
        if trigger and self._triggered_at is None:
            self._triggered_at = self._cycle - 1
            self._remaining = self.post_trigger
        if self._remaining is not None:
            self._remaining -= 1
            if self._remaining <= 0:
                self.stopped = True

    def window(self) -> np.ndarray:
        """Captured samples, oldest first, shape ``(n_captured, width)``."""
        if self._count < self.depth:
            return self._mem[: self._count].copy()
        return np.roll(self._mem, -self._head, axis=0).copy()

    def channel(self, index: int) -> np.ndarray:
        """One channel's captured history, oldest first."""
        if not 0 <= index < self.width:
            raise DebugFlowError(f"channel {index} out of range")
        return self.window()[:, index]


class LaneTraceBuffer:
    """Lane-packed capture memory: one :class:`TraceBuffer` per SIMD lane.

    The lane-parallel debug engine runs many scenarios through one packed
    emulation; each cell of this buffer is a row of ``n_words`` ``uint64``
    words whose bit *k* of word *w* is lane ``64*w + k``'s sample for
    that (cycle, channel).  One :meth:`capture` call per cycle records
    *every* lane — O(width × words) regardless of lane count, which is
    what keeps trace capture off the per-scenario cost sheet.  Lane
    counts beyond 64 simply widen the rows (the multi-word addressing the
    compiled-kernel engine uses for >64-lane campaigns).

    Per-lane trigger/stop state is tracked so one lane can freeze its
    post-trigger window while the others keep recording: captures blend
    ``mem = (mem & ~active) | (sample & active)``, so a stopped lane's
    bits survive later wraps of the ring untouched.  :meth:`window`
    extracts one lane's history bit-for-bit identical to what a solo
    :class:`TraceBuffer` would have recorded.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        *,
        n_lanes: int = 1,
        post_trigger: int | None = None,
    ):
        if width <= 0 or depth <= 0:
            raise DebugFlowError("trace buffer width/depth must be positive")
        if n_lanes < 1:
            raise DebugFlowError("lane count must be at least 1")
        self.width = width
        self.depth = depth
        self.n_lanes = n_lanes
        self.n_words = (n_lanes + 63) >> 6
        self.post_trigger = depth // 2 if post_trigger is None else post_trigger
        self._mem = np.zeros((depth, width, self.n_words), dtype=np.uint64)
        self.reset()

    def _lane_masks(self, lanes: np.ndarray) -> np.ndarray:
        """``(n_words,)`` word mask covering the given lane indices."""
        mask = np.zeros(self.n_words, dtype=np.uint64)
        for lane in lanes:
            mask[int(lane) >> 6] |= np.uint64(1) << np.uint64(int(lane) & 63)
        return mask

    def reset(self) -> None:
        self._mem[:] = 0
        self._head = 0
        self._cycle = 0
        self._count = np.zeros(self.n_lanes, dtype=np.int64)
        self._triggered_at = np.full(self.n_lanes, -1, dtype=np.int64)
        self._remaining = np.full(self.n_lanes, -1, dtype=np.int64)
        self._stopped = np.zeros(self.n_lanes, dtype=bool)
        self._stop_head = np.zeros(self.n_lanes, dtype=np.int64)
        self._active_mask = self._lane_masks(np.arange(self.n_lanes))

    @property
    def cycle(self) -> int:
        """Cycles observed since reset (captured or not)."""
        return self._cycle

    def stopped(self, lane: int = 0) -> bool:
        return bool(self._stopped[lane])

    def triggered_at(self, lane: int = 0) -> int | None:
        t = int(self._triggered_at[lane])
        return None if t < 0 else t

    def capture(self, sample: np.ndarray, *, trigger_mask: int = 0) -> None:
        """Record one cycle's packed sample for every non-stopped lane.

        ``sample`` holds one row of ``n_words`` ``uint64`` words per
        channel (bit *k* of word *w* = lane ``64*w + k``); a flat
        ``(width,)`` array is accepted for single-word buffers.
        ``trigger_mask`` arms the post-trigger stop for the lanes whose
        bits are set, mirroring ``TraceBuffer.capture(trigger=...)`` lane
        by lane.
        """
        self._cycle += 1
        amask = self._active_mask
        if not amask.any():
            return
        row = np.asarray(sample, dtype=np.uint64)
        if row.shape == (self.width,) and self.n_words == 1:
            row = row.reshape(self.width, 1)
        if row.shape != (self.width, self.n_words):
            raise DebugFlowError(
                f"sample shape {row.shape} != buffer shape "
                f"({self.width}, {self.n_words})"
            )
        self._mem[self._head] = (self._mem[self._head] & ~amask) | (row & amask)
        self._head = (self._head + 1) % self.depth
        active = ~self._stopped
        np.minimum(self._count + 1, self.depth, out=self._count, where=active)
        if trigger_mask:
            lane = 0
            tm = trigger_mask
            while tm:
                if (
                    tm & 1
                    and lane < self.n_lanes
                    and active[lane]
                    and self._triggered_at[lane] < 0
                ):
                    self._triggered_at[lane] = self._cycle - 1
                    self._remaining[lane] = self.post_trigger
                tm >>= 1
                lane += 1
        armed = active & (self._remaining >= 0)
        if armed.any():
            self._remaining[armed] -= 1
            newly = armed & (self._remaining <= 0)
            if newly.any():
                self._stopped |= newly
                self._stop_head[newly] = self._head
                self._active_mask = self._lane_masks(
                    np.flatnonzero(~self._stopped)
                )

    def window(self, lane: int = 0) -> np.ndarray:
        """Lane ``lane``'s captured samples, oldest first, ``uint8``."""
        if not 0 <= lane < self.n_lanes:
            raise DebugFlowError(f"lane {lane} out of range")
        count = int(self._count[lane])
        end = int(self._stop_head[lane]) if self._stopped[lane] else self._head
        start = (end - count) % self.depth
        idx = (start + np.arange(count)) % self.depth
        word, bit = lane >> 6, lane & 63
        return (
            (self._mem[idx, :, word] >> np.uint64(bit)) & np.uint64(1)
        ).astype(np.uint8)

    def channel(self, index: int, lane: int = 0) -> np.ndarray:
        """One channel's captured history for one lane, oldest first."""
        if not 0 <= index < self.width:
            raise DebugFlowError(f"channel {index} out of range")
        return self.window(lane)[:, index]


class LaneView:
    """A single lane of a :class:`LaneTraceBuffer`, with the solo
    :class:`TraceBuffer` read API — what :class:`~repro.core.debug.
    DebugSession` hands back as its ``trace`` now that the session is a
    one-lane facade over the engine.  ``reset`` clears the *shared*
    buffer, which is exact for the facade (one lane) and what batch
    drivers want anyway (all lanes re-arm together each turn)."""

    def __init__(self, buffer: LaneTraceBuffer, lane: int = 0) -> None:
        self._buffer = buffer
        self.lane = lane

    @property
    def width(self) -> int:
        return self._buffer.width

    @property
    def depth(self) -> int:
        return self._buffer.depth

    @property
    def post_trigger(self) -> int:
        return self._buffer.post_trigger

    @property
    def cycle(self) -> int:
        return self._buffer.cycle

    @property
    def stopped(self) -> bool:
        return self._buffer.stopped(self.lane)

    @property
    def triggered_at(self) -> int | None:
        return self._buffer.triggered_at(self.lane)

    def reset(self) -> None:
        self._buffer.reset()

    def window(self) -> np.ndarray:
        return self._buffer.window(self.lane)

    def channel(self, index: int) -> np.ndarray:
        return self._buffer.channel(index, self.lane)
