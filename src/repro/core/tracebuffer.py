"""Trace-buffer model.

A trace buffer is an embedded memory that records, every cycle, the value
of each of its inputs (§I of the paper).  The model is a circular buffer of
``depth`` samples × ``width`` channels with an optional trigger: once the
trigger fires, capture continues for ``post_trigger`` samples and stops, so
the window brackets the event of interest — the standard ELA behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DebugFlowError

__all__ = ["TraceBuffer"]


class TraceBuffer:
    """Circular capture memory.

    >>> tb = TraceBuffer(width=2, depth=4)
    >>> for t in range(6):
    ...     tb.capture([t % 2, 1])
    >>> tb.window().shape
    (4, 2)
    >>> tb.window()[-1].tolist()   # most recent sample last
    [1, 1]
    """

    def __init__(self, width: int, depth: int, *, post_trigger: int | None = None):
        if width <= 0 or depth <= 0:
            raise DebugFlowError("trace buffer width/depth must be positive")
        self.width = width
        self.depth = depth
        self.post_trigger = depth // 2 if post_trigger is None else post_trigger
        self._mem = np.zeros((depth, width), dtype=np.uint8)
        self._head = 0
        self._count = 0
        self._triggered_at: int | None = None
        self._remaining: int | None = None
        self.stopped = False
        self._cycle = 0

    def reset(self) -> None:
        self._mem[:] = 0
        self._head = 0
        self._count = 0
        self._triggered_at = None
        self._remaining = None
        self.stopped = False
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Cycles observed since reset (captured or not)."""
        return self._cycle

    @property
    def triggered_at(self) -> int | None:
        return self._triggered_at

    def capture(self, sample, *, trigger: bool = False) -> None:
        """Record one cycle's sample unless capture already stopped."""
        self._cycle += 1
        if self.stopped:
            return
        row = np.asarray(sample, dtype=np.uint8)
        if row.shape != (self.width,):
            raise DebugFlowError(
                f"sample width {row.shape} != buffer width {self.width}"
            )
        self._mem[self._head] = row
        self._head = (self._head + 1) % self.depth
        self._count = min(self._count + 1, self.depth)
        if trigger and self._triggered_at is None:
            self._triggered_at = self._cycle - 1
            self._remaining = self.post_trigger
        if self._remaining is not None:
            self._remaining -= 1
            if self._remaining <= 0:
                self.stopped = True

    def window(self) -> np.ndarray:
        """Captured samples, oldest first, shape ``(n_captured, width)``."""
        if self._count < self.depth:
            return self._mem[: self._count].copy()
        return np.roll(self._mem, -self._head, axis=0).copy()

    def channel(self, index: int) -> np.ndarray:
        """One channel's captured history, oldest first."""
        if not 0 <= index < self.width:
            raise DebugFlowError(f"channel {index} out of range")
        return self.window()[:, index]
