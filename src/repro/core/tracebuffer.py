"""Trace-buffer model.

A trace buffer is an embedded memory that records, every cycle, the value
of each of its inputs (§I of the paper).  The model is a circular buffer of
``depth`` samples × ``width`` channels with an optional trigger: once the
trigger fires, capture continues for ``post_trigger`` samples and stops, so
the window brackets the event of interest — the standard ELA behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DebugFlowError

__all__ = ["TraceBuffer", "LaneTraceBuffer", "LaneView"]


class TraceBuffer:
    """Circular capture memory.

    >>> tb = TraceBuffer(width=2, depth=4)
    >>> for t in range(6):
    ...     tb.capture([t % 2, 1])
    >>> tb.window().shape
    (4, 2)
    >>> tb.window()[-1].tolist()   # most recent sample last
    [1, 1]
    """

    def __init__(self, width: int, depth: int, *, post_trigger: int | None = None):
        if width <= 0 or depth <= 0:
            raise DebugFlowError("trace buffer width/depth must be positive")
        self.width = width
        self.depth = depth
        self.post_trigger = depth // 2 if post_trigger is None else post_trigger
        self._mem = np.zeros((depth, width), dtype=np.uint8)
        self._head = 0
        self._count = 0
        self._triggered_at: int | None = None
        self._remaining: int | None = None
        self.stopped = False
        self._cycle = 0

    def reset(self) -> None:
        self._mem[:] = 0
        self._head = 0
        self._count = 0
        self._triggered_at = None
        self._remaining = None
        self.stopped = False
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Cycles observed since reset (captured or not)."""
        return self._cycle

    @property
    def triggered_at(self) -> int | None:
        return self._triggered_at

    def capture(self, sample, *, trigger: bool = False) -> None:
        """Record one cycle's sample unless capture already stopped."""
        self._cycle += 1
        if self.stopped:
            return
        row = np.asarray(sample, dtype=np.uint8)
        if row.shape != (self.width,):
            raise DebugFlowError(
                f"sample width {row.shape} != buffer width {self.width}"
            )
        self._mem[self._head] = row
        self._head = (self._head + 1) % self.depth
        self._count = min(self._count + 1, self.depth)
        if trigger and self._triggered_at is None:
            self._triggered_at = self._cycle - 1
            self._remaining = self.post_trigger
        if self._remaining is not None:
            self._remaining -= 1
            if self._remaining <= 0:
                self.stopped = True

    def window(self) -> np.ndarray:
        """Captured samples, oldest first, shape ``(n_captured, width)``."""
        if self._count < self.depth:
            return self._mem[: self._count].copy()
        return np.roll(self._mem, -self._head, axis=0).copy()

    def channel(self, index: int) -> np.ndarray:
        """One channel's captured history, oldest first."""
        if not 0 <= index < self.width:
            raise DebugFlowError(f"channel {index} out of range")
        return self.window()[:, index]


class LaneTraceBuffer:
    """Lane-packed capture memory: one :class:`TraceBuffer` per SIMD lane.

    The lane-parallel debug engine runs up to 64 scenarios through one
    packed emulation; each cell of this buffer is a ``uint64`` word whose
    bit *k* is lane *k*'s sample for that (cycle, channel).  One
    :meth:`capture` call per cycle records *every* lane — O(width)
    regardless of lane count, which is what keeps trace capture off the
    per-scenario cost sheet.

    Per-lane trigger/stop state is tracked so one lane can freeze its
    post-trigger window while the others keep recording: captures blend
    ``mem = (mem & ~active) | (sample & active)``, so a stopped lane's
    bits survive later wraps of the ring untouched.  :meth:`window`
    extracts one lane's history bit-for-bit identical to what a solo
    :class:`TraceBuffer` would have recorded.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        *,
        n_lanes: int = 1,
        post_trigger: int | None = None,
    ):
        if width <= 0 or depth <= 0:
            raise DebugFlowError("trace buffer width/depth must be positive")
        if not 1 <= n_lanes <= 64:
            raise DebugFlowError("lane count must be within 1..64")
        self.width = width
        self.depth = depth
        self.n_lanes = n_lanes
        self.post_trigger = depth // 2 if post_trigger is None else post_trigger
        self._mem = np.zeros((depth, width), dtype=np.uint64)
        self.reset()

    def reset(self) -> None:
        self._mem[:] = 0
        self._head = 0
        self._cycle = 0
        self._count = np.zeros(self.n_lanes, dtype=np.int64)
        self._triggered_at = np.full(self.n_lanes, -1, dtype=np.int64)
        self._remaining = np.full(self.n_lanes, -1, dtype=np.int64)
        self._stopped = np.zeros(self.n_lanes, dtype=bool)
        self._stop_head = np.zeros(self.n_lanes, dtype=np.int64)
        self._active_mask = np.uint64((1 << self.n_lanes) - 1)

    @property
    def cycle(self) -> int:
        """Cycles observed since reset (captured or not)."""
        return self._cycle

    def stopped(self, lane: int = 0) -> bool:
        return bool(self._stopped[lane])

    def triggered_at(self, lane: int = 0) -> int | None:
        t = int(self._triggered_at[lane])
        return None if t < 0 else t

    def capture(self, sample: np.ndarray, *, trigger_mask: int = 0) -> None:
        """Record one cycle's packed sample for every non-stopped lane.

        ``sample`` holds one ``uint64`` word per channel (bit *k* = lane
        *k*).  ``trigger_mask`` arms the post-trigger stop for the lanes
        whose bits are set, mirroring ``TraceBuffer.capture(trigger=...)``
        lane by lane.
        """
        self._cycle += 1
        amask = self._active_mask
        if not amask:
            return
        row = np.asarray(sample, dtype=np.uint64)
        if row.shape != (self.width,):
            raise DebugFlowError(
                f"sample width {row.shape} != buffer width {self.width}"
            )
        self._mem[self._head] = (self._mem[self._head] & ~amask) | (row & amask)
        self._head = (self._head + 1) % self.depth
        active = ~self._stopped
        np.minimum(self._count + 1, self.depth, out=self._count, where=active)
        if trigger_mask:
            for lane in range(self.n_lanes):
                if (
                    (trigger_mask >> lane) & 1
                    and active[lane]
                    and self._triggered_at[lane] < 0
                ):
                    self._triggered_at[lane] = self._cycle - 1
                    self._remaining[lane] = self.post_trigger
        armed = active & (self._remaining >= 0)
        if armed.any():
            self._remaining[armed] -= 1
            newly = armed & (self._remaining <= 0)
            if newly.any():
                self._stopped |= newly
                self._stop_head[newly] = self._head
                live = np.flatnonzero(~self._stopped)
                self._active_mask = np.uint64(
                    sum(1 << int(l) for l in live)
                )

    def window(self, lane: int = 0) -> np.ndarray:
        """Lane ``lane``'s captured samples, oldest first, ``uint8``."""
        if not 0 <= lane < self.n_lanes:
            raise DebugFlowError(f"lane {lane} out of range")
        count = int(self._count[lane])
        end = int(self._stop_head[lane]) if self._stopped[lane] else self._head
        start = (end - count) % self.depth
        idx = (start + np.arange(count)) % self.depth
        return ((self._mem[idx] >> np.uint64(lane)) & np.uint64(1)).astype(
            np.uint8
        )

    def channel(self, index: int, lane: int = 0) -> np.ndarray:
        """One channel's captured history for one lane, oldest first."""
        if not 0 <= index < self.width:
            raise DebugFlowError(f"channel {index} out of range")
        return self.window(lane)[:, index]


class LaneView:
    """A single lane of a :class:`LaneTraceBuffer`, with the solo
    :class:`TraceBuffer` read API — what :class:`~repro.core.debug.
    DebugSession` hands back as its ``trace`` now that the session is a
    one-lane facade over the engine.  ``reset`` clears the *shared*
    buffer, which is exact for the facade (one lane) and what batch
    drivers want anyway (all lanes re-arm together each turn)."""

    def __init__(self, buffer: LaneTraceBuffer, lane: int = 0) -> None:
        self._buffer = buffer
        self.lane = lane

    @property
    def width(self) -> int:
        return self._buffer.width

    @property
    def depth(self) -> int:
        return self._buffer.depth

    @property
    def post_trigger(self) -> int:
        return self._buffer.post_trigger

    @property
    def cycle(self) -> int:
        return self._buffer.cycle

    @property
    def stopped(self) -> bool:
        return self._buffer.stopped(self.lane)

    @property
    def triggered_at(self) -> int | None:
        return self._buffer.triggered_at(self.lane)

    def reset(self) -> None:
        self._buffer.reset()

    def window(self) -> np.ndarray:
        return self._buffer.window(self.lane)

    def channel(self, index: int) -> np.ndarray:
        return self._buffer.channel(index, self.lane)
