"""Parameter declarations and assignments.

A *parameter* (§II-A of the paper) is a design input that changes rarely —
here, the debug-network select inputs that change only between debugging
runs.  The flow treats parameters as constants folded into the
configuration, so a new parameter value means re-evaluating Boolean
functions and partially reconfiguring, never recompiling.

:class:`ParameterSpace` orders the parameters and converts between
name-keyed dicts and dense numpy vectors (the representation the SCG's
vectorized evaluator consumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import ParameterError

__all__ = ["Parameter", "ParameterSpace", "ParameterAssignment"]


@dataclass(frozen=True)
class Parameter:
    """A single named Boolean parameter with a dense index."""

    name: str
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ParameterError(f"parameter {self.name!r}: negative index")


class ParameterSpace:
    """An ordered collection of parameters.

    >>> sp = ParameterSpace(["sel_a", "sel_b"])
    >>> sp.index_of("sel_b")
    1
    >>> a = sp.assignment({"sel_a": 1})
    >>> a["sel_a"], a["sel_b"]
    (1, 0)
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._params: list[Parameter] = []
        self._by_name: dict[str, Parameter] = {}
        for n in names:
            self.add(n)

    def add(self, name: str) -> Parameter:
        """Declare a new parameter; returns its record."""
        if name in self._by_name:
            raise ParameterError(f"duplicate parameter {name!r}")
        p = Parameter(name, len(self._params))
        self._params.append(p)
        self._by_name[name] = p
        return p

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [p.name for p in self._params]

    def get(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise ParameterError(f"unknown parameter {name!r}") from None

    def index_of(self, name: str) -> int:
        return self.get(name).index

    def assignment(
        self, values: Mapping[str, int] | None = None, *, default: int = 0
    ) -> "ParameterAssignment":
        """Build an assignment; unnamed parameters take ``default``."""
        vec = np.full(len(self._params), default, dtype=np.uint8)
        if values:
            for name, v in values.items():
                if v not in (0, 1):
                    raise ParameterError(
                        f"parameter {name!r}: value must be 0/1, got {v!r}"
                    )
                vec[self.index_of(name)] = v
        return ParameterAssignment(self, vec)

    def zeros(self) -> "ParameterAssignment":
        return self.assignment({})


class ParameterAssignment:
    """A concrete 0/1 value for every parameter of a space."""

    def __init__(self, space: ParameterSpace, vector: np.ndarray) -> None:
        if vector.shape != (len(space),):
            raise ParameterError(
                f"assignment vector has shape {vector.shape}, "
                f"space has {len(space)} parameters"
            )
        self.space = space
        self.vector = vector.astype(np.uint8, copy=True)

    def __getitem__(self, name: str) -> int:
        return int(self.vector[self.space.index_of(name)])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParameterAssignment)
            and self.space is other.space
            and np.array_equal(self.vector, other.vector)
        )

    def with_values(self, values: Mapping[str, int]) -> "ParameterAssignment":
        """A copy with some parameters overridden."""
        out = ParameterAssignment(self.space, self.vector)
        for name, v in values.items():
            if v not in (0, 1):
                raise ParameterError(f"value for {name!r} must be 0/1")
            out.vector[self.space.index_of(name)] = v
        return out

    def diff(self, other: "ParameterAssignment") -> list[str]:
        """Names of parameters whose values differ."""
        if self.space is not other.space:
            raise ParameterError("assignments from different spaces")
        idx = np.nonzero(self.vector != other.vector)[0]
        return [self.space.names[i] for i in idx]

    def as_dict(self) -> dict[str, int]:
        return {p.name: int(self.vector[p.index]) for p in self.space}

    def __repr__(self) -> str:
        on = [p.name for p in self.space if self.vector[p.index]]
        return f"ParameterAssignment(on={on[:8]}{'...' if len(on) > 8 else ''})"
