"""Device timing model for the run-time overhead study (§V-C.2).

The paper quantifies the online stage analytically:

* evaluating the Boolean functions of a parameterized configuration takes
  at most **50 µs** on the embedded processor driving the HWICAP;
* a **full** reconfiguration of the Virtex-5 device takes **176 ms** —
  three orders of magnitude slower;
* at 400 MHz with a 4-clock-tick debug loop, the 50 µs overhead equals
  **5000 debugging turns**, the break-even point for switching signal sets.

:class:`Virtex5Model` reproduces those numbers from first principles
(bitstream size / ICAP bandwidth / per-bit evaluation cost) so the
benchmark can regenerate the section's claims and also price *our* measured
designs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Virtex5Model", "ReconfigCostReport"]


@dataclass(frozen=True)
class Virtex5Model:
    """Analytic cost model of a Virtex-5-class device with HWICAP access.

    Defaults are calibrated to the paper's quoted numbers:

    * ``full_bitstream_bits`` ≈ an LX-class Virtex-5 bitstream (≈70.4 Mbit);
      at the HWICAP's effective ≈50 MB/s (the processor-driven ICAP path is
      far below the port's theoretical 400 MB/s) a full load takes the
      quoted **176 ms**;
    * ``eval_ns_per_expr_node`` chosen such that typical debug-network
      PConfs (tens of thousands of expression nodes) evaluate within the
      quoted ≤50 µs on the embedded processor;
    * ``fpga_clock_hz`` = 400 MHz and ``debug_loop_ticks`` = 4, the paper's
      fully-pipelined debug-loop assumption.
    """

    full_bitstream_bits: int = 70_412_032
    icap_bytes_per_s: float = 50e6
    frame_bits: int = 1312
    frame_overhead_bits: int = 96
    eval_ns_per_expr_node: float = 1.5
    specialize_ns_per_bit: float = 0.6
    fpga_clock_hz: float = 400e6
    debug_loop_ticks: int = 4

    # -- primitive costs ------------------------------------------------------

    def full_reconfig_s(self) -> float:
        """Time to shift in the complete bitstream through the ICAP."""
        return self.full_bitstream_bits / 8.0 / self.icap_bytes_per_s

    def partial_reconfig_s(self, n_frames: int) -> float:
        """Time to write ``n_frames`` configuration frames."""
        bits = n_frames * (self.frame_bits + self.frame_overhead_bits)
        return bits / 8.0 / self.icap_bytes_per_s

    def evaluation_s(self, n_expr_nodes: int, n_tunable_bits: int) -> float:
        """SCG Boolean-function evaluation time on the embedded CPU."""
        return (
            n_expr_nodes * self.eval_ns_per_expr_node
            + n_tunable_bits * self.specialize_ns_per_bit
        ) * 1e-9

    def debug_turn_s(self) -> float:
        """One debugging turn of the Fig. 4(b) loop."""
        return self.debug_loop_ticks / self.fpga_clock_hz

    # -- derived quantities ------------------------------------------------------

    def specialization_s(
        self, n_expr_nodes: int, n_tunable_bits: int, n_frames_touched: int
    ) -> float:
        """Evaluation + partial reconfiguration for one new signal set."""
        return self.evaluation_s(n_expr_nodes, n_tunable_bits) + (
            self.partial_reconfig_s(n_frames_touched)
        )

    def break_even_turns(self, overhead_s: float) -> int:
        """Debugging turns whose duration equals ``overhead_s``."""
        return max(1, round(overhead_s / self.debug_turn_s()))

    def report(
        self,
        *,
        n_expr_nodes: int,
        n_tunable_bits: int,
        n_frames_touched: int,
    ) -> "ReconfigCostReport":
        eval_s = self.evaluation_s(n_expr_nodes, n_tunable_bits)
        partial_s = self.partial_reconfig_s(n_frames_touched)
        full_s = self.full_reconfig_s()
        spec_s = eval_s + partial_s
        return ReconfigCostReport(
            evaluation_s=eval_s,
            partial_reconfig_s=partial_s,
            specialization_s=spec_s,
            full_reconfig_s=full_s,
            speedup_vs_full=full_s / spec_s if spec_s > 0 else float("inf"),
            break_even_turns=self.break_even_turns(spec_s),
            debug_turn_s=self.debug_turn_s(),
        )


@dataclass(frozen=True)
class ReconfigCostReport:
    """All §V-C.2 quantities for one specialization."""

    evaluation_s: float
    partial_reconfig_s: float
    specialization_s: float
    full_reconfig_s: float
    speedup_vs_full: float
    break_even_turns: int
    debug_turn_s: float

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("PConf evaluation", f"{self.evaluation_s * 1e6:.1f} us"),
            ("partial reconfiguration", f"{self.partial_reconfig_s * 1e6:.1f} us"),
            ("specialization total", f"{self.specialization_s * 1e6:.1f} us"),
            ("full reconfiguration", f"{self.full_reconfig_s * 1e3:.1f} ms"),
            ("speedup vs full", f"{self.speedup_vs_full:.0f}x"),
            ("debug turn", f"{self.debug_turn_s * 1e9:.0f} ns"),
            ("break-even turns", str(self.break_even_turns)),
        ]
