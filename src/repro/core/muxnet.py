"""Signal parameterisation: the reconfigurable multiplexer network.

This is the paper's added CAD step (§IV-A.2, Fig. 5/6): starting from the
synthesized netlist, every observable signal is connected through a network
of 2:1 multiplexers to a small number of trace-buffer inputs.  The mux
select inputs are fresh primary inputs annotated as *parameters*: in the
proposed flow they fold into the configuration (TCON/TLUT), in the
conventional baseline they are ordinary inputs and the muxes cost LUTs.

Layout: the taps are split round-robin over ``n_buffer_inputs`` groups; each
group gets a balanced binary tree of 2:1 muxes, one select parameter per
mux.  Observing signal *s* at its group's buffer input means asserting the
select literals along *s*'s leaf-to-root path (don't-care elsewhere) — the
condition the SCG evaluates.

The conventional baseline can additionally instantiate ILA-style trigger
units per buffer input (``with_triggers=True``): pattern-match comparators
plus an arming flop, built from ordinary gates.  Vendor debug cores ship as
pre-synthesized macros, so all instrumentation nodes are reported in
:attr:`InstrumentedDesign.macro_nodes` for the mapper's boundary set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DebugFlowError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable
from repro.core.annotate import ParAnnotation
from repro.core.parameters import ParameterSpace

__all__ = ["TraceGroup", "InstrumentedDesign", "build_trace_network", "default_taps"]

#: mux function over fan-in order (a, b, sel): sel=0 → a, sel=1 → b
_MUX_TT = TruthTable.mux(
    TruthTable.var(2, 3), TruthTable.var(0, 3), TruthTable.var(1, 3)
)
_XNOR2 = ~(TruthTable.var(0, 2) ^ TruthTable.var(1, 2))
_OR2 = TruthTable.var(0, 2) | TruthTable.var(1, 2)
_AND2 = TruthTable.var(0, 2) & TruthTable.var(1, 2)


@dataclass
class TraceGroup:
    """One trace-buffer input and its mux tree."""

    index: int
    po_name: str
    root: int
    leaves: list[int]
    mux_nodes: list[int] = field(default_factory=list)
    #: per tapped node: select literals (param name, required value) on the
    #: path from that leaf to the tree root.
    path: dict[int, list[tuple[str, int]]] = field(default_factory=dict)


@dataclass
class InstrumentedDesign:
    """The instrumented netlist plus all debug metadata."""

    network: LogicNetwork
    taps: list[int]
    param_space: ParameterSpace
    param_nodes: dict[str, int]
    groups: list[TraceGroup]
    trigger_nodes: list[int] = field(default_factory=list)
    trigger_inputs: list[str] = field(default_factory=list)

    @property
    def param_ids(self) -> frozenset[int]:
        return frozenset(self.param_nodes.values())

    @property
    def mux_nodes(self) -> list[int]:
        return [m for g in self.groups for m in g.mux_nodes]

    @property
    def macro_nodes(self) -> frozenset[int]:
        """All instrumentation nodes (mux network + triggers)."""
        return frozenset(self.mux_nodes) | frozenset(self.trigger_nodes)

    @property
    def n_buffer_inputs(self) -> int:
        return len(self.groups)

    def group_of(self, tap: int) -> TraceGroup:
        for g in self.groups:
            if tap in g.path:
                return g
        raise DebugFlowError(
            f"signal {self.network.node_name(tap)!r} is not tapped"
        )

    def selection_for(self, signals: list[str]) -> dict[str, int]:
        """Parameter values observing the named signals simultaneously.

        Each trace-buffer input can observe one signal at a time, so at
        most one requested signal may live in any group.  Unconstrained
        selects are returned as 0.
        """
        values: dict[str, int] = {}
        used_groups: set[int] = set()
        for name in signals:
            nid = self.network.find(name)
            if nid is None:
                raise DebugFlowError(f"unknown signal {name!r}")
            group = self.group_of(nid)
            if group.index in used_groups:
                raise DebugFlowError(
                    f"signals {signals!r} collide in trace group "
                    f"{group.index} (one signal per buffer input)"
                )
            used_groups.add(group.index)
            for pname, bit in group.path[nid]:
                prev = values.get(pname)
                if prev is not None and prev != bit:
                    raise DebugFlowError(
                        f"conflicting select requirement on {pname!r}"
                    )
                values[pname] = bit
        return values

    def observed_at(self, values: dict[str, int]) -> dict[str, str]:
        """Inverse of :meth:`selection_for`: buffer PO → observed signal.

        Given (possibly partial) select values, resolve which tapped signal
        each trace-buffer input actually sees; missing selects default 0.
        """
        out: dict[str, str] = {}
        net = self.network
        for g in self.groups:
            node = g.root
            # walk the tree downward following select values
            while node in self._mux_lookup:
                a, b, sel_name = self._mux_lookup[node]
                bit = values.get(sel_name, 0)
                node = b if bit else a
            out[g.po_name] = net.node_name(node)
        return out

    @property
    def _mux_lookup(self) -> dict[int, tuple[int, int, str]]:
        cache = getattr(self, "_mux_lookup_cache", None)
        if cache is None:
            cache = {}
            net = self.network
            for g in self.groups:
                for m in g.mux_nodes:
                    fanins = net.fanins(m)
                    if len(fanins) != 3:
                        continue  # the tb_* interface buffer, not a mux
                    a, b, sel = fanins
                    cache[m] = (a, b, net.node_name(sel))
            object.__setattr__(self, "_mux_lookup_cache", cache)
        return cache

    def annotation(self) -> ParAnnotation:
        """Produce the ``.par`` view of this instrumentation."""
        return ParAnnotation(
            param_names=list(self.param_space.names),
            tap_names=[self.network.node_name(t) for t in self.taps],
            buffer_names=[g.po_name for g in self.groups],
        )


def default_taps(net: LogicNetwork) -> list[int]:
    """The default observable set: every gate output and latch output."""
    taps = [nid for nid in net.gates()]
    taps += [latch.q for latch in net.latches]
    return taps


def build_trace_network(
    net: LogicNetwork,
    taps: list[int] | None = None,
    *,
    n_buffer_inputs: int | None = None,
    with_triggers: bool = False,
    trigger_pattern_width: int = 3,
    param_prefix: str = "dbg_sel",
) -> InstrumentedDesign:
    """Instrument a copy of ``net`` with the trace mux network.

    Parameters
    ----------
    taps:
        Node ids (of ``net``) to make observable; defaults to every gate
        and latch output (the paper: "all signals are multiplexed to
        trace-buffers").
    n_buffer_inputs:
        Number of trace-buffer inputs (groups); defaults to ``len(taps)//4``
        clamped to at least 1 — a quarter of the signals observable per
        debugging run, the ratio used throughout our experiments.
    with_triggers:
        Instantiate conventional ILA trigger units (pattern comparators +
        arming flop) per buffer input.  The proposed flow keeps triggers
        out of the fabric, so this defaults to off.
    """
    if taps is None:
        taps = default_taps(net)
    if not taps:
        raise DebugFlowError("no signals to observe")
    seen: set[int] = set()
    for t in taps:
        if t in seen:
            raise DebugFlowError(f"duplicate tap id {t}")
        seen.add(t)
        if not 0 <= t < net.n_nodes:
            raise DebugFlowError(f"tap id {t} out of range")
        if net.kind(t) == NodeKind.PI:
            raise DebugFlowError(
                f"PI {net.node_name(t)!r} needs no tap (already observable)"
            )

    if n_buffer_inputs is None:
        n_buffer_inputs = max(1, len(taps) // 4)
    n_buffer_inputs = min(n_buffer_inputs, len(taps))

    work = net.copy()
    space = ParameterSpace()
    param_nodes: dict[str, int] = {}
    groups: list[TraceGroup] = []

    def new_param(name: str) -> int:
        space.add(name)
        nid = work.add_pi(name)
        param_nodes[name] = nid
        return nid

    for g_idx in range(n_buffer_inputs):
        leaves = [taps[i] for i in range(g_idx, len(taps), n_buffer_inputs)]
        group = TraceGroup(
            index=g_idx, po_name=f"tb_{g_idx}", root=-1, leaves=list(leaves)
        )
        # balanced binary tree, one select parameter per mux
        frontier: list[int] = list(leaves)
        paths: dict[int, list[tuple[str, int]]] = {l: [] for l in leaves}
        # membership map: which original leaves sit under each frontier node
        under: dict[int, list[int]] = {l: [l] for l in leaves}
        level = 0
        while len(frontier) > 1:
            nxt: list[int] = []
            nxt_under: dict[int, list[int]] = {}
            for i in range(0, len(frontier) - 1, 2):
                a, b = frontier[i], frontier[i + 1]
                sel_name = f"{param_prefix}_{g_idx}_{level}_{i // 2}"
                sel = new_param(sel_name)
                m = work.add_gate(
                    work.fresh_name(f"dbg_mux_{g_idx}_{level}_{i // 2}"),
                    (a, b, sel),
                    _MUX_TT,
                )
                group.mux_nodes.append(m)
                for leaf in under[a]:
                    paths[leaf].append((sel_name, 0))
                for leaf in under[b]:
                    paths[leaf].append((sel_name, 1))
                nxt.append(m)
                nxt_under[m] = under[a] + under[b]
            if len(frontier) % 2:
                carry = frontier[-1]
                nxt.append(carry)
                nxt_under[carry] = under[carry]
            frontier = nxt
            under = nxt_under
            level += 1
        group.root = frontier[0]
        group.path = paths
        work.add_po(group.po_name)
        # the PO name must resolve: alias the root under the tb name by
        # adding a buffer gate named tb_g (keeps original root name intact)
        work.po_names.pop()
        tb_gate = work.add_gate(
            group.po_name, (group.root,), TruthTable.var(0, 1)
        )
        group.mux_nodes.append(tb_gate)
        work.add_po(group.po_name)
        groups.append(group)

    trigger_nodes: list[int] = []
    trigger_inputs: list[str] = []
    if with_triggers:
        for g in groups:
            root = work.require(g.po_name)
            stage: list[int] = []
            for i in range(trigger_pattern_width):
                pat = work.add_pi(f"trig_pat_{g.index}_{i}")
                msk = work.add_pi(f"trig_msk_{g.index}_{i}")
                trigger_inputs += [f"trig_pat_{g.index}_{i}", f"trig_msk_{g.index}_{i}"]
                cmp_n = work.add_gate(
                    f"trig_cmp_{g.index}_{i}", (root, pat), _XNOR2
                )
                m_n = work.add_gate(
                    f"trig_m_{g.index}_{i}", (cmp_n, msk), _OR2
                )
                trigger_nodes += [cmp_n, m_n]
                stage.append(m_n)
            # AND-reduce the masked comparator outputs
            while len(stage) > 1:
                nxt = []
                for i in range(0, len(stage) - 1, 2):
                    r = work.add_gate(
                        work.fresh_name(f"trig_red_{g.index}"),
                        (stage[i], stage[i + 1]),
                        _AND2,
                    )
                    trigger_nodes.append(r)
                    nxt.append(r)
                if len(stage) % 2:
                    nxt.append(stage[-1])
                stage = nxt
            arm_q = work.add_latch(f"trig_arm_{g.index}", init=0)
            hold = work.add_gate(
                f"trig_hold_{g.index}", (stage[0], arm_q), _OR2
            )
            trigger_nodes.append(hold)
            work.set_latch_driver(arm_q, hold)
            work.add_po(f"trig_hold_{g.index}")

    return InstrumentedDesign(
        network=work,
        taps=list(taps),
        param_space=space,
        param_nodes=param_nodes,
        groups=groups,
        trigger_nodes=trigger_nodes,
        trigger_inputs=trigger_inputs,
    )
