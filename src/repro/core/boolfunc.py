"""Boolean functions of parameters (the PConf's tunable-bit expressions).

A parameterized configuration expresses some bitstream bits as Boolean
functions of the debug parameters (§II-A).  :class:`BoolExpr` is a
hash-consed expression DAG with constant folding; identical subexpressions
are shared, so the SCG can memoize one evaluation per distinct node when
specializing thousands of bits (see :mod:`repro.core.scg`).

Expressions are built with the module-level constructors or operators::

    e = (bf_var(0) & ~bf_var(3)) | bf_const(0)

Mutual-exclusivity queries (:func:`mutually_exclusive`) power the router's
wire sharing: two tunable connections may occupy one wire iff their
activation conditions can never be true together.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "BoolExpr",
    "bf_const",
    "bf_var",
    "bf_not",
    "bf_and",
    "bf_or",
    "bf_xor",
    "bf_mux",
    "bf_conj",
    "mutually_exclusive",
]


class BoolExpr:
    """Immutable node of a Boolean expression DAG over parameter indices."""

    __slots__ = ("op", "args", "var", "value", "_support", "__weakref__")

    _interned: dict[tuple, "BoolExpr"] = {}

    def __init__(
        self,
        op: str,
        args: tuple["BoolExpr", ...] = (),
        var: int = -1,
        value: int = 0,
    ) -> None:
        self.op = op
        self.args = args
        self.var = var
        self.value = value
        self._support: frozenset[int] | None = None

    # -- interning ---------------------------------------------------------

    @classmethod
    def _make(cls, op: str, args: tuple = (), var: int = -1, value: int = 0):
        key = (op, tuple(id(a) for a in args), var, value)
        got = cls._interned.get(key)
        if got is None:
            got = cls(op, args, var, value)
            cls._interned[key] = got
        return got

    # -- queries ------------------------------------------------------------

    def is_const(self) -> bool:
        return self.op == "const"

    def support(self) -> frozenset[int]:
        """Parameter indices the expression may depend on."""
        if self._support is None:
            if self.op == "const":
                self._support = frozenset()
            elif self.op == "var":
                self._support = frozenset((self.var,))
            else:
                acc: set[int] = set()
                for a in self.args:
                    acc |= a.support()
                self._support = frozenset(acc)
        return self._support

    def evaluate(self, vector: np.ndarray | Mapping[int, int]) -> int:
        """Evaluate against a dense 0/1 vector (or index→bit mapping)."""
        memo: dict[int, int] = {}
        return self._eval(vector, memo)

    def _eval(self, vec, memo: dict[int, int]) -> int:
        got = memo.get(id(self))
        if got is not None:
            return got
        op = self.op
        if op == "const":
            r = self.value
        elif op == "var":
            r = int(vec[self.var]) & 1
        elif op == "not":
            r = 1 - self.args[0]._eval(vec, memo)
        elif op == "and":
            r = 1
            for a in self.args:
                if a._eval(vec, memo) == 0:
                    r = 0
                    break
        elif op == "or":
            r = 0
            for a in self.args:
                if a._eval(vec, memo) == 1:
                    r = 1
                    break
        elif op == "xor":
            r = 0
            for a in self.args:
                r ^= a._eval(vec, memo)
        else:  # pragma: no cover - constructors prevent this
            raise ParameterError(f"unknown op {op!r}")
        memo[id(self)] = r
        return r

    def n_nodes(self) -> int:
        """Distinct DAG nodes — the SCG's per-bit evaluation cost proxy."""
        seen: set[int] = set()

        def walk(e: "BoolExpr") -> None:
            if id(e) in seen:
                return
            seen.add(id(e))
            for a in e.args:
                walk(a)

        walk(self)
        return len(seen)

    # -- operators -----------------------------------------------------------

    def __invert__(self) -> "BoolExpr":
        return bf_not(self)

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return bf_and(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return bf_or(self, other)

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return bf_xor(self, other)

    def __repr__(self) -> str:
        if self.op == "const":
            return f"bf_const({self.value})"
        if self.op == "var":
            return f"p{self.var}"
        if self.op == "not":
            return f"~{self.args[0]!r}"
        sym = {"and": " & ", "or": " | ", "xor": " ^ "}[self.op]
        return "(" + sym.join(repr(a) for a in self.args) + ")"


_TRUE = BoolExpr("const", value=1)
_FALSE = BoolExpr("const", value=0)


def bf_const(value: int) -> BoolExpr:
    """Constant 0 or 1 expression."""
    return _TRUE if value else _FALSE


def bf_var(index: int) -> BoolExpr:
    """The parameter with dense index ``index``."""
    if index < 0:
        raise ParameterError(f"negative parameter index {index}")
    return BoolExpr._make("var", var=index)


def bf_not(e: BoolExpr) -> BoolExpr:
    if e.op == "const":
        return bf_const(1 - e.value)
    if e.op == "not":
        return e.args[0]
    return BoolExpr._make("not", (e,))


def _flatten(op: str, args: Iterable[BoolExpr]) -> list[BoolExpr]:
    out: list[BoolExpr] = []
    for a in args:
        if a.op == op:
            out.extend(a.args)
        else:
            out.append(a)
    return out


def bf_and(*args: BoolExpr) -> BoolExpr:
    flat = _flatten("and", args)
    kept: list[BoolExpr] = []
    seen: set[int] = set()
    for a in flat:
        if a.op == "const":
            if a.value == 0:
                return _FALSE
            continue
        if id(a) in seen:
            continue
        seen.add(id(a))
        kept.append(a)
    for a in kept:  # x & ~x == 0
        if a.op == "not" and id(a.args[0]) in seen:
            return _FALSE
    if not kept:
        return _TRUE
    if len(kept) == 1:
        return kept[0]
    return BoolExpr._make("and", tuple(kept))


def bf_or(*args: BoolExpr) -> BoolExpr:
    flat = _flatten("or", args)
    kept: list[BoolExpr] = []
    seen: set[int] = set()
    for a in flat:
        if a.op == "const":
            if a.value == 1:
                return _TRUE
            continue
        if id(a) in seen:
            continue
        seen.add(id(a))
        kept.append(a)
    for a in kept:  # x | ~x == 1
        if a.op == "not" and id(a.args[0]) in seen:
            return _TRUE
    if not kept:
        return _FALSE
    if len(kept) == 1:
        return kept[0]
    return BoolExpr._make("or", tuple(kept))


def bf_xor(*args: BoolExpr) -> BoolExpr:
    flat = _flatten("xor", args)
    const = 0
    kept: list[BoolExpr] = []
    for a in flat:
        if a.op == "const":
            const ^= a.value
        else:
            kept.append(a)
    # cancel duplicate pairs
    counts: dict[int, int] = {}
    uniq: dict[int, BoolExpr] = {}
    for a in kept:
        counts[id(a)] = counts.get(id(a), 0) + 1
        uniq[id(a)] = a
    final = [uniq[i] for i, c in counts.items() if c % 2 == 1]
    if not final:
        return bf_const(const)
    expr = final[0] if len(final) == 1 else BoolExpr._make("xor", tuple(final))
    return bf_not(expr) if const else expr


def bf_mux(sel: BoolExpr, a: BoolExpr, b: BoolExpr) -> BoolExpr:
    """``sel ? b : a``."""
    return bf_or(bf_and(bf_not(sel), a), bf_and(sel, b))


def bf_conj(literals: Iterable[tuple[int, int]]) -> BoolExpr:
    """Conjunction of parameter literals ``(index, phase)``.

    >>> e = bf_conj([(0, 1), (3, 0)])
    >>> e.evaluate({0: 1, 3: 0})
    1
    """
    terms = [
        bf_var(i) if phase else bf_not(bf_var(i)) for i, phase in literals
    ]
    return bf_and(*terms) if terms else _TRUE


def mutually_exclusive(a: BoolExpr, b: BoolExpr, *, max_vars: int = 20) -> bool:
    """Can ``a`` and ``b`` never be true simultaneously?

    Decided exactly by enumerating the joint support when it has at most
    ``max_vars`` variables; returns ``False`` (conservative: "may overlap")
    beyond that.  Debug-path conditions are conjunctions over one mux tree's
    selects, so supports stay small in practice.
    """
    sup = sorted(a.support() | b.support())
    if len(sup) > max_vars:
        return False
    # Fast path: conjunctions conflict iff some variable appears in
    # opposite phases.
    lits_a = _as_conjunction(a)
    lits_b = _as_conjunction(b)
    if lits_a is not None and lits_b is not None:
        for var, phase in lits_a.items():
            if var in lits_b and lits_b[var] != phase:
                return True
        # compatible conjunctions are simultaneously satisfiable
        return False
    vec: dict[int, int] = {}
    for point in range(1 << len(sup)):
        for j, var in enumerate(sup):
            vec[var] = (point >> j) & 1
        if a.evaluate(vec) and b.evaluate(vec):
            return False
    return True


def _as_conjunction(e: BoolExpr) -> dict[int, int] | None:
    """If ``e`` is a conjunction of literals, map var→phase; else None."""
    lits: dict[int, int] = {}

    def add(term: BoolExpr) -> bool:
        if term.op == "var":
            if lits.get(term.var, 1) == 0:
                return False
            lits[term.var] = 1
            return True
        if term.op == "not" and term.args[0].op == "var":
            v = term.args[0].var
            if lits.get(v, 0) == 1:
                return False
            lits[v] = 0
            return True
        return False

    if e.op == "const":
        return lits if e.value == 1 else None
    if e.op in ("var", "not"):
        return lits if add(e) else None
    if e.op == "and":
        for t in e.args:
            if not add(t):
                return None
        return lits
    return None
