"""The Specialized Configuration Generator (SCG, §IV-B).

On the real system the SCG runs on an embedded processor: it evaluates the
Boolean functions of the parameterized configuration for the chosen
parameter values and swaps the changed configuration frames into the FPGA
through the HWICAP.  Here it wraps a
:class:`~repro.core.pconf.ParameterizedBitstream` plus a frame geometry,
tracks the currently-loaded configuration, and reports both the measured
software cost and the modeled on-device cost of every respecialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpecializationError
from repro.core.costmodel import ReconfigCostReport, Virtex5Model
from repro.core.parameters import ParameterAssignment
from repro.core.pconf import ParameterizedBitstream, SpecializeStats

__all__ = ["SpecializedConfigGenerator", "SpecializationRecord"]


@dataclass(frozen=True)
class SpecializationRecord:
    """One respecialization: what changed and what it cost."""

    stats: SpecializeStats
    frames_touched: tuple[int, ...]
    device_cost: ReconfigCostReport
    software_seconds: float


@dataclass
class SpecializedConfigGenerator:
    """Evaluates PConfs into concrete configurations, frame-aware.

    Parameters
    ----------
    pconf:
        The parameterized bitstream produced by the offline stage.
    frame_bits:
        Configuration frame size — the granularity of partial
        reconfiguration (HWICAP writes whole frames).
    model:
        Device timing model used to price each operation.
    """

    pconf: ParameterizedBitstream
    frame_bits: int = 1312
    model: Virtex5Model = field(default_factory=Virtex5Model)
    current_bits: np.ndarray | None = None
    history: list[SpecializationRecord] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return -(-self.pconf.n_bits // self.frame_bits) if self.pconf.n_bits else 0

    def _frames_of_changes(self, old: np.ndarray, new: np.ndarray) -> tuple[int, ...]:
        changed = np.nonzero(old != new)[0]
        if changed.size == 0:
            return ()
        return tuple(sorted(set((changed // self.frame_bits).tolist())))

    def load_full(self, assignment: ParameterAssignment) -> SpecializationRecord:
        """Initial full configuration load (all frames written)."""
        import time

        t0 = time.perf_counter()
        bits, stats = self.pconf.specialize(assignment)
        sw = time.perf_counter() - t0
        self.current_bits = bits
        frames = tuple(range(self.n_frames))
        cost = ReconfigCostReport(
            evaluation_s=self.model.evaluation_s(
                stats.n_expr_nodes_evaluated, stats.n_tunable_bits
            ),
            partial_reconfig_s=self.model.full_reconfig_s(),
            specialization_s=self.model.evaluation_s(
                stats.n_expr_nodes_evaluated, stats.n_tunable_bits
            )
            + self.model.full_reconfig_s(),
            full_reconfig_s=self.model.full_reconfig_s(),
            speedup_vs_full=1.0,
            break_even_turns=self.model.break_even_turns(
                self.model.full_reconfig_s()
            ),
            debug_turn_s=self.model.debug_turn_s(),
        )
        rec = SpecializationRecord(
            stats=stats, frames_touched=frames, device_cost=cost,
            software_seconds=sw,
        )
        self.history.append(rec)
        return rec

    def respecialize(self, assignment: ParameterAssignment) -> SpecializationRecord:
        """Specialize for a new signal set; only changed frames are rewritten.

        This is the paper's fast online path: Boolean-function evaluation
        (≤50 µs modeled) plus dynamic partial reconfiguration of the frames
        whose bits actually changed.
        """
        if self.current_bits is None:
            raise SpecializationError("no configuration loaded; call load_full")
        import time

        t0 = time.perf_counter()
        bits, stats = self.pconf.specialize(assignment)
        sw = time.perf_counter() - t0
        frames = self._frames_of_changes(self.current_bits, bits)
        self.current_bits = bits
        cost = self.model.report(
            n_expr_nodes=stats.n_expr_nodes_evaluated,
            n_tunable_bits=stats.n_tunable_bits,
            n_frames_touched=len(frames),
        )
        rec = SpecializationRecord(
            stats=stats, frames_touched=frames, device_cost=cost,
            software_seconds=sw,
        )
        self.history.append(rec)
        return rec

    def total_modeled_overhead_s(self) -> float:
        """Summed device-side specialization time over the session."""
        return sum(r.device_cost.specialization_s for r in self.history[1:])
