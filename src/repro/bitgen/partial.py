"""Frame-level partial-reconfiguration helpers.

HWICAP-style reconfiguration writes whole frames; these helpers compute
which frames differ between two configurations (the write set of a
respecialization) using packed 64-bit words — the vectorized diff is the
hot path of every debug turn.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitstreamError
from repro.util.bitops import pack_bits

__all__ = ["frame_view", "changed_frames"]


def frame_view(bits: np.ndarray, frame_bits: int) -> np.ndarray:
    """Reshape a dense bit array into (n_frames, frame_bits), zero-padded."""
    bits = np.asarray(bits, dtype=np.uint8)
    n_frames = -(-bits.size // frame_bits) if bits.size else 0
    padded = np.zeros(n_frames * frame_bits, dtype=np.uint8)
    padded[: bits.size] = bits
    return padded.reshape(n_frames, frame_bits)


def changed_frames(
    old: np.ndarray, new: np.ndarray, frame_bits: int
) -> list[int]:
    """Indices of frames whose contents differ between two configurations.

    >>> import numpy as np
    >>> a = np.zeros(10, dtype=np.uint8); b = a.copy(); b[7] = 1
    >>> changed_frames(a, b, frame_bits=4)
    [1]
    """
    old = np.asarray(old, dtype=np.uint8)
    new = np.asarray(new, dtype=np.uint8)
    if old.shape != new.shape:
        raise BitstreamError(
            f"configuration length mismatch: {old.shape} vs {new.shape}"
        )
    if frame_bits <= 0:
        raise BitstreamError("frame_bits must be positive")
    # packed word compare, then map differing bit positions to frames
    wa = pack_bits(old)
    wb = pack_bits(new)
    diff_words = np.nonzero(wa != wb)[0]
    if diff_words.size == 0:
        return []
    frames: set[int] = set()
    for w in diff_words.tolist():
        lo = w * 64
        hi = min(lo + 64, old.size)
        seg = np.nonzero(old[lo:hi] != new[lo:hi])[0]
        for b in seg.tolist():
            frames.add((lo + b) // frame_bits)
    return sorted(frames)
