"""Configuration-bit generation from the physical design.

Every configuration cell of the device gets its value here:

* **LUT masks** — the mapped function's truth table; TLUT masks become
  Boolean functions of the parameters (via the same cofactoring used for
  the virtual PConf);
* **BLE pin selects** — crossbar indices binding each LUT pin to the
  cluster IPIN (or BLE feedback) that carries its signal.  When a tunable
  connection delivers different signals to the same pin under different
  parameter values, the select-field bits are parameterized;
* **FF controls** — output-select (LUT vs FF) and initial state;
* **routing switch bits** — one per programmable RR edge used by the
  routing; edges used only by tunable branches carry the branch's
  activation condition.

The output is a :class:`~repro.core.pconf.ParameterizedBitstream` over the
device's :class:`~repro.arch.config_cells.ConfigLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config_cells import ConfigLayout
from repro.arch.routing_graph import RRGraph, RRNodeType
from repro.core.boolfunc import BoolExpr, bf_const, bf_or
from repro.core.muxnet import InstrumentedDesign
from repro.core.parameters import ParameterSpace
from repro.core.pconf import ParameterizedBitstream
from repro.core.virtual import tlut_bit_expr
from repro.errors import BitstreamError
from repro.pack.tpack import PackedDesign
from repro.place.tplace import Placement
from repro.route.troute import RoutingResult

__all__ = ["IoMap", "GeneratedBitstream", "generate_bitstream"]


@dataclass
class IoMap:
    """Pinout: pad sites bound to signal names (the device's 'UCF')."""

    inputs: dict[tuple[int, int, int], str] = field(default_factory=dict)
    outputs: dict[tuple[int, int, int], str] = field(default_factory=dict)


@dataclass
class GeneratedBitstream:
    """The PConf plus everything the emulator needs to decode it."""

    pconf: ParameterizedBitstream
    layout: ConfigLayout
    iomap: IoMap
    ble_names: dict[tuple[int, int, int], str] = field(default_factory=dict)
    """(x, y, ble) → produced signal name (debug/reporting aid)."""


def _pin_ipin_code(ptc: int) -> int:
    """Select code for cluster input pin ``ptc`` (0 = unconnected)."""
    return ptc + 1


def _pin_feedback_code(spec, ble_pos: int) -> int:
    """Select code for the feedback output of BLE ``ble_pos``."""
    return spec.n_cluster_inputs + ble_pos + 1


def generate_bitstream(
    packed: PackedDesign,
    placement: Placement,
    routing: RoutingResult,
    layout: ConfigLayout,
    design: InstrumentedDesign | None = None,
) -> GeneratedBitstream:
    """Emit the parameterized bitstream for a routed design."""
    physical = packed.physical
    rr = routing.rr
    spec = packed.arch
    space = design.param_space if design is not None else ParameterSpace()
    param_index_of: dict[int, int] = {}
    if design is not None:
        param_index_of = {
            nid: space.index_of(name)
            for name, nid in design.param_nodes.items()
        }

    pb = ParameterizedBitstream(space, layout.n_bits)
    sel_w = layout.select_width()
    if _pin_feedback_code(spec, spec.n_ble - 1) >= (1 << sel_w):
        raise BitstreamError("select field too narrow for the pin codes")

    # ---- cluster input delivery from routing ------------------------------
    # For each cluster, which IPIN carries which signal, under what condition.
    # connection sink paths end ... -> IPIN -> SINK.
    deliveries: dict[tuple[int, int], dict[int, list[tuple[int, BoolExpr]]]] = {}
    for conn in routing.connections:
        logical = conn.group if conn.group is not None else conn.signal
        for sink, path in conn.tree.sink_paths.items():
            if rr.ntype[sink] != RRNodeType.SINK:
                continue
            if len(path) < 2:
                raise BitstreamError("sink path too short")
            ipin = path[-2]
            if rr.ntype[ipin] != RRNodeType.IPIN:
                raise BitstreamError(
                    f"sink reached from {rr.node_str(ipin)}, expected IPIN"
                )
            x, y = int(rr.xs[sink]), int(rr.ys[sink])
            key = (x, y)
            deliveries.setdefault(key, {}).setdefault(logical, []).append(
                (int(rr.ptc[ipin]), conn.condition)
            )

    iomap = IoMap()
    ble_names: dict[tuple[int, int, int], str] = {}

    # ---- BLE cells -----------------------------------------------------------
    for cluster in packed.clusters:
        x, y = placement.cluster_site(cluster.index)
        produced_by_pos = {
            ble.output: pos for pos, ble in enumerate(cluster.bles)
        }
        lut_out_by_pos = {}
        for pos, ble in enumerate(cluster.bles):
            if ble.lut is not None:
                lut_out_by_pos[ble.lut.output] = pos

        for pos, ble in enumerate(cluster.bles):
            ble_names[(x, y, pos)] = physical.signal_name(ble.output)
            lut_base = layout.lut_base[(x, y, pos)]
            out_sel_bit, init_bit = layout.ble_ctrl[(x, y, pos)]

            atom = ble.lut
            inputs = atom.inputs if atom is not None else ble.inputs
            # pin select fields (code 0 = unconnected, the erased default,
            # so unused pins and unused BLEs need no explicit bits)
            for pin in range(spec.k):
                base = layout.pin_select_base[(x, y, pos, pin)]
                if pin >= len(inputs):
                    continue
                sig = inputs[pin]
                options: list[tuple[int, BoolExpr]]
                if sig in produced_by_pos and sig not in physical.tunable_groups:
                    options = [
                        (
                            _pin_feedback_code(spec, produced_by_pos[sig]),
                            bf_const(1),
                        )
                    ]
                else:
                    delivered = deliveries.get((x, y), {}).get(sig)
                    if delivered is None and sig in produced_by_pos:
                        options = [
                            (
                                _pin_feedback_code(spec, produced_by_pos[sig]),
                                bf_const(1),
                            )
                        ]
                    elif delivered is None:
                        raise BitstreamError(
                            f"cluster ({x},{y}): no route delivers signal "
                            f"{physical.signal_name(sig)!r}"
                        )
                    else:
                        options = [
                            (_pin_ipin_code(ptc), cond)
                            for ptc, cond in delivered
                        ]
                # merge options into per-bit expressions
                for b in range(sel_w):
                    exprs = [
                        cond for val, cond in options if (val >> b) & 1
                    ]
                    if not exprs:
                        pb.set_constant(base + b, 0)
                    else:
                        expr = exprs[0]
                        for e in exprs[1:]:
                            expr = bf_or(expr, e)
                        pb.set_tunable(base + b, expr)

            # LUT mask
            if atom is not None:
                func = atom.func
                assert func is not None
                root_lut = physical.mapping.luts.get(atom.output)
                n_bits = 1 << spec.k
                if root_lut is not None and root_lut.is_tlut:
                    n_phys = len(root_lut.physical_inputs)
                    for i in range(n_bits):
                        phys_idx = i & ((1 << n_phys) - 1)
                        pb.set_tunable(
                            lut_base + i,
                            tlut_bit_expr(root_lut, phys_idx, param_index_of),
                        )
                else:
                    n_in = len(inputs)
                    for i in range(n_bits):
                        pb.set_constant(
                            lut_base + i,
                            func.eval_index(i & ((1 << n_in) - 1)),
                        )
            else:
                # FF-only BLE: LUT configured as a pass-through of pin 0
                for i in range(1 << spec.k):
                    pb.set_constant(lut_base + i, i & 1)

            pb.set_constant(out_sel_bit, 1 if ble.uses_ff else 0)
            pb.set_constant(init_bit, ble.ff.ff_init if ble.ff else 0)

    # ---- routing switches -------------------------------------------------------
    for edge, cond in routing.used_switch_edges().items():
        bit = layout.switch_bit.get(edge)
        if bit is None:
            raise BitstreamError(f"edge {edge} has no switch bit")
        pb.set_tunable(bit, cond)

    # ---- pinout --------------------------------------------------------------------
    for sig in physical.pi_signals:
        site = placement.pad_site(sig, "ipad")
        iomap.inputs[site] = physical.signal_name(sig)
    for sig in physical.po_signals:
        site = placement.pad_site(sig, "opad")
        iomap.outputs[site] = physical.signal_name(sig)

    return GeneratedBitstream(
        pconf=pb, layout=layout, iomap=iomap, ble_names=ble_names
    )
