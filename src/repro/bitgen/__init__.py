"""Bitstream generation and partial reconfiguration.

Lowers a packed/placed/routed design onto the device's configuration
cells, producing a :class:`~repro.core.pconf.ParameterizedBitstream` whose
tunable bits realize the TCON/TLUT machinery, plus frame-diff utilities
for dynamic partial reconfiguration.
"""

from repro.bitgen.genbit import IoMap, generate_bitstream, GeneratedBitstream
from repro.bitgen.partial import changed_frames, frame_view

__all__ = [
    "IoMap",
    "generate_bitstream",
    "GeneratedBitstream",
    "changed_frames",
    "frame_view",
]
