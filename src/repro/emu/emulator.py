"""Bitstream decoding and device emulation.

:func:`decode_bitstream` reconstructs a :class:`LogicNetwork` from a
*specialized* (fully constant) configuration:

1. enabled routing switches define the active RR edges; walking backward
   from every used IPIN yields the OPIN that drives it;
2. BLE pin-select fields bind LUT pins to cluster IPINs or feedbacks;
3. LUT masks give each BLE its function, FF control bits its mode.

The decoded network's signals are named after the pinout (pads) and the
BLE name directory, so it can be simulated against the original design
name-for-name.  :class:`FpgaEmulator` wraps decode + sequential simulation
into a device-like object with a clock-step interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.arch.config_cells import ConfigLayout
from repro.arch.routing_graph import RRGraph, RRNodeType
from repro.bitgen.genbit import GeneratedBitstream
from repro.errors import BitstreamError, SimulationError
from repro.netlist.network import LogicNetwork
from repro.netlist.simulate import SequentialSimulator
from repro.netlist.truthtable import TruthTable

__all__ = ["DecodedDesign", "decode_bitstream", "FpgaEmulator"]


@dataclass
class DecodedDesign:
    """A logic network reconstructed purely from configuration bits."""

    network: LogicNetwork
    used_bles: list[tuple[int, int, int]] = field(default_factory=list)
    active_switches: int = 0


def _read_field(bits: np.ndarray, base: int, width: int) -> int:
    v = 0
    for i in range(width):
        v |= int(bits[base + i]) << i
    return v


def decode_bitstream(
    bits: np.ndarray,
    gen: GeneratedBitstream,
    rr: RRGraph,
) -> DecodedDesign:
    """Reconstruct the configured design from a concrete bit array."""
    layout = gen.layout
    grid = layout.grid
    spec = grid.spec
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size != layout.n_bits:
        raise BitstreamError(
            f"bitstream has {bits.size} bits, device needs {layout.n_bits}"
        )

    # ---- active routing: driver of every node -----------------------------
    edge_src = rr.edge_src_array()
    driver_of: dict[int, int] = {}
    active = 0
    for edge, bit in layout.switch_bit.items():
        if not bits[bit]:
            continue
        active += 1
        src = int(edge_src[edge])
        dst = int(rr.edge_dst[edge])
        if dst in driver_of and driver_of[dst] != src:
            raise BitstreamError(
                f"node {rr.node_str(dst)} driven by two active switches"
            )
        driver_of[dst] = src

    def trace_to_opin(node: int) -> int | None:
        """Walk active switches backward until an OPIN (or give up)."""
        seen = set()
        cur = node
        while True:
            if cur in seen:
                raise BitstreamError(
                    f"routing loop decoding {rr.node_str(node)}"
                )
            seen.add(cur)
            if rr.ntype[cur] == RRNodeType.OPIN:
                return cur
            prev = driver_of.get(cur)
            if prev is None:
                return None
            cur = prev

    # ---- pads ------------------------------------------------------------------
    net = LogicNetwork("decoded")
    signal_of_opin: dict[int, int] = {}
    for site, name in sorted(gen.iomap.inputs.items()):
        nid = net.add_pi(name)
        signal_of_opin[rr.pad_opin[site]] = nid

    # ---- first pass: create BLE output nodes ------------------------------------
    sel_w = layout.select_width()
    unconnected = 0  # the erased state: code 0 = pin not connected
    used_bles: list[tuple[int, int, int]] = []
    ble_site_output: dict[tuple[int, int, int], int] = {}
    ble_mode: dict[tuple[int, int, int], dict] = {}

    for (x, y) in grid.clb_positions():
        for b in range(spec.n_ble):
            key = (x, y, b)
            pins = []
            for p in range(spec.k):
                base = layout.pin_select_base[key + (p,)]
                pins.append(_read_field(bits, base, sel_w))
            lut_base = layout.lut_base[key]
            mask = 0
            for i in range(spec.lut_bits):
                if bits[lut_base + i]:
                    mask |= 1 << i
            out_sel_bit, init_bit = layout.ble_ctrl[key]
            uses_ff = bool(bits[out_sel_bit])
            ff_init = int(bits[init_bit])
            if all(v == unconnected for v in pins) and not uses_ff and mask == 0:
                continue  # unused BLE (fully erased state)
            used_bles.append(key)
            ble_mode[key] = {
                "pins": pins,
                "mask": mask,
                "uses_ff": uses_ff,
                "ff_init": ff_init,
            }

    # create output signals: FF outputs are latches (created up front so
    # feedback cycles through registers resolve), LUT outputs are gates
    # added once their inputs exist.
    name_of = gen.ble_names
    for key in used_bles:
        label = name_of.get(key, f"ble_{key[0]}_{key[1]}_{key[2]}")
        if ble_mode[key]["uses_ff"]:
            q = net.add_latch(label, init=ble_mode[key]["ff_init"])
            ble_site_output[key] = q
        # LUT-mode outputs created in dependency order below

    # ---- resolve each cluster's IPIN signals ---------------------------------------
    def ipin_signal_node(x: int, y: int, ptc: int) -> tuple[int, int, int] | int | None:
        """What drives cluster (x,y) input pin ptc: a BLE site or a PI node."""
        ipin = rr.ipins_of[(x, y)][ptc]
        opin = trace_to_opin(ipin)
        if opin is None:
            return None
        if opin in signal_of_opin:
            return signal_of_opin[opin]
        ox, oy, ob = int(rr.xs[opin]), int(rr.ys[opin]), int(rr.ptc[opin])
        return (ox, oy, ob)

    # iterative creation of LUT gates in dependency order
    pending = [k for k in used_bles]
    guard = 0
    while pending:
        guard += 1
        if guard > len(used_bles) + 10_000:
            raise BitstreamError("could not order decoded BLEs (comb. loop?)")
        key = pending.pop(0)
        x, y, b = key
        mode = ble_mode[key]
        input_nodes: list[int] = []
        ready = True
        for p, val in enumerate(mode["pins"]):
            if val == unconnected:
                continue
            if val > spec.n_cluster_inputs:
                fb = val - spec.n_cluster_inputs - 1
                src_key = (x, y, fb)
                node = ble_site_output.get(src_key)
                if node is None:
                    ready = False
                    break
                input_nodes.append(node)
            else:
                ptc = val - 1
                res = ipin_signal_node(x, y, ptc)
                if res is None:
                    raise BitstreamError(
                        f"cluster ({x},{y}) pin {ptc} used but undriven"
                    )
                if isinstance(res, tuple):
                    node = ble_site_output.get(res)
                    if node is None:
                        ready = False
                        break
                    input_nodes.append(node)
                else:
                    input_nodes.append(res)
        if not ready:
            pending.append(key)
            continue

        n_in = len(input_nodes)
        column = [(mode["mask"] >> (i & ((1 << n_in) - 1))) & 1 for i in range(1 << n_in)]
        tt = TruthTable.from_outputs(column) if n_in else TruthTable.const(mode["mask"] & 1, 0)
        label = name_of.get(key, f"ble_{x}_{y}_{b}")
        if mode["uses_ff"]:
            d_gate = net.add_gate(
                net.fresh_name(f"{label}__d"), input_nodes, tt
            )
            net.set_latch_driver(ble_site_output[key], d_gate)
        else:
            gate = net.add_gate(label, input_nodes, tt)
            ble_site_output[key] = gate

    # ---- primary outputs --------------------------------------------------------------
    for site, name in sorted(gen.iomap.outputs.items()):
        ipin = rr.pad_ipin[site]
        opin = trace_to_opin(ipin)
        if opin is None:
            raise BitstreamError(f"output pad {name!r} undriven")
        if opin in signal_of_opin:
            src = signal_of_opin[opin]
        else:
            key = (int(rr.xs[opin]), int(rr.ys[opin]), int(rr.ptc[opin]))
            src = ble_site_output.get(key)
            if src is None:
                raise BitstreamError(f"output pad {name!r} driven by unused BLE")
        # alias through a buffer so the PO carries its pad name
        if net.node_name(src) != name:
            buf = net.add_gate(name, (src,), TruthTable.var(0, 1))
            src = buf
        net.add_po(name)

    return DecodedDesign(
        network=net, used_bles=used_bles, active_switches=active
    )


class FpgaEmulator:
    """A configured device with a clock-step interface.

    >>> # emu = FpgaEmulator(bits, generated, rr); emu.step({"pi0": 1})
    """

    def __init__(
        self, bits: np.ndarray, gen: GeneratedBitstream, rr: RRGraph,
        *, n_words: int = 1, interpreted: bool = False,
    ) -> None:
        self.decoded = decode_bitstream(bits, gen, rr)
        self.sim = SequentialSimulator(
            self.decoded.network, n_words=n_words, interpreted=interpreted
        )

    def reset(self) -> None:
        self.sim.reset()

    def step(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """Advance one cycle; returns PO name → bit (first word, bit 0)."""
        net = self.decoded.network
        stim: dict[int, np.ndarray] = {}
        for pi in net.pis:
            name = net.node_name(pi)
            bit = int(pi_values.get(name, 0)) & 1
            word = np.full(
                self.sim.n_words,
                np.uint64(0xFFFFFFFFFFFFFFFF) if bit else np.uint64(0),
                dtype=np.uint64,
            )
            stim[pi] = word
        values = self.sim.step(stim)
        return {
            name: int(values[net.require(name)][0] & np.uint64(1))
            for name in net.po_names
        }
