"""Emulation-level fault injection.

Separate from :mod:`repro.workloads.perturb` (which mutates netlists),
this injector forces values onto *running* signals during simulation —
modeling transient upsets or environment-dependent bugs that only internal
observability can catch, the motivating scenario of the paper's
introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork
from repro.netlist.simulate import SequentialSimulator

__all__ = ["FaultInjector"]


@dataclass(frozen=True)
class _Fault:
    node: int
    value: int
    first_cycle: int
    last_cycle: int


class FaultInjector:
    """Drives a simulator while forcing faulty values on chosen signals.

    >>> # fi = FaultInjector(net); fi.stuck_at("n17", 0, first_cycle=5)
    """

    def __init__(self, net: LogicNetwork, *, n_words: int = 1) -> None:
        self.net = net
        self.sim = SequentialSimulator(net, n_words=n_words)
        self._faults: list[_Fault] = []

    def stuck_at(
        self,
        signal: str,
        value: int,
        *,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> None:
        """Force ``signal`` to ``value`` during [first_cycle, last_cycle]."""
        nid = self.net.find(signal)
        if nid is None:
            raise SimulationError(f"unknown signal {signal!r}")
        if value not in (0, 1):
            raise SimulationError("fault value must be 0/1")
        self._faults.append(
            _Fault(
                node=nid,
                value=value,
                first_cycle=first_cycle,
                last_cycle=last_cycle if last_cycle is not None else 2**62,
            )
        )

    def clear(self) -> None:
        self._faults.clear()

    def step(self, pi_values: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One cycle with active faults applied as overrides."""
        cyc = self.sim.cycle
        overrides: dict[int, np.ndarray] = {}
        ones = np.full(
            self.sim.n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
        )
        zeros = np.zeros(self.sim.n_words, dtype=np.uint64)
        for f in self._faults:
            if f.first_cycle <= cyc <= f.last_cycle:
                overrides[f.node] = ones if f.value else zeros
        return self.sim.step(pi_values, overrides=overrides)
