"""Emulation-level fault injection.

Separate from :mod:`repro.workloads.perturb` (which mutates netlists),
this module forces values onto *running* signals during simulation —
modeling transient upsets or environment-dependent bugs that only internal
observability can catch, the motivating scenario of the paper's
introduction.

:class:`ForcedFault` and :func:`active_overrides` are the one shared
implementation of stuck-at semantics: :class:`FaultInjector` (plain
netlist simulation) and :meth:`repro.core.debug.DebugSession.force`
(mapped-network emulation inside a debug session) both apply faults
through them, so the two layers can never drift apart on windowing or
value-packing rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork
from repro.netlist.simulate import SequentialSimulator

__all__ = ["ALL_LANES", "ForcedFault", "active_overrides", "FaultInjector"]

#: Effectively "forever" for fault windows (cycle counters are int64-safe).
NEVER_ENDS = 2**62

#: Lane mask covering every lane of a 64-bit simulation word.
ALL_LANES = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class ForcedFault:
    """A stuck-at override on a simulated signal during a cycle window.

    ``node`` is the id of the signal in whichever network is being
    simulated — the source netlist for :class:`FaultInjector`, the mapped
    network for a :class:`~repro.core.debug.DebugSession`.  ``signal``
    records the human-readable name for reports; it does not participate
    in application.

    ``lane_mask`` selects which of the word's 64 SIMD lanes the fault
    afflicts (replicated across words when ``n_words > 1``).  The default
    forces every lane — the historical single-scenario behavior.  The
    lane-parallel engine arms each scenario's fault with ``1 << lane`` so
    that 64 concurrent scenarios can each carry a *different* bug through
    one packed emulation: the simulator blends
    ``value = (clean & ~mask) | (forced & mask)`` per node.
    """

    node: int
    value: int
    first_cycle: int = 0
    last_cycle: int = NEVER_ENDS
    signal: str = ""
    lane_mask: int = ALL_LANES

    def active_at(self, cycle: int) -> bool:
        return self.first_cycle <= cycle <= self.last_cycle


def active_overrides(
    faults: Iterable[ForcedFault], cycle: int, *, n_words: int = 1
) -> dict[int, "np.ndarray | tuple[np.ndarray, np.ndarray]"] | None:
    """Simulator overrides for the faults active on ``cycle``.

    Returns ``None`` when no fault is in window, so callers can pass the
    result straight to ``SequentialSimulator.step(..., overrides=...)``.
    Full-lane faults produce plain value arrays (wholesale replacement,
    the historical form); lane-masked faults produce ``(forced, mask)``
    pairs the simulator blends with the clean value.  Faults on the same
    node accumulate lane-wise, later faults winning on overlapping lanes.
    """
    acc: dict[int, tuple[int, int]] | None = None
    for f in faults:
        if not f.active_at(cycle):
            continue
        if acc is None:
            acc = {}
        lm = f.lane_mask & ALL_LANES
        forced_bits = lm if f.value else 0
        prev_forced, prev_mask = acc.get(f.node, (0, 0))
        acc[f.node] = (
            (prev_forced & ~lm & ALL_LANES) | forced_bits,
            prev_mask | lm,
        )
    if acc is None:
        return None
    overrides: dict[int, np.ndarray | tuple[np.ndarray, np.ndarray]] = {}
    for node, (forced, mask) in acc.items():
        if mask == ALL_LANES:
            overrides[node] = np.full(n_words, np.uint64(forced), dtype=np.uint64)
        else:
            overrides[node] = (
                np.full(n_words, np.uint64(forced), dtype=np.uint64),
                np.full(n_words, np.uint64(mask), dtype=np.uint64),
            )
    return overrides


class FaultInjector:
    """Drives a simulator while forcing faulty values on chosen signals.

    >>> # fi = FaultInjector(net); fi.stuck_at("n17", 0, first_cycle=5)
    """

    def __init__(self, net: LogicNetwork, *, n_words: int = 1) -> None:
        self.net = net
        self.sim = SequentialSimulator(net, n_words=n_words)
        self._faults: list[ForcedFault] = []

    def stuck_at(
        self,
        signal: str,
        value: int,
        *,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` during [first_cycle, last_cycle]."""
        nid = self.net.find(signal)
        if nid is None:
            raise SimulationError(f"unknown signal {signal!r}")
        if value not in (0, 1):
            raise SimulationError("fault value must be 0/1")
        fault = ForcedFault(
            node=nid,
            value=value,
            first_cycle=first_cycle,
            last_cycle=last_cycle if last_cycle is not None else NEVER_ENDS,
            signal=signal,
        )
        self._faults.append(fault)
        return fault

    def clear(self) -> None:
        self._faults.clear()

    def step(self, pi_values: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One cycle with active faults applied as overrides."""
        overrides = active_overrides(
            self._faults, self.sim.cycle, n_words=self.sim.n_words
        )
        return self.sim.step(pi_values, overrides=overrides or {})
