"""Emulation-level fault injection.

Separate from :mod:`repro.workloads.perturb` (which mutates netlists),
this module forces values onto *running* signals during simulation —
modeling transient upsets or environment-dependent bugs that only internal
observability can catch, the motivating scenario of the paper's
introduction.

:class:`ForcedFault` and :func:`active_overrides` are the one shared
implementation of stuck-at semantics: :class:`FaultInjector` (plain
netlist simulation) and :meth:`repro.core.debug.DebugSession.force`
(mapped-network emulation inside a debug session) both apply faults
through them, so the two layers can never drift apart on windowing or
value-packing rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork
from repro.netlist.simulate import SequentialSimulator

__all__ = ["ForcedFault", "active_overrides", "FaultInjector"]

#: Effectively "forever" for fault windows (cycle counters are int64-safe).
NEVER_ENDS = 2**62


@dataclass(frozen=True)
class ForcedFault:
    """A stuck-at override on a simulated signal during a cycle window.

    ``node`` is the id of the signal in whichever network is being
    simulated — the source netlist for :class:`FaultInjector`, the mapped
    network for a :class:`~repro.core.debug.DebugSession`.  ``signal``
    records the human-readable name for reports; it does not participate
    in application.
    """

    node: int
    value: int
    first_cycle: int = 0
    last_cycle: int = NEVER_ENDS
    signal: str = ""

    def active_at(self, cycle: int) -> bool:
        return self.first_cycle <= cycle <= self.last_cycle


def active_overrides(
    faults: Iterable[ForcedFault], cycle: int, *, n_words: int = 1
) -> dict[int, np.ndarray] | None:
    """Simulator override arrays for the faults active on ``cycle``.

    Returns ``None`` when no fault is in window, so callers can pass the
    result straight to ``SequentialSimulator.step(..., overrides=...)``.
    """
    overrides: dict[int, np.ndarray] | None = None
    for f in faults:
        if f.active_at(cycle):
            fill = np.uint64(0xFFFFFFFFFFFFFFFF) if f.value else np.uint64(0)
            if overrides is None:
                overrides = {}
            overrides[f.node] = np.full(n_words, fill, dtype=np.uint64)
    return overrides


class FaultInjector:
    """Drives a simulator while forcing faulty values on chosen signals.

    >>> # fi = FaultInjector(net); fi.stuck_at("n17", 0, first_cycle=5)
    """

    def __init__(self, net: LogicNetwork, *, n_words: int = 1) -> None:
        self.net = net
        self.sim = SequentialSimulator(net, n_words=n_words)
        self._faults: list[ForcedFault] = []

    def stuck_at(
        self,
        signal: str,
        value: int,
        *,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` during [first_cycle, last_cycle]."""
        nid = self.net.find(signal)
        if nid is None:
            raise SimulationError(f"unknown signal {signal!r}")
        if value not in (0, 1):
            raise SimulationError("fault value must be 0/1")
        fault = ForcedFault(
            node=nid,
            value=value,
            first_cycle=first_cycle,
            last_cycle=last_cycle if last_cycle is not None else NEVER_ENDS,
            signal=signal,
        )
        self._faults.append(fault)
        return fault

    def clear(self) -> None:
        self._faults.clear()

    def step(self, pi_values: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One cycle with active faults applied as overrides."""
        overrides = active_overrides(
            self._faults, self.sim.cycle, n_words=self.sim.n_words
        )
        return self.sim.step(pi_values, overrides=overrides or {})
