"""Emulation-level fault injection.

Separate from :mod:`repro.workloads.perturb` (which mutates netlists),
this module forces values onto *running* signals during simulation —
modeling transient upsets or environment-dependent bugs that only internal
observability can catch, the motivating scenario of the paper's
introduction.

:class:`ForcedFault` and :func:`active_overrides` are the one shared
implementation of stuck-at semantics: :class:`FaultInjector` (plain
netlist simulation) and :meth:`repro.core.debug.DebugSession.force`
(mapped-network emulation inside a debug session) both apply faults
through them, so the two layers can never drift apart on windowing or
value-packing rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork
from repro.netlist.simulate import SequentialSimulator

__all__ = [
    "ALL_LANES",
    "ForcedFault",
    "active_overrides",
    "active_override_ints",
    "FaultInjector",
]

#: Effectively "forever" for fault windows (cycle counters are int64-safe).
NEVER_ENDS = 2**62

#: Lane mask covering every lane of a 64-bit simulation word.
ALL_LANES = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class ForcedFault:
    """A stuck-at override on a simulated signal during a cycle window.

    ``node`` is the id of the signal in whichever network is being
    simulated — the source netlist for :class:`FaultInjector`, the mapped
    network for a :class:`~repro.core.debug.DebugSession`.  ``signal``
    records the human-readable name for reports; it does not participate
    in application.

    ``lane_mask`` selects which SIMD lanes the fault afflicts as an
    *absolute lane-index* mask: lane *k* is bit *k*, so with
    ``n_words > 1`` lane 77 is word 1, bit 13 (``1 << 77``).  The
    :data:`ALL_LANES` default is a sentinel meaning *every lane of every
    word* — the historical whole-value force; note this means a literal
    mask of exactly ``(1 << 64) - 1`` cannot express "word 0's 64 lanes
    only" on a multi-word simulation (split such a fault into two masks).
    The lane-parallel engine arms each scenario's fault with
    ``1 << lane`` so that concurrent scenarios each carry a *different*
    bug through one packed emulation: the simulator blends
    ``value = (clean & ~mask) | (forced & mask)`` per node.  (The legacy
    array path, :func:`active_overrides`, predates multi-word lanes and
    replicates any mask across words; the integer path
    :func:`active_override_ints` is what the engine and
    :class:`FaultInjector` use.)
    """

    node: int
    value: int
    first_cycle: int = 0
    last_cycle: int = NEVER_ENDS
    signal: str = ""
    lane_mask: int = ALL_LANES

    def active_at(self, cycle: int) -> bool:
        return self.first_cycle <= cycle <= self.last_cycle


def active_overrides(
    faults: Iterable[ForcedFault], cycle: int, *, n_words: int = 1
) -> dict[int, "np.ndarray | tuple[np.ndarray, np.ndarray]"] | None:
    """Simulator overrides for the faults active on ``cycle``.

    Returns ``None`` when no fault is in window, so callers can pass the
    result straight to ``SequentialSimulator.step(..., overrides=...)``.
    Full-lane faults produce plain value arrays (wholesale replacement,
    the historical form); lane-masked faults produce ``(forced, mask)``
    pairs the simulator blends with the clean value.  Faults on the same
    node accumulate lane-wise, later faults winning on overlapping lanes.
    """
    acc: dict[int, tuple[int, int]] | None = None
    for f in faults:
        if not f.active_at(cycle):
            continue
        if acc is None:
            acc = {}
        lm = f.lane_mask & ALL_LANES
        forced_bits = lm if f.value else 0
        prev_forced, prev_mask = acc.get(f.node, (0, 0))
        acc[f.node] = (
            (prev_forced & ~lm & ALL_LANES) | forced_bits,
            prev_mask | lm,
        )
    if acc is None:
        return None
    overrides: dict[int, np.ndarray | tuple[np.ndarray, np.ndarray]] = {}
    for node, (forced, mask) in acc.items():
        if mask == ALL_LANES:
            overrides[node] = np.full(n_words, np.uint64(forced), dtype=np.uint64)
        else:
            overrides[node] = (
                np.full(n_words, np.uint64(forced), dtype=np.uint64),
                np.full(n_words, np.uint64(mask), dtype=np.uint64),
            )
    return overrides


def active_override_ints(
    faults: Iterable[ForcedFault], cycle: int, *, n_words: int = 1
) -> "dict[int, tuple[int, int]] | None":
    """Word-packed integer overrides for the faults active on ``cycle``.

    The multi-word counterpart of :func:`active_overrides`, feeding the
    compiled simulator directly: each entry is a ``(forced, mask)`` pair
    of plain integers spanning all ``64 * n_words`` lanes.  Unlike the
    historical array form (which *replicates* a 64-bit mask across
    words), ``lane_mask`` here is an absolute lane-index mask — a fault
    on lane 77 carries ``lane_mask = 1 << 77`` and lands in word 1, bit
    13 — except the :data:`ALL_LANES` default, which expands to every
    lane of every word (the historical whole-value force).  Faults on the
    same node accumulate lane-wise, later faults winning on overlap.
    """
    full = (1 << (64 * n_words)) - 1
    acc: dict[int, tuple[int, int]] | None = None
    for f in faults:
        if not f.active_at(cycle):
            continue
        if acc is None:
            acc = {}
        lm = full if f.lane_mask == ALL_LANES else f.lane_mask & full
        forced_bits = lm if f.value else 0
        prev_forced, prev_mask = acc.get(f.node, (0, 0))
        acc[f.node] = (
            (prev_forced & ~lm & full) | forced_bits,
            prev_mask | lm,
        )
    return acc


class FaultInjector:
    """Drives a simulator while forcing faulty values on chosen signals.

    Faults may be restricted to a subset of the packed SIMD lanes via
    ``lane_mask`` (an absolute lane-index mask — with ``n_words > 1``
    lane 77 is bit 77, i.e. word 1 bit 13), so a vectorized fault
    campaign can carry one candidate fault per lane through a single
    simulation, composing with multi-word lane counts instead of forcing
    whole-word overrides.

    >>> # fi = FaultInjector(net); fi.stuck_at("n17", 0, first_cycle=5)
    >>> # fi.stuck_at("n9", 1, lane_mask=1 << 77)   # lane 77 only
    """

    def __init__(
        self, net: LogicNetwork, *, n_words: int = 1, interpreted: bool = False
    ) -> None:
        self.net = net
        self.sim = SequentialSimulator(
            net, n_words=n_words, interpreted=interpreted
        )
        self._faults: list[ForcedFault] = []

    def stuck_at(
        self,
        signal: str,
        value: int,
        *,
        first_cycle: int = 0,
        last_cycle: int | None = None,
        lane_mask: int = ALL_LANES,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` during [first_cycle, last_cycle].

        ``lane_mask`` selects the afflicted lanes (default: all of them —
        the historical whole-value force).
        """
        nid = self.net.find(signal)
        if nid is None:
            raise SimulationError(f"unknown signal {signal!r}")
        if value not in (0, 1):
            raise SimulationError("fault value must be 0/1")
        fault = ForcedFault(
            node=nid,
            value=value,
            first_cycle=first_cycle,
            last_cycle=last_cycle if last_cycle is not None else NEVER_ENDS,
            signal=signal,
            lane_mask=lane_mask,
        )
        self._faults.append(fault)
        return fault

    def clear(self) -> None:
        self._faults.clear()

    def step(self, pi_values: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One cycle with active faults applied as overrides."""
        overrides = active_override_ints(
            self._faults, self.sim.cycle, n_words=self.sim.n_words
        )
        return self.sim.step(pi_values, overrides=overrides or {})
