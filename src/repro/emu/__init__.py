"""Emulation: execute configured devices, inject faults, dump waveforms.

The emulator *decodes* a specialized bitstream back into a logic network —
LUT masks, crossbar selects, flip-flop modes and active routing switches —
and simulates the result.  Nothing is taken from the design database: what
runs is literally what the configuration bits say, which is how the test
suite proves the whole flow (mapping → packing → placement → routing →
bitgen → SCG specialization) end to end.
"""

from repro.emu.emulator import DecodedDesign, decode_bitstream, FpgaEmulator
from repro.emu.fault import FaultInjector, ForcedFault, active_overrides
from repro.emu.vcd import VcdWriter, write_vcd

__all__ = [
    "DecodedDesign",
    "decode_bitstream",
    "FpgaEmulator",
    "FaultInjector",
    "ForcedFault",
    "active_overrides",
    "VcdWriter",
    "write_vcd",
]
