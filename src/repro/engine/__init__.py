"""The lane-parallel online debug engine.

The bit-parallel simulator packs 64 test vectors per ``uint64`` word, but
the historical online loop spent one whole :class:`~repro.core.debug.
DebugSession` — and therefore one whole packed simulation — per scenario,
using a single bit of every word.  This package turns that waste into the
campaign layer's biggest speedup: a :class:`LaneEngine` binds up to 64
scenarios *that share one offline artifact* to the lanes of a single
packed emulation:

* **per-lane stimulus** — each lane's primary-input stream occupies its
  bit of the packed PI words (select-parameter PIs included, so every
  lane can observe a *different* signal set simultaneously);
* **per-lane fault forcing** — each scenario's emulation-level bug is a
  :class:`~repro.emu.fault.ForcedFault` with ``lane_mask = 1 << lane``;
  the simulator blends ``value = (clean & ~mask) | (forced & mask)`` so
  one lane's bug never leaks into its neighbours;
* **per-lane observation** — one
  :class:`~repro.core.scg.SpecializedConfigGenerator` per lane keeps the
  modeled specialization accounting (frames touched, overhead) identical
  to a solo session's;
* **per-lane trace capture** — a
  :class:`~repro.core.tracebuffer.LaneTraceBuffer` records every lane in
  O(width) per cycle.

:class:`~repro.core.debug.DebugSession` is now the 1-lane facade over
this engine (public API unchanged), and the campaign orchestrator groups
scenarios into lane batches before dispatching them to workers — see
:func:`repro.campaign.runner.run_scenario_batch`.
"""

from repro.engine.lanes import DebugTurnLog, LaneEngine, Stimulus

__all__ = ["DebugTurnLog", "LaneEngine", "Stimulus"]
