"""The lane-parallel engine core (§IV-B at SIMD width).

A :class:`LaneEngine` drives one packed
:class:`~repro.netlist.simulate.SequentialSimulator` over the mapped
network of an offline artifact, with up to 64 debug scenarios bound to
the lanes of its ``uint64`` words.  All shared state (the mapped
network, the virtual PConf layout, the tap/PO directories) is built
once; everything a scenario owns — stimulus, forced faults, the current
observation (select-parameter values), the SCG accounting, the captured
trace — is per lane.

Correctness bar: lane *k* of a packed run is bit-for-bit what a solo
:class:`~repro.core.debug.DebugSession` produces for the same scenario,
because gate evaluation is bitwise (lanes cannot interact), faults are
lane-masked, and each lane's parameters/stimulus occupy only its bit of
the packed PI words.  ``tests/test_engine.py`` pins this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.costmodel import Virtex5Model
from repro.core.flow import OfflineStage
from repro.core.parameters import ParameterAssignment
from repro.core.scg import SpecializedConfigGenerator
from repro.core.tracebuffer import LaneTraceBuffer
from repro.core.virtual import build_virtual_pconf
from repro.emu.fault import NEVER_ENDS, ForcedFault, active_overrides
from repro.errors import DebugFlowError
from repro.netlist.simulate import SequentialSimulator

__all__ = ["DebugTurnLog", "LaneEngine", "Stimulus"]

Stimulus = Callable[[int], Mapping[str, int]]
"""Per-cycle primary-input values: cycle → {pi name: 0/1}."""

#: A lane's stimulus: a per-cycle callable, or a pre-recorded script
#: (one ``{pi name: 0/1}`` row per cycle) the engine packs into lane
#: bits once and replays across debugging turns.
StimulusLike = "Stimulus | Sequence[Mapping[str, int]] | None"


@dataclass
class DebugTurnLog:
    """Bookkeeping for one observe+run round (of one lane)."""

    observed: list[str]
    cycles_run: int
    modeled_overhead_s: float
    frames_touched: int
    software_s: float


class LaneEngine:
    """Up to 64 concurrent debug scenarios over one offline artifact."""

    def __init__(
        self,
        offline: OfflineStage,
        *,
        n_lanes: int = 1,
        model: Virtex5Model | None = None,
        trace_depth: int | None = None,
    ) -> None:
        if not 1 <= n_lanes <= 64:
            raise DebugFlowError("lane count must be within 1..64")
        self.offline = offline
        self.design = offline.instrumented
        self.model = model or Virtex5Model()
        self.n_lanes = n_lanes
        self.mapped_net = offline.mapping.to_lut_network()
        self.sim = SequentialSimulator(self.mapped_net, n_words=1)
        self.pconf = build_virtual_pconf(offline.mapping, self.design)
        depth = trace_depth or offline.config.trace_depth
        self.trace = LaneTraceBuffer(
            width=self.design.n_buffer_inputs, depth=depth, n_lanes=n_lanes
        )

        # -- shared directories (identical to the historical session's) ----
        self._param_pi_values = {
            self.mapped_net.require(name): np.zeros(1, dtype=np.uint64)
            for name in self.design.param_space.names
        }
        self._user_pis = [
            pi
            for pi in self.mapped_net.pis
            if self.mapped_net.node_name(pi) not in self.design.param_nodes
        ]
        self._user_pi_names = {
            pi: self.mapped_net.node_name(pi) for pi in self._user_pis
        }
        self._tb_nodes = [
            self.mapped_net.require(g.po_name) for g in self.design.groups
        ]
        # design nodes a fault may be forced on: taps, latches and user PIs
        # (param PIs excluded — forcing a select corrupts observation)
        net_i = self.design.network
        self._forceable_nodes = (
            set(self.design.taps)
            | {latch.q for latch in net_i.latches}
            | set(net_i.pis)
        ) - set(self.design.param_nodes.values())
        tb_pos = {g.po_name for g in self.design.groups}
        self._user_po_names = [
            po
            for po in offline.source.po_names
            if po not in tb_pos and self.mapped_net.find(po) is not None
        ]
        self._user_po_ids = [
            self.mapped_net.require(po) for po in self._user_po_names
        ]

        # -- per-lane state -------------------------------------------------
        zeros = self.design.param_space.zeros()
        self.scgs: list[SpecializedConfigGenerator] = []
        for _ in range(n_lanes):
            scg = SpecializedConfigGenerator(
                self.pconf.bitstream, model=self.model
            )
            scg.load_full(zeros)
            self.scgs.append(scg)
        self.assignments: list[ParameterAssignment] = [zeros] * n_lanes
        self._observed: list[dict[str, str]] = [
            self.design.observed_at({}) for _ in range(n_lanes)
        ]
        self.turns: list[list[DebugTurnLog]] = [[] for _ in range(n_lanes)]
        self._forces: list[list[ForcedFault]] = [[] for _ in range(n_lanes)]
        self._stim_fns: list[Stimulus | None] = [None] * n_lanes
        self._stim_scripts: list[Sequence[Mapping[str, int]] | None] = [
            None
        ] * n_lanes
        self._packed_stim: dict[int, np.ndarray] | None = None

    # -- lanes ------------------------------------------------------------------

    def _check_lane(self, lane: int) -> int:
        if not 0 <= lane < self.n_lanes:
            raise DebugFlowError(
                f"lane {lane} out of range (engine has {self.n_lanes})"
            )
        return lane

    def bind_stimulus(self, lane: int, stimulus: "StimulusLike") -> None:
        """Attach a lane's stimulus: a callable, a script, or ``None``.

        Scripts (sequences of per-cycle PI rows) are packed into lane
        bits once and replayed from the packed form every run — the fast
        path batch campaigns use.  Callables are consulted cycle by
        cycle, exactly like the historical session's ``stimulus``
        argument.  Missing PIs default to 0 either way.
        """
        self._check_lane(lane)
        if stimulus is not None and not callable(stimulus):
            self._stim_scripts[lane] = stimulus
            self._stim_fns[lane] = None
            self._packed_stim = None
        else:
            self._stim_fns[lane] = stimulus
            if self._stim_scripts[lane] is not None:
                self._stim_scripts[lane] = None
                self._packed_stim = None

    # -- observation ------------------------------------------------------------

    @property
    def observable_signals(self) -> list[str]:
        net = self.design.network
        return [net.node_name(t) for t in self.design.taps]

    def observe(self, signals: list[str], *, lane: int = 0) -> dict[str, str]:
        """Route ``signals`` to lane ``lane``'s view of the trace buffers.

        Respecializes that lane's SCG (one debugging turn *for that
        lane*), packs the lane's select-parameter values into its bit of
        the packed parameter-PI words, and logs the turn.  Other lanes'
        observations are untouched — each lane can watch a different
        signal set in the same packed emulation.
        """
        self._check_lane(lane)
        values = self.design.selection_for(signals)
        assignment = self.design.param_space.assignment(values)
        self.assignments[lane] = assignment
        rec = self.scgs[lane].respecialize(assignment)
        bit = np.uint64(1) << np.uint64(lane)
        for name in self.design.param_space.names:
            nid = self.mapped_net.require(name)
            word = self._param_pi_values[nid]
            if values.get(name, 0):
                word[0] |= bit
            else:
                word[0] &= ~bit
        self._observed[lane] = self.design.observed_at(values)
        self.turns[lane].append(
            DebugTurnLog(
                observed=list(signals),
                cycles_run=0,
                modeled_overhead_s=rec.device_cost.specialization_s,
                frames_touched=len(rec.frames_touched),
                software_s=rec.software_seconds,
            )
        )
        return dict(self._observed[lane])

    def observed(self, lane: int = 0) -> dict[str, str]:
        """Lane's current buffer input → observed signal name."""
        self._check_lane(lane)
        return dict(self._observed[lane])

    # -- fault forcing ------------------------------------------------------------

    def force(
        self,
        signal: str,
        value: int,
        *,
        lane: int = 0,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` in lane ``lane`` only.

        The fault carries ``lane_mask = 1 << lane``: during emulation the
        node's value is ``(clean & ~mask) | (forced & mask)``, so every
        other lane keeps the clean computed value.  Only *design* signals
        that physically exist in the mapped network — observable taps
        (LUT roots), latches and user PIs — can be forced;
        debug-infrastructure nodes (select parameters, mux tree,
        trace-buffer outputs) are rejected, since forcing those would
        corrupt observation itself.
        """
        self._check_lane(lane)
        nid = self.mapped_net.find(signal)
        design_node = self.design.network.find(signal)
        if (
            nid is None
            or design_node is None
            or design_node not in self._forceable_nodes
        ):
            raise DebugFlowError(
                f"signal {signal!r} is not a forceable design signal; only "
                "observable taps, latches and user PIs exist in the mapped "
                "network as design nodes (debug-network nodes cannot be "
                "forced without corrupting observation)"
            )
        if value not in (0, 1):
            raise DebugFlowError("forced value must be 0 or 1")
        fault = ForcedFault(
            node=nid,
            signal=signal,
            value=value,
            first_cycle=first_cycle,
            last_cycle=last_cycle if last_cycle is not None else NEVER_ENDS,
            lane_mask=1 << lane,
        )
        self._forces[lane].append(fault)
        return fault

    def clear_forces(self, lane: int = 0) -> None:
        """Remove every active forced fault of one lane."""
        self._check_lane(lane)
        self._forces[lane].clear()

    def forces(self, lane: int = 0) -> list[ForcedFault]:
        """The lane's currently active forced faults."""
        self._check_lane(lane)
        return list(self._forces[lane])

    def _cycle_overrides(self):
        """Blended override arrays for all lanes' faults, this cycle."""
        flat = [f for lane_faults in self._forces for f in lane_faults]
        return active_overrides(flat, self.sim.cycle, n_words=1)

    # -- execution ----------------------------------------------------------------

    def reset(self) -> None:
        """Reset emulated latches and the trace memory (not the turn logs)."""
        self.sim.reset()
        self.trace.reset()

    def reset_trace(self) -> None:
        """Reset only the (shared) trace memory."""
        self.trace.reset()

    def _ensure_packed_stim(self) -> dict[int, np.ndarray]:
        if self._packed_stim is None:
            horizon = max(
                (len(s) for s in self._stim_scripts if s is not None),
                default=0,
            )
            packed = {pi: [0] * horizon for pi in self._user_pis}
            for lane, script in enumerate(self._stim_scripts):
                if script is None:
                    continue
                lane_bit = 1 << lane
                for cyc, row in enumerate(script):
                    for pi, name in self._user_pi_names.items():
                        if int(row.get(name, 0)) & 1:
                            packed[pi][cyc] |= lane_bit
            self._packed_stim = {
                pi: np.array(words, dtype=np.uint64)
                for pi, words in packed.items()
            }
        return self._packed_stim

    def _pi_values(self, cycle: int) -> dict[int, np.ndarray]:
        """Packed PI words for one cycle: parameters + per-lane stimulus."""
        pi_vals: dict[int, np.ndarray] = dict(self._param_pi_values)
        packed = self._ensure_packed_stim()
        rows: list[Mapping[str, int] | None] | None = None
        if any(fn is not None for fn in self._stim_fns):
            rows = [fn(cycle) if fn is not None else None for fn in self._stim_fns]
        for pi in self._user_pis:
            arr = packed.get(pi)
            word = int(arr[cycle]) if arr is not None and cycle < len(arr) else 0
            if rows is not None:
                name = self._user_pi_names[pi]
                for lane, row in enumerate(rows):
                    if row is None:
                        continue
                    if int(row.get(name, 0)) & 1:
                        word |= 1 << lane
                    else:
                        word &= ~(1 << lane)
            pi_vals[pi] = np.array([word], dtype=np.uint64)
        return pi_vals

    def _step(self) -> dict[int, np.ndarray]:
        return self.sim.step(
            self._pi_values(self.sim.cycle), overrides=self._cycle_overrides()
        )

    def _account_cycles(
        self, n_cycles: int, lanes: "Sequence[int] | None"
    ) -> None:
        """Charge the run's cycles to each participating lane's open turn.

        ``lanes=None`` charges every lane — right for the facade and for
        detection runs.  Batch walk drivers pass the lanes that actually
        took a turn this replay, so a retired lane's accounting stops at
        its last real turn (matching what a solo session would report).
        """
        targets = range(self.n_lanes) if lanes is None else lanes
        for lane in targets:
            lane_turns = self.turns[lane]
            if lane_turns:
                lane_turns[-1].cycles_run += n_cycles

    def run(
        self,
        n_cycles: int,
        *,
        triggers: Mapping[int, Callable[[int, dict[str, int]], bool]]
        | None = None,
        lanes: "Sequence[int] | None" = None,
    ) -> None:
        """Emulate ``n_cycles``, capturing every lane's trace-buffer inputs.

        ``triggers`` optionally maps lane → ``trigger(cycle, buffer
        values)`` callables arming that lane's post-trigger stop (the
        facade's per-session trigger).  ``lanes`` restricts which lanes'
        turn logs the cycles are charged to (emulation always advances
        every lane — they share the simulator).  Waveforms are read back
        per lane via :meth:`waveforms`.
        """
        if n_cycles < 0:
            raise DebugFlowError("n_cycles must be non-negative")
        width = len(self._tb_nodes)
        for _ in range(n_cycles):
            values = self._step()
            sample = np.fromiter(
                (values[n][0] for n in self._tb_nodes),
                dtype=np.uint64,
                count=width,
            )
            trigger_mask = 0
            if triggers:
                for lane, trig in triggers.items():
                    if trig is None:
                        continue
                    named = {
                        g.po_name: int(
                            (sample[i] >> np.uint64(lane)) & np.uint64(1)
                        )
                        for i, g in enumerate(self.design.groups)
                    }
                    if trig(self.sim.cycle - 1, named):
                        trigger_mask |= 1 << lane
            self.trace.capture(sample, trigger_mask=trigger_mask)
        self._account_cycles(n_cycles, lanes)

    @property
    def user_po_names(self) -> list[str]:
        """The design's own primary outputs (excluding trace-buffer POs)."""
        return list(self._user_po_names)

    def run_outputs(
        self, n_cycles: int, *, lanes: "Sequence[int] | None" = None
    ) -> np.ndarray:
        """Emulate ``n_cycles`` recording the packed primary outputs.

        The lane-parallel analogue of the session's ``output_trace``:
        advances the same emulation state as :meth:`run` (active forces
        apply, cycles count toward each lane's current turn) but captures
        nothing into the trace buffer.  Returns a ``(n_cycles, n_pos)``
        ``uint64`` array; bit *k* of entry ``[c, j]`` is lane *k*'s value
        of ``user_po_names[j]`` on cycle ``c``.
        """
        if n_cycles < 0:
            raise DebugFlowError("n_cycles must be non-negative")
        out = np.zeros((n_cycles, len(self._user_po_ids)), dtype=np.uint64)
        for c in range(n_cycles):
            values = self._step()
            for j, nid in enumerate(self._user_po_ids):
                out[c, j] = values[nid][0]
        self._account_cycles(n_cycles, lanes)
        return out

    # -- results --------------------------------------------------------------------

    def waveforms(self, lane: int = 0) -> dict[str, np.ndarray]:
        """Lane's captured windows keyed by its observed *signal* names."""
        self._check_lane(lane)
        window = self.trace.window(lane)
        out: dict[str, np.ndarray] = {}
        for i, g in enumerate(self.design.groups):
            sig = self._observed[lane].get(g.po_name)
            if sig is not None:
                out[sig] = window[:, i]
        return out

    # -- accounting ------------------------------------------------------------

    def total_modeled_overhead_s(self, lane: int = 0) -> float:
        self._check_lane(lane)
        return sum(t.modeled_overhead_s for t in self.turns[lane])

    def total_cycles(self, lane: int = 0) -> int:
        self._check_lane(lane)
        return sum(t.cycles_run for t in self.turns[lane])
