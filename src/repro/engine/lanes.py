"""The lane-parallel engine core (§IV-B at SIMD width).

A :class:`LaneEngine` drives one packed
:class:`~repro.netlist.simulate.SequentialSimulator` over the mapped
network of an offline artifact, with debug scenarios bound to the lanes
of its packed words.  All shared state (the mapped network, the virtual
PConf layout, the tap/PO directories) is built once; everything a
scenario owns — stimulus, forced faults, the current observation
(select-parameter values), the SCG accounting, the captured trace — is
per lane.

Since the compiled-kernel refactor the emulation step executes the
mapped network's :class:`~repro.netlist.compiled.CompiledProgram` (built
once per network content key, optionally persisted through an
:class:`~repro.pipeline.ArtifactStore`): per cycle the engine hands the
kernel word-packed integer stimulus and lane-blended override indices,
and reads trace samples and PO words straight out of the flat value
list — no per-node dicts, no per-cycle array allocation.  Because a
word-packed integer spans ``n_words`` 64-lane words, ``n_lanes`` may
exceed 64: lane *k* lives at word ``k // 64``, bit ``k % 64`` everywhere
(stimulus, faults, trace memory, PO captures).  ``interpreted=True``
falls back to the historical per-gate interpreter (single-word only) —
the escape hatch and the benchmark baseline.

Correctness bar: lane *k* of a packed run is bit-for-bit what a solo
:class:`~repro.core.debug.DebugSession` produces for the same scenario,
because gate evaluation is bitwise (lanes cannot interact), faults are
lane-masked, and each lane's parameters/stimulus occupy only its bit of
the packed PI words.  ``tests/test_engine.py`` and
``tests/test_compiled.py`` pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.costmodel import Virtex5Model
from repro.core.flow import OfflineStage
from repro.core.parameters import ParameterAssignment
from repro.core.scg import SpecializedConfigGenerator
from repro.core.tracebuffer import LaneTraceBuffer
from repro.core.virtual import build_virtual_pconf
from repro.emu.fault import (
    NEVER_ENDS,
    ForcedFault,
    active_override_ints,
    active_overrides,
)
from repro.errors import DebugFlowError
from repro.netlist.compiled import int_to_words
from repro.netlist.simulate import SequentialSimulator
from repro.util.bitops import words_for_bits

__all__ = ["DebugTurnLog", "LaneEngine", "Stimulus"]

Stimulus = Callable[[int], Mapping[str, int]]
"""Per-cycle primary-input values: cycle → {pi name: 0/1}."""

#: A lane's stimulus: a per-cycle callable, or a pre-recorded script
#: (one ``{pi name: 0/1}`` row per cycle) the engine packs into lane
#: bits once and replays across debugging turns.
StimulusLike = "Stimulus | Sequence[Mapping[str, int]] | None"


@dataclass
class DebugTurnLog:
    """Bookkeeping for one observe+run round (of one lane)."""

    observed: list[str]
    cycles_run: int
    modeled_overhead_s: float
    frames_touched: int
    software_s: float


class LaneEngine:
    """Many concurrent debug scenarios over one offline artifact.

    ``n_lanes`` is unbounded above (words are added every 64 lanes);
    memory and per-cycle cost grow linearly with the word count, so
    campaigns pick the width that saturates their batch sizes.
    """

    def __init__(
        self,
        offline: OfflineStage,
        *,
        n_lanes: int = 1,
        model: Virtex5Model | None = None,
        trace_depth: int | None = None,
        interpreted: bool = False,
        program_store=None,
        backend: str | None = None,
    ) -> None:
        if n_lanes < 1:
            raise DebugFlowError("lane count must be at least 1")
        if interpreted and n_lanes > 64:
            raise DebugFlowError(
                "the interpreted escape hatch is single-word: lane counts "
                "beyond 64 need the compiled kernels (interpreted=False)"
            )
        self.offline = offline
        self.design = offline.instrumented
        self.model = model or Virtex5Model()
        self.n_lanes = n_lanes
        self.n_words = max(1, words_for_bits(n_lanes))
        self.mapped_net = offline.mapping.to_lut_network()
        self.sim = SequentialSimulator(
            self.mapped_net,
            n_words=self.n_words,
            interpreted=interpreted,
            store=program_store,
            backend=backend,
        )
        self._csim = self.sim.compiled  # None on the interpreted path
        self.backend = self.sim.backend  # resolved name; None if interpreted
        self.pconf = build_virtual_pconf(offline.mapping, self.design)
        depth = trace_depth or offline.config.trace_depth
        self.trace = LaneTraceBuffer(
            width=self.design.n_buffer_inputs, depth=depth, n_lanes=n_lanes
        )

        # -- shared directories (identical to the historical session's) ----
        self._param_pi_values = {
            self.mapped_net.require(name): 0
            for name in self.design.param_space.names
        }
        self._user_pis = [
            pi
            for pi in self.mapped_net.pis
            if self.mapped_net.node_name(pi) not in self.design.param_nodes
        ]
        self._user_pi_names = {
            pi: self.mapped_net.node_name(pi) for pi in self._user_pis
        }
        self._tb_nodes = [
            self.mapped_net.require(g.po_name) for g in self.design.groups
        ]
        # design nodes a fault may be forced on: taps, latches and user PIs
        # (param PIs excluded — forcing a select corrupts observation)
        net_i = self.design.network
        self._forceable_nodes = (
            set(self.design.taps)
            | {latch.q for latch in net_i.latches}
            | set(net_i.pis)
        ) - set(self.design.param_nodes.values())
        tb_pos = {g.po_name for g in self.design.groups}
        self._user_po_names = [
            po
            for po in offline.source.po_names
            if po not in tb_pos and self.mapped_net.find(po) is not None
        ]
        self._user_po_ids = [
            self.mapped_net.require(po) for po in self._user_po_names
        ]

        # preallocated packed-sample row the trace capture reads through
        # (rebound per cycle from the kernel's integer values; zero numpy
        # allocation on the emulation fast path)
        self._word_bytes = 8 * self.n_words
        self._sample_buf = bytearray(len(self._tb_nodes) * self._word_bytes)
        self._sample_view = np.frombuffer(
            self._sample_buf, dtype=np.uint64
        ).reshape(len(self._tb_nodes), self.n_words)
        # cycle-batched gather buffers (numpy backend, combinational
        # programs): allocated on first blocked run
        self._blk_tb: np.ndarray | None = None
        self._blk_po: np.ndarray | None = None

        # -- per-lane state -------------------------------------------------
        zeros = self.design.param_space.zeros()
        self.scgs: list[SpecializedConfigGenerator] = []
        for _ in range(n_lanes):
            scg = SpecializedConfigGenerator(
                self.pconf.bitstream, model=self.model
            )
            scg.load_full(zeros)
            self.scgs.append(scg)
        self.assignments: list[ParameterAssignment] = [zeros] * n_lanes
        self._observed: list[dict[str, str]] = [
            self.design.observed_at({}) for _ in range(n_lanes)
        ]
        self.turns: list[list[DebugTurnLog]] = [[] for _ in range(n_lanes)]
        self._forces: list[list[ForcedFault]] = [[] for _ in range(n_lanes)]
        self._stim_fns: list[Stimulus | None] = [None] * n_lanes
        self._stim_scripts: list[Sequence[Mapping[str, int]] | None] = [
            None
        ] * n_lanes
        self._packed_stim: dict[int, list[int]] | None = None

    # -- lanes ------------------------------------------------------------------

    def _check_lane(self, lane: int) -> int:
        if not 0 <= lane < self.n_lanes:
            raise DebugFlowError(
                f"lane {lane} out of range (engine has {self.n_lanes})"
            )
        return lane

    def bind_stimulus(self, lane: int, stimulus: "StimulusLike") -> None:
        """Attach a lane's stimulus: a callable, a script, or ``None``.

        Scripts (sequences of per-cycle PI rows) are packed into lane
        bits once and replayed from the packed form every run — the fast
        path batch campaigns use.  Callables are consulted cycle by
        cycle, exactly like the historical session's ``stimulus``
        argument.  Missing PIs default to 0 either way.
        """
        self._check_lane(lane)
        if stimulus is not None and not callable(stimulus):
            self._stim_scripts[lane] = stimulus
            self._stim_fns[lane] = None
            self._packed_stim = None
        else:
            self._stim_fns[lane] = stimulus
            if self._stim_scripts[lane] is not None:
                self._stim_scripts[lane] = None
                self._packed_stim = None

    # -- observation ------------------------------------------------------------

    @property
    def observable_signals(self) -> list[str]:
        net = self.design.network
        return [net.node_name(t) for t in self.design.taps]

    def observe(self, signals: list[str], *, lane: int = 0) -> dict[str, str]:
        """Route ``signals`` to lane ``lane``'s view of the trace buffers.

        Respecializes that lane's SCG (one debugging turn *for that
        lane*), packs the lane's select-parameter values into its bit of
        the packed parameter-PI words, and logs the turn.  Other lanes'
        observations are untouched — each lane can watch a different
        signal set in the same packed emulation.
        """
        self._check_lane(lane)
        values = self.design.selection_for(signals)
        assignment = self.design.param_space.assignment(values)
        self.assignments[lane] = assignment
        rec = self.scgs[lane].respecialize(assignment)
        bit = 1 << lane
        for name in self.design.param_space.names:
            nid = self.mapped_net.require(name)
            if values.get(name, 0):
                self._param_pi_values[nid] |= bit
            else:
                self._param_pi_values[nid] &= ~bit
        self._observed[lane] = self.design.observed_at(values)
        self.turns[lane].append(
            DebugTurnLog(
                observed=list(signals),
                cycles_run=0,
                modeled_overhead_s=rec.device_cost.specialization_s,
                frames_touched=len(rec.frames_touched),
                software_s=rec.software_seconds,
            )
        )
        return dict(self._observed[lane])

    def observed(self, lane: int = 0) -> dict[str, str]:
        """Lane's current buffer input → observed signal name."""
        self._check_lane(lane)
        return dict(self._observed[lane])

    # -- fault forcing ------------------------------------------------------------

    def force(
        self,
        signal: str,
        value: int,
        *,
        lane: int = 0,
        first_cycle: int = 0,
        last_cycle: int | None = None,
    ) -> ForcedFault:
        """Force ``signal`` to ``value`` in lane ``lane`` only.

        The fault carries ``lane_mask = 1 << lane``: during emulation the
        node's value is ``(clean & ~mask) | (forced & mask)``, so every
        other lane keeps the clean computed value.  Only *design* signals
        that physically exist in the mapped network — observable taps
        (LUT roots), latches and user PIs — can be forced;
        debug-infrastructure nodes (select parameters, mux tree,
        trace-buffer outputs) are rejected, since forcing those would
        corrupt observation itself.
        """
        self._check_lane(lane)
        nid = self.mapped_net.find(signal)
        design_node = self.design.network.find(signal)
        if (
            nid is None
            or design_node is None
            or design_node not in self._forceable_nodes
        ):
            raise DebugFlowError(
                f"signal {signal!r} is not a forceable design signal; only "
                "observable taps, latches and user PIs exist in the mapped "
                "network as design nodes (debug-network nodes cannot be "
                "forced without corrupting observation)"
            )
        if value not in (0, 1):
            raise DebugFlowError("forced value must be 0 or 1")
        fault = ForcedFault(
            node=nid,
            signal=signal,
            value=value,
            first_cycle=first_cycle,
            last_cycle=last_cycle if last_cycle is not None else NEVER_ENDS,
            lane_mask=1 << lane,
        )
        self._forces[lane].append(fault)
        return fault

    def clear_forces(self, lane: int = 0) -> None:
        """Remove every active forced fault of one lane."""
        self._check_lane(lane)
        self._forces[lane].clear()

    def forces(self, lane: int = 0) -> list[ForcedFault]:
        """The lane's currently active forced faults."""
        self._check_lane(lane)
        return list(self._forces[lane])

    def _cycle_overrides_ints(self, cycle: int):
        """Word-packed blended overrides for all lanes' faults, one cycle."""
        flat = [f for lane_faults in self._forces for f in lane_faults]
        return active_override_ints(flat, cycle, n_words=self.n_words)

    # -- execution ----------------------------------------------------------------

    def reset(self) -> None:
        """Reset emulated latches and the trace memory (not the turn logs)."""
        self.sim.reset()
        self.trace.reset()

    def reset_trace(self) -> None:
        """Reset only the (shared) trace memory."""
        self.trace.reset()

    def _ensure_packed_stim(self) -> dict[int, list[int]]:
        if self._packed_stim is None:
            horizon = max(
                (len(s) for s in self._stim_scripts if s is not None),
                default=0,
            )
            packed = {pi: [0] * horizon for pi in self._user_pis}
            for lane, script in enumerate(self._stim_scripts):
                if script is None:
                    continue
                lane_bit = 1 << lane
                for cyc, row in enumerate(script):
                    for pi, name in self._user_pi_names.items():
                        if int(row.get(name, 0)) & 1:
                            packed[pi][cyc] |= lane_bit
            self._packed_stim = packed
        return self._packed_stim

    def _pi_values_ints(self, cycle: int) -> dict[int, int]:
        """Word-packed PI values for one cycle: parameters + lane stimulus."""
        pi_vals = dict(self._param_pi_values)
        packed = self._ensure_packed_stim()
        rows: list[Mapping[str, int] | None] | None = None
        if any(fn is not None for fn in self._stim_fns):
            rows = [fn(cycle) if fn is not None else None for fn in self._stim_fns]
        for pi in self._user_pis:
            script = packed.get(pi)
            word = script[cycle] if script is not None and cycle < len(script) else 0
            if rows is not None:
                name = self._user_pi_names[pi]
                for lane, row in enumerate(rows):
                    if row is None:
                        continue
                    if int(row.get(name, 0)) & 1:
                        word |= 1 << lane
                    else:
                        word &= ~(1 << lane)
            pi_vals[pi] = word
        return pi_vals

    def _step_compiled(self) -> None:
        """One packed cycle on the compiled kernel (no array traffic)."""
        cycle = self._csim.cycle
        self._csim.step(
            self._pi_values_ints(cycle),
            overrides=self._cycle_overrides_ints(cycle),
        )

    def _step_interpreted(self) -> dict[int, np.ndarray]:
        cycle = self.sim.cycle
        pi_arrays = {
            pi: int_to_words(word, self.n_words)
            for pi, word in self._pi_values_ints(cycle).items()
        }
        flat = [f for lane_faults in self._forces for f in lane_faults]
        overrides = active_overrides(flat, cycle, n_words=self.n_words)
        return self.sim.step(pi_arrays, overrides=overrides)

    def _trigger_mask(self, triggers, cycle: int, lane_bit) -> int:
        """Evaluate each lane's trigger against its view of this cycle's
        trace-buffer inputs.  ``lane_bit(group_index, lane)`` extracts one
        lane's 0/1 sample — the only piece that differs between the
        compiled and interpreted step paths."""
        if not triggers:
            return 0
        mask = 0
        for lane, trig in triggers.items():
            if trig is None:
                continue
            named = {
                g.po_name: lane_bit(i, lane)
                for i, g in enumerate(self.design.groups)
            }
            if trig(cycle, named):
                mask |= 1 << lane
        return mask

    def _account_cycles(
        self, n_cycles: int, lanes: "Sequence[int] | None"
    ) -> None:
        """Charge the run's cycles to each participating lane's open turn.

        ``lanes=None`` charges every lane — right for the facade and for
        detection runs.  Batch walk drivers pass the lanes that actually
        took a turn this replay, so a retired lane's accounting stops at
        its last real turn (matching what a solo session would report).
        """
        targets = range(self.n_lanes) if lanes is None else lanes
        for lane in targets:
            lane_turns = self.turns[lane]
            if lane_turns:
                lane_turns[-1].cycles_run += n_cycles

    def run(
        self,
        n_cycles: int,
        *,
        triggers: Mapping[int, Callable[[int, dict[str, int]], bool]]
        | None = None,
        lanes: "Sequence[int] | None" = None,
    ) -> None:
        """Emulate ``n_cycles``, capturing every lane's trace-buffer inputs.

        ``triggers`` optionally maps lane → ``trigger(cycle, buffer
        values)`` callables arming that lane's post-trigger stop (the
        facade's per-session trigger).  ``lanes`` restricts which lanes'
        turn logs the cycles are charged to (emulation always advances
        every lane — they share the simulator).  Waveforms are read back
        per lane via :meth:`waveforms`.
        """
        if n_cycles < 0:
            raise DebugFlowError("n_cycles must be non-negative")
        tb_nodes = self._tb_nodes
        csim = self._csim
        if csim is not None:
            if csim.block_cycles > 1:
                self._run_blocked(n_cycles, triggers)
                self._account_cycles(n_cycles, lanes)
                return
            vals = csim.values
            for _ in range(n_cycles):
                self._step_compiled()
                csim.export_words(tb_nodes, self._sample_buf)
                trigger_mask = self._trigger_mask(
                    triggers,
                    csim.cycle - 1,
                    lambda i, lane: (vals[tb_nodes[i]] >> lane) & 1,
                )
                self.trace.capture(
                    self._sample_view, trigger_mask=trigger_mask
                )
            self._account_cycles(n_cycles, lanes)
            return
        width = len(tb_nodes)
        for _ in range(n_cycles):
            values = self._step_interpreted()
            sample = np.fromiter(
                (values[n][0] for n in tb_nodes),
                dtype=np.uint64,
                count=width,
            )
            trigger_mask = self._trigger_mask(
                triggers,
                self.sim.cycle - 1,
                lambda i, lane: int(
                    (sample[i] >> np.uint64(lane)) & np.uint64(1)
                ),
            )
            self.trace.capture(sample, trigger_mask=trigger_mask)
        self._account_cycles(n_cycles, lanes)

    def _run_blocked(
        self, n_cycles: int, triggers
    ) -> None:
        """Cycle-batched body of :meth:`run` (numpy backend, combinational
        program): each batch of up to ``block_cycles`` cycles settles in
        one vectorized pass; trace captures then replay per cycle out of
        the batch's gathered trace-buffer rows."""
        csim = self._csim
        tb_nodes = self._tb_nodes
        n_tb = len(tb_nodes)
        blk = csim.block_cycles
        nw = self.n_words
        if self._blk_tb is None:
            self._blk_tb = np.empty((n_tb, blk * nw), dtype=np.uint64)
        v3 = self._blk_tb.reshape(n_tb, blk, nw)
        done = 0
        base = csim.cycle
        while done < n_cycles:
            n_batch = min(blk, n_cycles - done)
            cycles = range(base + done, base + done + n_batch)
            rows = [self._pi_values_ints(cy) for cy in cycles]
            ovs = [self._cycle_overrides_ints(cy) for cy in cycles]
            if n_batch == 1:
                csim.step(rows[0], overrides=ovs[0])
                csim.export_words(tb_nodes, self._sample_buf)
                sample = self._sample_view
            else:
                csim.run_block(rows, ovs)
                csim.block_export(tb_nodes, self._blk_tb)
            for c in range(n_batch):
                if n_batch > 1:
                    sample = v3[:, c, :]
                trigger_mask = self._trigger_mask(
                    triggers,
                    base + done + c,
                    lambda i, lane, s=sample: int(
                        s[i, lane >> 6] >> np.uint64(lane & 63)
                    )
                    & 1,
                )
                self.trace.capture(sample, trigger_mask=trigger_mask)
            done += n_batch

    @property
    def user_po_names(self) -> list[str]:
        """The design's own primary outputs (excluding trace-buffer POs)."""
        return list(self._user_po_names)

    def run_outputs(
        self,
        n_cycles: int,
        *,
        lanes: "Sequence[int] | None" = None,
        stop: Callable[[int, "list[int]"], bool] | None = None,
    ) -> np.ndarray:
        """Emulate up to ``n_cycles`` recording the packed primary outputs.

        The lane-parallel analogue of the session's ``output_trace``:
        advances the same emulation state as :meth:`run` (active forces
        apply, cycles count toward each lane's current turn) but captures
        nothing into the trace buffer.  Returns a ``(cycles_run, n_pos,
        n_words)`` ``uint64`` array; bit *k* of word *w* of entry
        ``[c, j]`` is lane ``64*w + k``'s value of ``user_po_names[j]``
        on cycle ``c``.

        ``stop(cycle_index, po_words)`` is consulted after every cycle
        with the word-packed integer PO values; returning ``True`` halts
        the run early (the packed-detection early exit: once every active
        lane has diverged there is nothing left to learn from the rest of
        the horizon).  Only the cycles actually emulated are charged and
        returned.
        """
        if n_cycles < 0:
            raise DebugFlowError("n_cycles must be non-negative")
        po_ids = self._user_po_ids
        out = np.zeros((n_cycles, len(po_ids), self.n_words), dtype=np.uint64)
        csim = self._csim
        ran = 0
        if csim is not None and csim.block_cycles > 1:
            ran = self._run_outputs_blocked(n_cycles, out, stop)
            self._account_cycles(ran, lanes)
            return out[:ran]
        for c in range(n_cycles):
            if csim is not None:
                self._step_compiled()
                vals = csim.values
                row_ints = [vals[nid] for nid in po_ids]
            else:
                values = self._step_interpreted()
                row_ints = [int(values[nid][0]) for nid in po_ids]
            if self.n_words == 1:
                for j, x in enumerate(row_ints):
                    out[c, j, 0] = x
            else:
                for j, x in enumerate(row_ints):
                    out[c, j] = int_to_words(x, self.n_words)
            ran += 1
            if stop is not None and stop(c, row_ints):
                break
        self._account_cycles(ran, lanes)
        return out[:ran]

    def _run_outputs_blocked(self, n_cycles: int, out: np.ndarray, stop) -> int:
        """Cycle-batched body of :meth:`run_outputs`: batches settle in
        one vectorized pass, PO rows gather once per batch, and the stop
        predicate replays per cycle — an early stop rewinds the batch's
        overshoot (:meth:`~repro.netlist.compiled.CompiledSimulator.rewind_block`)
        so cycle accounting and final state match the per-cycle path."""
        csim = self._csim
        po_ids = self._user_po_ids
        n_po = len(po_ids)
        blk = csim.block_cycles
        nw = self.n_words
        if self._blk_po is None:
            self._blk_po = np.empty((n_po, blk * nw), dtype=np.uint64)
        v3 = self._blk_po.reshape(n_po, blk, nw)
        ran = 0
        base = csim.cycle
        while ran < n_cycles:
            n_batch = min(blk, n_cycles - ran)
            cycles = range(base + ran, base + ran + n_batch)
            rows = [self._pi_values_ints(cy) for cy in cycles]
            ovs = [self._cycle_overrides_ints(cy) for cy in cycles]
            if n_batch == 1:
                csim.step(rows[0], overrides=ovs[0])
                row_ints = csim.node_ints(po_ids)
                for j, x in enumerate(row_ints):
                    out[ran, j] = int_to_words(x, nw)
                ran += 1
                if stop is not None and stop(ran - 1, row_ints):
                    return ran
                continue
            csim.run_block(rows, ovs)
            csim.block_export(po_ids, self._blk_po)
            consumed = n_batch
            stopped = False
            for c in range(n_batch):
                out[ran + c] = v3[:, c, :]
                if stop is not None:
                    row_ints = [
                        int.from_bytes(v3[j, c].tobytes(), "little")
                        for j in range(n_po)
                    ]
                    if stop(ran + c, row_ints):
                        consumed = c + 1
                        stopped = True
                        break
            if stopped:
                if consumed < n_batch:
                    csim.rewind_block(consumed)
                return ran + consumed
            ran += n_batch
        return ran

    # -- results --------------------------------------------------------------------

    def waveforms(self, lane: int = 0) -> dict[str, np.ndarray]:
        """Lane's captured windows keyed by its observed *signal* names."""
        self._check_lane(lane)
        window = self.trace.window(lane)
        out: dict[str, np.ndarray] = {}
        for i, g in enumerate(self.design.groups):
            sig = self._observed[lane].get(g.po_name)
            if sig is not None:
                out[sig] = window[:, i]
        return out

    # -- accounting ------------------------------------------------------------

    def total_modeled_overhead_s(self, lane: int = 0) -> float:
        self._check_lane(lane)
        return sum(t.modeled_overhead_s for t in self.turns[lane])

    def total_cycles(self, lane: int = 0) -> int:
        self._check_lane(lane)
        return sum(t.cycles_run for t in self.turns[lane])
