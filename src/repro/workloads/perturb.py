"""Functional bug injection.

The debug-loop examples and fault-injection tests need circuits with a known
RTL-style bug: a gate whose function differs subtly from the golden design.
:func:`inject_bug` mutates one gate and records enough information to check
later whether a debug session actually localized it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable

__all__ = ["InjectedBug", "inject_bug", "BUG_KINDS"]

BUG_KINDS = ("flip_entry", "swap_fanins", "wrong_polarity", "stuck_at")


@dataclass(frozen=True)
class InjectedBug:
    """Record of a mutation applied to a network."""

    node: int
    node_name: str
    kind: str
    description: str
    original_func: TruthTable


def inject_bug(
    net: LogicNetwork,
    rng: np.random.Generator,
    *,
    kind: str | None = None,
    node: int | None = None,
) -> InjectedBug:
    """Mutate one gate of ``net`` in place and return the bug record.

    Parameters
    ----------
    kind:
        One of :data:`BUG_KINDS`; random if omitted.
    node:
        Specific gate to corrupt; a random multi-input gate if omitted.

    The mutation is guaranteed to change the gate's local function (callers
    that need an *observable* failure should verify against a testbench —
    not every local change propagates to an output on every stimulus, which
    is exactly why debugging needs internal observability).
    """
    gates = [
        g
        for g in net.gates()
        if len(net.fanins(g)) >= 1 and not (net.func(g) or TruthTable.const(0)).is_const()
    ]
    if not gates:
        raise WorkloadError("network has no mutable gates")
    if node is None:
        node = gates[int(rng.integers(0, len(gates)))]
    elif net.kind(node) != NodeKind.GATE:
        raise WorkloadError(f"node {node} is not a gate")
    if kind is None:
        kind = BUG_KINDS[int(rng.integers(0, len(BUG_KINDS)))]

    func = net.func(node)
    assert func is not None
    fanins = net.fanins(node)
    name = net.node_name(node)

    if kind == "flip_entry":
        pos = int(rng.integers(0, 1 << func.n_vars))
        new = TruthTable(func.n_vars, func.bits ^ (1 << pos))
        desc = f"flipped truth-table entry {pos} of {name}"
    elif kind == "swap_fanins" and len(fanins) >= 2:
        i, j = 0, 1 + int(rng.integers(0, len(fanins) - 1))
        mapping = list(range(func.n_vars))
        mapping[i], mapping[j] = mapping[j], mapping[i]
        new = func.permute(mapping)
        if new == func:  # symmetric function — fall back to an entry flip
            return inject_bug(net, rng, kind="flip_entry", node=node)
        desc = f"swapped fan-ins {i} and {j} of {name}"
    elif kind == "wrong_polarity":
        var = int(rng.integers(0, func.n_vars))
        # complement one input: f'(.., x, ..) = f(.., ~x, ..)
        c0 = func.cofactor(var, 0)
        c1 = func.cofactor(var, 1)
        v = TruthTable.var(var, func.n_vars)
        new = (v & c0) | (~v & c1)
        if new == func:
            return inject_bug(net, rng, kind="flip_entry", node=node)
        desc = f"inverted polarity of fan-in {var} of {name}"
    elif kind == "stuck_at":
        value = int(rng.integers(0, 2))
        new = TruthTable.const(value, func.n_vars)
        desc = f"{name} stuck at {value}"
    else:
        return inject_bug(net, rng, kind="flip_entry", node=node)

    net.rewire(node, fanins, new)
    return InjectedBug(
        node=node,
        node_name=name,
        kind=kind,
        description=desc,
        original_func=func,
    )
