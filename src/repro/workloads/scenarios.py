"""Debug-campaign scenario generation.

A *scenario* is one (design, bug) pair a batch debug campaign must
localize: a benchmark design plus either an emulation-level stuck-at fault
(:class:`repro.core.debug.ForcedFault` semantics — the configuration is
clean, so every scenario on the same design shares one offline-stage
artifact) or a netlist-level mutation (:func:`repro.workloads.perturb.
inject_bug` — a genuinely different design that pays its own generic
stage, exactly like a fresh RTL revision would).

Generators are pure functions of their arguments: the same ``(spec, seed)``
always yields the same scenario list, which is what makes campaign results
reproducible across serial and parallel execution (see
``tests/test_campaign.py``).  Candidate faults are screened against a
golden source-level simulation so that campaigns are not dominated by
silent faults; mapped-level observability is re-checked by the campaign
runner, since technology mapping may duplicate the faulted logic into LUT
cones (scenarios whose fault stays invisible on the emulated design are
reported as ``undetected`` — the paper's motivating problem).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.netlist.compiled import int_to_words
from repro.netlist.network import LogicNetwork
from repro.netlist.simulate import SequentialSimulator
from repro.util.bitops import words_for_bits
from repro.util.rng import RngHub, derive_seed
from repro.workloads.generator import generate_circuit
from repro.workloads.perturb import InjectedBug, inject_bug
from repro.workloads.suites import BenchmarkSpec, get_spec

__all__ = [
    "DebugScenario",
    "campaign_spec",
    "stimulus_script",
    "signal_traces",
    "packed_signal_traces",
    "po_trace",
    "stuck_at_scenarios",
    "mutation_scenarios",
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class DebugScenario:
    """One (design, bug) pair of a debug campaign.

    ``kind`` is ``"stuck_at"`` (emulation-level fault on ``fault_signal``;
    the debugged design equals the golden design, so offline artifacts are
    shared) or ``"mutation"`` (netlist bug reproduced deterministically
    from ``bug_seed``; the debugged design is the mutated copy).
    Scenarios are frozen, hashable and picklable — they travel to campaign
    worker processes as-is.
    """

    name: str
    kind: str
    spec: BenchmarkSpec
    design_seed: int = 2016
    horizon: int = 64
    """Cycles of stimulus within which the failure must be caught."""
    stimulus_seed: int = 7
    fault_signal: str | None = None
    fault_value: int = 0
    fault_from_cycle: int = 0
    bug_seed: int = 0
    description: str = ""

    def golden_network(self) -> LogicNetwork:
        """The bug-free reference design (the engineer's specification)."""
        return generate_circuit(self.spec, self.design_seed)

    def debug_network(self) -> LogicNetwork:
        """The design the offline stage instruments.

        For ``stuck_at`` scenarios this *is* the golden network — the whole
        point of emulation-level faults is that the implemented design, and
        therefore its offline artifact, is shared by every scenario.  For
        ``mutation`` scenarios it is the deterministically re-mutated copy.
        """
        net = self.golden_network()
        if self.kind == "mutation":
            self.reproduce_bug(net)
            net.name = f"{net.name}_bug{self.bug_seed}"
        return net

    def reproduce_bug(self, net: LogicNetwork) -> InjectedBug:
        """Re-apply this scenario's mutation to ``net`` (in place).

        :func:`inject_bug` draws node, kind and mutation details from its
        generator, so seeding a fresh generator with ``bug_seed``
        reproduces the exact bug the screening pass accepted.
        """
        if self.kind != "mutation":
            raise WorkloadError(f"scenario {self.name!r} has no netlist bug")
        return inject_bug(net, np.random.default_rng(self.bug_seed))

    def stimulus(self, n_cycles: int | None = None) -> list[dict[str, int]]:
        """The scenario's deterministic per-cycle stimulus script."""
        return stimulus_script(
            self.golden_network(),
            n_cycles if n_cycles is not None else self.horizon,
            self.stimulus_seed,
        )


def campaign_spec(
    name: str = "campaign-small",
    *,
    n_gates: int = 120,
    depth: int = 8,
    n_latches: int = 0,
    n_pis: int = 20,
    n_pos: int = 10,
) -> BenchmarkSpec:
    """A synthetic benchmark spec for campaign tests and benchmarks.

    Unlike the Table I/II suite these carry no published reference numbers;
    they exist so campaigns can be sized freely (the physical back-end
    currently supports combinational designs only, hence the
    ``n_latches=0`` default).
    """
    return BenchmarkSpec(
        name=name,
        n_gates=n_gates,
        golden_depth=0,
        paper_initial_luts=0,
        paper_sm_luts=0,
        paper_abc_luts=0,
        paper_proposed_luts=0,
        paper_tluts=0,
        paper_tcons=0,
        n_latches=n_latches,
        n_pis=n_pis,
        n_pos=n_pos,
        gate_depth_target=depth,
        seed_salt=name,
    )


def stimulus_script(
    net: LogicNetwork, n_cycles: int, seed: int
) -> list[dict[str, int]]:
    """Deterministic random per-cycle PI values, keyed by PI name."""
    rng = np.random.default_rng(seed)
    names = [net.node_name(p) for p in net.pis]
    return [
        {n: int(rng.integers(0, 2)) for n in names} for _ in range(n_cycles)
    ]


def signal_traces(
    net: LogicNetwork,
    stim: list[dict[str, int]],
    names: list[str],
    *,
    interpreted: bool = False,
) -> dict[str, np.ndarray]:
    """Simulate ``net`` under ``stim`` recording the named signals.

    The single per-cycle PI-packing loop every reference trace derives
    from — golden oracles (:func:`repro.campaign.golden_signal_traces`)
    and PO traces (:func:`po_trace`) are views over it, so value packing
    can never diverge between them.  One simulation pass serves any
    number of signals; names absent from ``net`` are skipped.
    ``interpreted`` bypasses the compiled kernels (benchmark baseline).
    """
    sim = SequentialSimulator(net, n_words=1, interpreted=interpreted)
    traces: dict[str, list[int]] = {
        n: [] for n in names if net.find(n) is not None
    }
    for cyc_stim in stim:
        values = sim.step(
            {
                p: np.array(
                    [_ALL_ONES if cyc_stim[net.node_name(p)] else 0],
                    dtype=np.uint64,
                )
                for p in net.pis
            }
        )
        for n in traces:
            traces[n].append(int(values[net.require(n)][0] & np.uint64(1)))
    return {n: np.array(v, dtype=np.uint8) for n, v in traces.items()}


def packed_signal_traces(
    net: LogicNetwork,
    stims: list[list[dict[str, int]]],
    names: list[str],
    *,
    interpreted: bool = False,
) -> dict[str, np.ndarray]:
    """Lane-packed golden traces: one simulation pass for many stimuli.

    ``stims`` holds one per-cycle stimulus script per lane (all the same
    length); every 64 lanes occupy one ``uint64`` word, so the returned
    arrays have shape ``(n_cycles, n_words)``.  Bit ``k % 64`` of word
    ``k // 64`` of ``traces[name][cyc]`` is what :func:`signal_traces`
    would report for ``name`` on cycle ``cyc`` under ``stims[k]`` — the
    simulator evaluates every lane's golden reference in the same bitwise
    operations, which is what lets the lane-parallel campaign runner pay
    for one golden pass per *batch* instead of one per scenario.  Extract
    lane ``k`` with ``((arr[:, k // 64] >> (k % 64)) & 1).astype(np.uint8)``.
    """
    n_words = max(1, words_for_bits(len(stims)))
    if not stims:
        return {n: np.zeros((0, n_words), dtype=np.uint64) for n in names}
    n_cycles = len(stims[0])
    if any(len(s) != n_cycles for s in stims):
        raise WorkloadError("stimulus lanes must share one horizon")
    sim = SequentialSimulator(net, n_words=n_words, interpreted=interpreted)
    names = [n for n in names if net.find(n) is not None]
    traces = {n: np.zeros((n_cycles, n_words), dtype=np.uint64) for n in names}
    name_ids = {n: net.require(n) for n in names}
    pi_names = {p: net.node_name(p) for p in net.pis}
    # pack each PI's whole script once: one word-packed integer per cycle
    packed_pis: dict[int, list[int]] = {p: [0] * n_cycles for p in pi_names}
    for lane, stim in enumerate(stims):
        lane_bit = 1 << lane
        for cyc in range(n_cycles):
            row = stim[cyc]
            for p, pname in pi_names.items():
                if int(row.get(pname, 0)) & 1:
                    packed_pis[p][cyc] |= lane_bit
    for cyc in range(n_cycles):
        values = sim.step(
            {
                p: int_to_words(script[cyc], n_words)
                for p, script in packed_pis.items()
            }
        )
        for n, nid in name_ids.items():
            traces[n][cyc] = values[nid]
    return traces


def po_trace(
    net: LogicNetwork, stim: list[dict[str, int]]
) -> list[dict[str, int]]:
    """Primary-output values per cycle of ``net`` under ``stim``.

    The golden reference trace failure detection and scenario screening
    compare against (stuck-at candidates themselves are screened on the
    mapped emulation via :meth:`repro.core.debug.DebugSession.force`).
    """
    traces = signal_traces(net, stim, list(net.po_names))
    return [
        {po: int(traces[po][cyc]) for po in traces}
        for cyc in range(len(stim))
    ]


def _resolve_spec(spec: BenchmarkSpec | str) -> BenchmarkSpec:
    return get_spec(spec) if isinstance(spec, str) else spec


def stuck_at_scenarios(
    spec: BenchmarkSpec | str,
    n: int,
    *,
    seed: int = 2016,
    design_seed: int = 2016,
    horizon: int = 64,
    stimulus_seed: int = 7,
    offline=None,
) -> list[DebugScenario]:
    """Generate ``n`` emulation-level stuck-at scenarios for one design.

    Candidate sites are drawn from the design's observable taps and
    screened on the *mapped emulation* (one shared
    :class:`~repro.core.debug.DebugSession`, re-armed per candidate):
    a scenario is kept only if forcing the stuck value diverges from the
    golden primary outputs within ``horizon`` cycles.  Mapped-level
    screening matters because technology mapping duplicates logic — a
    fault that propagates in the source netlist can be absorbed into LUT
    cones and stay invisible on the emulated design.

    ``offline`` optionally supplies the design's offline artifact (e.g.
    from a campaign cache); by default one generic-stage run is performed
    here.  Raises :class:`WorkloadError` when the design cannot yield
    ``n`` observable faults.
    """
    from repro.core.debug import DebugSession
    from repro.core.flow import run_generic_stage

    spec = _resolve_spec(spec)
    golden = generate_circuit(spec, design_seed)
    stim = stimulus_script(golden, horizon, stimulus_seed)
    golden_pos = po_trace(golden, stim)
    if offline is None:
        offline = run_generic_stage(golden)
    session = DebugSession(offline)
    po_names = set(golden.po_names)
    candidates = [
        t
        for t in offline.annotation.tap_names
        if golden.find(t) is not None and t not in po_names
    ]
    rng = RngHub(seed).stream(f"campaign/stuck_at/{spec.name}")
    order = [candidates[i] for i in rng.permutation(len(candidates))]

    def observable(signal: str, value: int) -> bool:
        session.clear_forces()
        session.force(signal, value)
        session.reset()
        observed = session.output_trace(horizon, stimulus=lambda c: stim[c])
        return any(
            po in want and row[po] != want[po]
            for row, want in zip(observed, golden_pos)
            for po in row
        )

    scenarios: list[DebugScenario] = []
    for signal in order:
        if len(scenarios) >= n:
            break
        first_value = int(rng.integers(0, 2))
        for value in (first_value, 1 - first_value):
            if observable(signal, value):
                scenarios.append(
                    DebugScenario(
                        name=f"{spec.name}/sa{value}@{signal}",
                        kind="stuck_at",
                        spec=spec,
                        design_seed=design_seed,
                        horizon=horizon,
                        stimulus_seed=stimulus_seed,
                        fault_signal=signal,
                        fault_value=value,
                        description=f"{signal} stuck at {value}",
                    )
                )
                break
    if len(scenarios) < n:
        raise WorkloadError(
            f"only {len(scenarios)}/{n} observable stuck-at faults found "
            f"for {spec.name} within {horizon} cycles"
        )
    return scenarios


def mutation_scenarios(
    spec: BenchmarkSpec | str,
    n: int,
    *,
    seed: int = 2016,
    design_seed: int = 2016,
    horizon: int = 64,
    stimulus_seed: int = 7,
    max_attempts_per_scenario: int = 25,
) -> list[DebugScenario]:
    """Generate ``n`` netlist-mutation scenarios for one design.

    Each attempt mutates a fresh copy of the golden design with a seed
    derived from ``(seed, attempt)`` and keeps it only if (a) the mutation
    is observable at a primary output within ``horizon`` cycles — the same
    screening :mod:`examples.bug_hunt` performs — and (b) the mutated gate
    survives the flow's netlist cleanup, so the ground-truth site exists in
    the instrumented design a localization can be judged against.  The
    accepted ``bug_seed`` is recorded so workers can re-create the
    identical bug.
    """
    from repro.netlist.transforms import cleanup

    spec = _resolve_spec(spec)
    golden = generate_circuit(spec, design_seed)
    stim = stimulus_script(golden, horizon, stimulus_seed)
    golden_pos = po_trace(golden, stim)

    scenarios: list[DebugScenario] = []
    attempt = 0
    budget = n * max_attempts_per_scenario
    while len(scenarios) < n and attempt < budget:
        bug_seed = derive_seed(seed, f"campaign/mutation/{spec.name}/{attempt}")
        attempt += 1
        trial = golden.copy()
        bug = inject_bug(trial, np.random.default_rng(bug_seed))
        buggy_pos = po_trace(trial, stim)
        if all(a == b for a, b in zip(golden_pos, buggy_pos)):
            continue
        if cleanup(trial).find(bug.node_name) is None:
            continue
        scenarios.append(
            DebugScenario(
                name=f"{spec.name}/mut{len(scenarios)}@{bug.node_name}",
                kind="mutation",
                spec=spec,
                design_seed=design_seed,
                horizon=horizon,
                stimulus_seed=stimulus_seed,
                bug_seed=bug_seed,
                description=bug.description,
            )
        )
    if len(scenarios) < n:
        raise WorkloadError(
            f"only {len(scenarios)}/{n} observable mutations found for "
            f"{spec.name} in {attempt} attempts"
        )
    return scenarios
