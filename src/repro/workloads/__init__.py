"""Benchmark workloads.

The paper evaluates on ISCAS89 and VTR benchmark netlists, which are not
redistributable here.  This package generates *synthetic stand-ins* with the
same published structural statistics (gate count, logic depth, latch count,
I/O width) per benchmark, deterministically from a seed — see DESIGN.md §2
for why this substitution preserves the experiments' behaviour.
"""

from repro.workloads.suites import (
    BenchmarkSpec,
    PAPER_SUITE,
    paper_suite,
    get_spec,
)
from repro.workloads.generator import generate_circuit
from repro.workloads.perturb import inject_bug, InjectedBug
from repro.workloads.scenarios import (
    DebugScenario,
    campaign_spec,
    mutation_scenarios,
    stimulus_script,
    stuck_at_scenarios,
)

__all__ = [
    "BenchmarkSpec",
    "PAPER_SUITE",
    "paper_suite",
    "get_spec",
    "generate_circuit",
    "inject_bug",
    "InjectedBug",
    "DebugScenario",
    "campaign_spec",
    "mutation_scenarios",
    "stimulus_script",
    "stuck_at_scenarios",
]
