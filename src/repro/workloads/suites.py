"""The paper's benchmark suite, as structural specifications.

Table I of the paper lists gate counts (#Gate) and Table II the mapped logic
depth ("Golden") for eight circuits drawn from the ISCAS89 and VTR suites.
The specs below pin those published values; latch and I/O counts come from
the public descriptions of the original benchmarks (VTR 7.0 and ISCAS89
documentation) and only influence results through second-order structure.

``gate_depth_target`` is the *gate-level* depth the generator aims for; it
was calibrated so that mapping the generated circuit with the ABC-style
K=6 mapper lands close to the paper's Golden depth (see
``tests/test_workloads.py::test_golden_depth_shape``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchmarkSpec", "PAPER_SUITE", "paper_suite", "get_spec"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Structural recipe for one synthetic benchmark circuit."""

    name: str
    n_gates: int
    """Published #Gate count (Table I, column 2)."""
    golden_depth: int
    """Published mapped depth (Table II, column 'Golden')."""
    paper_initial_luts: int
    """Published 'Initial' LUT count (Table I) — reporting reference only."""
    paper_sm_luts: int
    paper_abc_luts: int
    paper_proposed_luts: int
    paper_tluts: int
    paper_tcons: int
    n_latches: int
    n_pis: int
    n_pos: int
    gate_depth_target: int
    """Gate-level depth the generator builds (calibrated per benchmark so
    the ABC-mapped depth reproduces ``golden_depth``)."""
    seed_salt: str = ""

    @property
    def is_sequential(self) -> bool:
        return self.n_latches > 0


def _spec(
    name: str,
    n_gates: int,
    golden: int,
    initial: int,
    sm: int,
    abc: int,
    proposed: int,
    tluts: int,
    tcons: int,
    latches: int,
    pis: int,
    pos: int,
    gate_depth: int,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        n_gates=n_gates,
        golden_depth=golden,
        paper_initial_luts=initial,
        paper_sm_luts=sm,
        paper_abc_luts=abc,
        paper_proposed_luts=proposed,
        paper_tluts=tluts,
        paper_tcons=tcons,
        n_latches=latches,
        n_pis=pis,
        n_pos=pos,
        gate_depth_target=gate_depth,
        seed_salt=name,
    )


#: The eight benchmarks of Tables I/II with their published numbers.
#: ``gate_depth`` (last column) was calibrated by binary search so that the
#: ABC-style K=6 mapping of the generated circuit reproduces the paper's
#: Golden depth (Table II) exactly — see tools/calibrate_depth.py.
PAPER_SUITE: dict[str, BenchmarkSpec] = {
    s.name: s
    for s in [
        # name        #Gate golden Init   SM     ABC    Prop  TLUT  TCON  FF    PI   PO  gateD
        _spec("stereov.", 215, 4, 208, 553, 590, 190, 8, 332, 0, 58, 32, 8),
        _spec("diffeq2", 419, 14, 422, 1719, 1819, 325, 2, 712, 65, 32, 32, 37),
        _spec("diffeq1", 582, 15, 575, 2556, 2659, 491, 4, 1065, 97, 64, 64, 41),
        _spec("clma", 8381, 11, 4461, 23694, 23219, 7707, 1252, 7935, 33, 382, 82, 21),
        _spec("or1200", 3136, 27, 3084, 9769, 10958, 3004, 9, 2986, 691, 385, 394, 73),
        _spec("frisc", 6002, 14, 2747, 11517, 11412, 5881, 2333, 4910, 886, 20, 116, 29),
        _spec("s38417", 6096, 7, 3462, 20695, 21040, 6204, 1495, 5597, 1636, 28, 106, 13),
        _spec("s38584", 6281, 7, 2906, 20687, 21032, 6204, 1495, 5597, 1426, 38, 304, 13),
    ]
}


def paper_suite(small_only: bool = False) -> list[BenchmarkSpec]:
    """The suite in Table I/II order; ``small_only`` keeps circuits <1000 gates.

    The compile-time experiment (§V-C.1) is run on "small designs" in the
    paper; ``small_only=True`` selects the same subset (stereov., diffeq2,
    diffeq1).
    """
    specs = list(PAPER_SUITE.values())
    if small_only:
        specs = [s for s in specs if s.n_gates < 1000]
    return specs


def get_spec(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by its Table I name."""
    try:
        return PAPER_SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(PAPER_SUITE)}"
        ) from None
