"""Deterministic synthetic circuit generation.

:func:`generate_circuit` builds a layered gate-level DAG matching a
:class:`~repro.workloads.suites.BenchmarkSpec`: exact gate count, exact
gate-level depth, requested latch/PI/PO counts, and a fan-in/fan-out profile
typical of technology-independent synthesis output (mostly 2-input gates,
average fan-in ≈ 2.2, a few high-fan-out control signals).

Construction invariants (tested in ``tests/test_workloads.py``):

* the network is structurally valid and combinationally acyclic;
* gate-level depth equals ``spec.gate_depth_target`` exactly;
* every gate output is read by something (no dead logic inflating counts);
* generation is a pure function of ``(spec, seed)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.netlist.network import LogicNetwork
from repro.netlist.truthtable import TruthTable
from repro.util.rng import RngHub
from repro.workloads.suites import BenchmarkSpec

__all__ = ["generate_circuit"]


def _two_input_library() -> list[TruthTable]:
    a = TruthTable.var(0, 2)
    b = TruthTable.var(1, 2)
    return [
        a & b,          # AND
        a | b,          # OR
        ~(a & b),       # NAND
        ~(a | b),       # NOR
        a ^ b,          # XOR
        ~(a ^ b),       # XNOR
        a & ~b,         # ANDN
        ~a | b,         # ORN (implication)
    ]


#: selection weights: AND/OR family dominates real synthesis output, XORs
#: appear in datapaths (diffeq/clma) at a modest rate.
_TWO_INPUT_WEIGHTS = np.array([0.26, 0.24, 0.12, 0.08, 0.10, 0.06, 0.08, 0.06])


def _three_input_library() -> list[TruthTable]:
    a = TruthTable.var(0, 3)
    b = TruthTable.var(1, 3)
    c = TruthTable.var(2, 3)
    return [
        TruthTable.mux(c, a, b),          # 2:1 mux
        (a & b) | (b & c) | (a & c),      # majority (carry)
        a ^ b ^ c,                        # full-adder sum
        (a & b) | c,                      # and-or
        (a | b) & c,                      # or-and
    ]


def _level_sizes(n_gates: int, depth: int, rng: np.random.Generator) -> list[int]:
    """Split ``n_gates`` over ``depth`` levels with a mid-heavy profile."""
    if n_gates < depth:
        raise WorkloadError(
            f"cannot build depth {depth} with only {n_gates} gates"
        )
    # Triangular weight profile peaking at 40% depth — real circuits widen
    # after the input decode and narrow toward outputs.
    xs = np.arange(1, depth + 1, dtype=float) / depth
    weights = 1.2 - np.abs(xs - 0.4)
    weights = np.maximum(weights, 0.25)
    weights *= rng.uniform(0.85, 1.15, size=depth)
    sizes = np.maximum(1, np.floor(weights / weights.sum() * n_gates)).astype(int)
    # fix rounding drift while keeping every level ≥ 1
    diff = n_gates - int(sizes.sum())
    order = rng.permutation(depth)
    i = 0
    while diff != 0:
        lvl = order[i % depth]
        if diff > 0:
            sizes[lvl] += 1
            diff -= 1
        elif sizes[lvl] > 1:
            sizes[lvl] -= 1
            diff += 1
        i += 1
    return sizes.tolist()


def generate_circuit(
    spec: BenchmarkSpec, seed: int = 2016, *, name: str | None = None
) -> LogicNetwork:
    """Generate the synthetic stand-in circuit for ``spec``.

    Parameters
    ----------
    spec:
        Structural targets (gate count, depth, latches, I/O).
    seed:
        Root seed; the per-benchmark stream is salted with ``spec.seed_salt``
        so different benchmarks are independent under one experiment seed.

    >>> from repro.workloads.suites import get_spec
    >>> net = generate_circuit(get_spec("stereov."))
    >>> net.n_gates == get_spec("stereov.").n_gates
    True
    """
    hub = RngHub(seed)
    rng = hub.stream(f"workload/{spec.seed_salt or spec.name}")
    net = LogicNetwork(name or spec.name)

    lib2 = _two_input_library()
    lib3 = _three_input_library()
    inv = ~TruthTable.var(0, 1)

    pis = [net.add_pi(f"pi{idx}") for idx in range(spec.n_pis)]
    latch_qs = [
        net.add_latch(f"lq{idx}", init=int(rng.integers(0, 2)))
        for idx in range(spec.n_latches)
    ]
    sources = pis + latch_qs

    depth = spec.gate_depth_target
    sizes = _level_sizes(spec.n_gates, depth, rng)

    by_level: list[list[int]] = [list(sources)]
    unused: set[int] = set(sources)
    # Pool for O(1)-amortized random draws from `unused`, restricted to
    # strictly earlier levels (same-level picks would deepen the circuit
    # past the target).  Stale entries are skipped lazily.
    unused_pool: list[int] = list(sources)
    gate_idx = 0

    def draw_unused() -> int | None:
        """Random not-yet-read signal from an earlier level, or None."""
        while unused_pool:
            i = int(rng.integers(0, len(unused_pool)))
            unused_pool[i], unused_pool[-1] = unused_pool[-1], unused_pool[i]
            cand = unused_pool[-1]
            if cand in unused:
                return cand
            unused_pool.pop()  # stale: consumed since it was queued
        return None

    for level in range(1, depth + 1):
        this_level: list[int] = []
        prev_level = by_level[level - 1]
        n_here = sizes[level - 1]
        for j in range(n_here):
            # enforce exact depth: the first gate of every level anchors a
            # critical "spine" through the previous level's first node.
            if j == 0:
                first = prev_level[0]
            else:
                first = prev_level[int(rng.integers(0, len(prev_level)))]

            roll = rng.random()
            if roll < 0.05 and level > 1:
                fanins = [first]
                func = inv
            else:
                # remaining fan-ins drawn from any earlier level with a
                # geometric bias toward recent levels (local connectivity).
                n_extra = 2 if roll > 0.88 else 1
                fanins = [first]
                for _ in range(n_extra):
                    pick: int | None = None
                    if rng.random() < 0.7:
                        # consume a not-yet-used signal so no logic is dead
                        pick = draw_unused()
                    if pick is None:
                        back = min(int(rng.geometric(0.45)), level - 1)
                        pool = by_level[level - 1 - back] or prev_level
                        pick = pool[int(rng.integers(0, len(pool)))]
                    fanins.append(pick)
                if len(set(fanins)) < len(fanins):
                    # duplicate fan-in would make the function degenerate;
                    # fall back to an inverter of the anchor
                    fanins = [first]
                    func = inv
                elif n_extra == 1:
                    func = lib2[
                        int(rng.choice(len(lib2), p=_TWO_INPUT_WEIGHTS))
                    ]
                else:
                    func = lib3[int(rng.integers(0, len(lib3)))]

            nid = net.add_gate(f"n{gate_idx}", fanins, func)
            gate_idx += 1
            this_level.append(nid)
            for f in fanins:
                unused.discard(f)
        # expose this level's outputs to later levels only
        for nid in this_level:
            unused.add(nid)
            unused_pool.append(nid)
        by_level.append(this_level)

    all_gates = [g for lvl in by_level[1:] for g in lvl]

    # latch drivers: prefer unused signals from the deeper half of the circuit
    deep_pool = [g for lvl in by_level[depth // 2 :] for g in lvl]
    for latch in net.latches:
        cand = [u for u in unused if u in set(deep_pool)]
        if cand:
            drv = cand[int(rng.integers(0, len(cand)))]
        else:
            drv = deep_pool[int(rng.integers(0, len(deep_pool)))]
        net.set_latch_driver(latch.q, drv)
        unused.discard(drv)

    # primary outputs: the spine end first (pins the measured depth), then
    # unused signals, then random deep gates.
    po_nodes: list[int] = [by_level[depth][0]]
    unused.discard(po_nodes[0])
    unused_gates = [u for u in unused if u not in set(sources)]
    rng.shuffle(unused_gates)
    for u in unused_gates:
        if len(po_nodes) >= spec.n_pos:
            break
        if u not in po_nodes:
            po_nodes.append(u)
            unused.discard(u)
    while len(po_nodes) < spec.n_pos:
        cand = deep_pool[int(rng.integers(0, len(deep_pool)))]
        if cand not in po_nodes:
            po_nodes.append(cand)

    # anything still unused gets a reader: fold pairs into existing 1-input
    # gates is intrusive, so instead spread them over the PO list tail by
    # OR-ing into the last POs' drivers is also intrusive — the clean fix is
    # to rewire: make each leftover an extra fan-in of a same-or-deeper
    # inverter, upgrading it to a 2-input gate. This keeps gate count exact.
    po_set = set(po_nodes)
    source_set = set(sources)
    leftovers = [u for u in unused if u not in source_set and u not in po_set]
    if leftovers:
        lvl_of = {g: lv for lv, nodes in enumerate(by_level) for g in nodes}
        # hosts: single-input gates sorted by level descending, consumed once
        hosts = sorted(
            (
                g
                for g in all_gates
                if len(net.fanins(g)) == 1 and g not in po_set
            ),
            key=lambda g: -lvl_of[g],
        )
        leftovers.sort(key=lambda u: lvl_of[u])
        hi = 0
        for u in leftovers:
            host = None
            while hi < len(hosts):
                g = hosts[hi]
                if lvl_of[g] > lvl_of[u] and net.fanins(g)[0] != u:
                    host = g
                    hi += 1
                    break
                hi += 1
            if host is not None:
                old_in = net.fanins(host)[0]
                # keep the inversion on the original input, OR in the orphan:
                # f = ~old | u  (still depends on both)
                f = (~TruthTable.var(0, 2)) | TruthTable.var(1, 2)
                net.rewire(host, (old_in, u), f)
            else:
                # no host inverter downstream: expose as an extra PO so the
                # signal is live (counts toward observability anyway)
                po_nodes.append(u)

    for idx, nid in enumerate(po_nodes):
        existing = net.node_name(nid)
        # POs are named after their driving signal, matching BLIF convention
        net.add_po(existing)

    return net
