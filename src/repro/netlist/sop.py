"""Sum-of-products covers (BLIF ``.names`` bodies) and ISOP extraction.

A :class:`Cube` is a product term over ``n`` ordered inputs using the BLIF
alphabet ``0`` (negative literal), ``1`` (positive literal), ``-``
(don't-care).  A :class:`Cover` is a list of cubes plus the output polarity.

The bit-parallel simulator evaluates node functions cube-by-cube, so compact
covers matter; :func:`truthtable_to_cover` implements the Minato–Morreale
irredundant SOP (ISOP) algorithm on integer truth tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.netlist.truthtable import TruthTable, _full_mask

__all__ = ["Cube", "Cover", "cover_to_truthtable", "truthtable_to_cover"]


@dataclass(frozen=True)
class Cube:
    """A product term: ``mask`` selects bound variables, ``polarity`` their phase.

    Variable ``i`` appears as a positive literal iff ``mask>>i & 1`` and
    ``polarity>>i & 1``; as a negative literal iff ``mask>>i & 1`` and not
    ``polarity>>i & 1``; otherwise it is unbound (``-``).
    """

    mask: int
    polarity: int

    def __post_init__(self) -> None:
        if self.polarity & ~self.mask:
            raise ValueError("polarity bits outside mask")

    @staticmethod
    def from_blif(text: str) -> "Cube":
        """Parse a BLIF input-plane string like ``1-0``.

        >>> c = Cube.from_blif("1-0")
        >>> c.to_blif(3)
        '1-0'
        """
        mask = 0
        pol = 0
        for i, ch in enumerate(text):
            if ch == "1":
                mask |= 1 << i
                pol |= 1 << i
            elif ch == "0":
                mask |= 1 << i
            elif ch != "-":
                raise ValueError(f"bad cube character {ch!r}")
        return Cube(mask, pol)

    def to_blif(self, n_vars: int) -> str:
        chars = []
        for i in range(n_vars):
            if (self.mask >> i) & 1:
                chars.append("1" if (self.polarity >> i) & 1 else "0")
            else:
                chars.append("-")
        return "".join(chars)

    def n_literals(self) -> int:
        return self.mask.bit_count()

    def contains_point(self, idx: int) -> bool:
        """Does the cube cover the minterm with packed assignment ``idx``?"""
        return (idx & self.mask) == self.polarity

    def truthtable(self, n_vars: int) -> TruthTable:
        """Expand the cube into a full truth table on ``n_vars`` inputs."""
        tt = TruthTable.const(1, n_vars)
        for i in range(n_vars):
            if (self.mask >> i) & 1:
                v = TruthTable.var(i, n_vars)
                tt = tt & (v if (self.polarity >> i) & 1 else ~v)
        return tt


@dataclass(frozen=True)
class Cover:
    """An SOP cover: OR of cubes, possibly describing the off-set.

    ``output_value`` is 1 when the cubes describe where the function is 1
    (the usual case) and 0 when they describe where it is 0 (BLIF permits
    both, but not mixed within one ``.names``).
    """

    n_vars: int
    cubes: tuple[Cube, ...]
    output_value: int = 1

    def __post_init__(self) -> None:
        if self.output_value not in (0, 1):
            raise ValueError("output_value must be 0 or 1")

    def truthtable(self) -> TruthTable:
        return cover_to_truthtable(self)

    def n_literals(self) -> int:
        return sum(c.n_literals() for c in self.cubes)

    def to_blif_lines(self) -> list[str]:
        """Render the cover body as BLIF plane lines (no ``.names`` header)."""
        out_ch = str(self.output_value)
        if not self.cubes:
            # Empty cover: constant opposite of output_value convention —
            # BLIF expresses const-0 as an empty body and const-1 as a lone
            # "1" line; handled by the writer, not here.
            return []
        return [f"{c.to_blif(self.n_vars)} {out_ch}" for c in self.cubes]


def cover_to_truthtable(cover: Cover) -> TruthTable:
    """Evaluate an SOP cover into a complete truth table.

    >>> c = Cover(2, (Cube.from_blif("11"),))
    >>> cover_to_truthtable(c).bits == 0b1000
    True
    """
    acc = TruthTable.const(0, cover.n_vars)
    for cube in cover.cubes:
        acc = acc | cube.truthtable(cover.n_vars)
    if cover.output_value == 0:
        acc = ~acc
    return acc


# ---------------------------------------------------------------------------
# Minato–Morreale ISOP
# ---------------------------------------------------------------------------


def _cof(bits: int, n: int, var: int, value: int) -> int:
    from repro.netlist.truthtable import _var_mask

    mask = _var_mask(n, var)
    shift = 1 << var
    if value:
        hi = bits & mask
        return hi | (hi >> shift)
    lo = bits & ~mask
    return (lo | (lo << shift)) & _full_mask(n)


def _isop(lower: int, upper: int, n: int, var: int) -> tuple[tuple[Cube, ...], int]:
    """Return (cover, function_bits) with lower ⊆ function ⊆ upper.

    ``var`` is the highest variable index still eligible for splitting.
    """
    if lower == 0:
        return (), 0
    if upper == _full_mask(n):
        return (Cube(0, 0),), _full_mask(n)
    # find a splitting variable that matters
    while var >= 0:
        if (
            _cof(lower, n, var, 0) != _cof(lower, n, var, 1)
            or _cof(upper, n, var, 0) != _cof(upper, n, var, 1)
        ):
            break
        var -= 1
    if var < 0:
        # No dependence left: lower != 0 and upper != all is impossible here
        # because both are then constants with lower ⊆ upper.
        return (Cube(0, 0),), _full_mask(n)

    l0, l1 = _cof(lower, n, var, 0), _cof(lower, n, var, 1)
    u0, u1 = _cof(upper, n, var, 0), _cof(upper, n, var, 1)

    c0, f0 = _isop(l0 & ~u1, u0, n, var - 1)
    c1, f1 = _isop(l1 & ~u0, u1, n, var - 1)
    l_rest = (l0 & ~f0) | (l1 & ~f1)
    c2, f2 = _isop(l_rest, u0 & u1, n, var - 1)

    bit = 1 << var
    cubes = (
        tuple(Cube(c.mask | bit, c.polarity) for c in c0)
        + tuple(Cube(c.mask | bit, c.polarity | bit) for c in c1)
        + c2
    )
    from repro.netlist.truthtable import _var_mask

    vmask = _var_mask(n, var)
    func = (f0 & ~vmask) | (f1 & vmask) | f2
    return cubes, func


@lru_cache(maxsize=65536)
def _isop_cached(bits: int, n_vars: int) -> tuple[Cube, ...]:
    cubes, func = _isop(bits, bits, n_vars, n_vars - 1)
    assert func == bits, "ISOP must be exact when lower == upper"
    return cubes


def truthtable_to_cover(tt: TruthTable) -> Cover:
    """Compute an irredundant SOP cover of ``tt`` (Minato–Morreale).

    The result is exact (covers precisely the on-set) and each cube is prime
    relative to the recursion order.  Results are cached per table since the
    simulator requests covers for the same LUT functions repeatedly.

    >>> tt = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
    >>> cov = truthtable_to_cover(tt)
    >>> cover_to_truthtable(cov) == tt
    True
    >>> len(cov.cubes)
    2
    """
    return Cover(tt.n_vars, _isop_cached(tt.bits, tt.n_vars), 1)
