"""Netlist cleanup transforms.

These mirror the light-weight cleanup passes conventional synthesis applies
before mapping: constant propagation, buffer collapsing and dead-node
sweeping.  They are deliberately conservative — signal parameterisation
(:mod:`repro.core.annotate`) relies on internal signal names surviving, so
every transform preserves the name of any node listed in ``protected``.
"""

from __future__ import annotations

from typing import Collection

from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.truthtable import TruthTable

__all__ = ["sweep_dead", "propagate_constants", "remove_buffers", "cleanup"]


def sweep_dead(
    net: LogicNetwork, protected: Collection[int] = ()
) -> LogicNetwork:
    """Drop nodes not reachable from POs/latches (keeps ``protected``)."""
    return net.compact(keep=protected)


def propagate_constants(net: LogicNetwork) -> int:
    """Fold constant fan-ins into gate functions, in place.

    Iterates to a fixed point.  Gates whose functions collapse to constants
    become 0-input constant gates and their readers are re-examined.
    Returns the number of gates simplified.
    """
    changed_total = 0
    changed = True
    while changed:
        changed = False
        const_of: dict[int, int] = {}
        for nid in net.gates():
            func = net.func(nid)
            assert func is not None
            cv = func.const_value()
            if cv is not None and func.n_vars == 0:
                const_of[nid] = cv
        if not const_of:
            break
        for nid in net.gates():
            fanins = net.fanins(nid)
            if not fanins:
                continue
            func = net.func(nid)
            assert func is not None
            if not any(f in const_of for f in fanins):
                continue
            new_fanins: list[int] = []
            tt = func
            # Fix constant vars one at a time, highest index first so that
            # remaining variable indices stay aligned.
            const_positions = [
                (i, const_of[f]) for i, f in enumerate(fanins) if f in const_of
            ]
            keep_positions = [i for i, f in enumerate(fanins) if f not in const_of]
            for i, value in const_positions:
                tt = tt.cofactor(i, value)
            small, kept = tt.shrink_to_support()
            kept_set = set(kept)
            # kept indexes into the *original* variable order
            new_fanins = [fanins[i] for i in range(len(fanins)) if i in kept_set]
            # shrink_to_support orders kept ascending == original order, so
            # variable i of `small` is new_fanins[i].
            net.rewire(nid, new_fanins, small)
            changed = True
            changed_total += 1
    return changed_total


def remove_buffers(net: LogicNetwork, protected: Collection[int] = ()) -> int:
    """Bypass single-input identity gates, in place.

    A buffer whose id is in ``protected`` (e.g. an observed debug signal
    that must keep its own net) is left alone.  Returns the number of
    buffers bypassed.  Inverters are kept — they change polarity and are
    real logic.
    """
    protected_set = set(protected)
    po_set = set(net.po_names)
    removed = 0
    for nid in list(net.gates()):
        if nid in protected_set:
            continue
        if net.node_name(nid) in po_set:
            # bypassing a PO-driving buffer would rename the output
            # interface; keep it
            continue
        func = net.func(nid)
        assert func is not None
        var = func.is_buffer_of()
        if var is None:
            continue
        source = net.fanins(nid)[var]
        net.replace_uses(nid, source)
        removed += 1
    return removed


def cleanup(
    net: LogicNetwork, protected: Collection[int] = ()
) -> LogicNetwork:
    """propagate constants → remove buffers → sweep; returns a new network."""
    work = net.copy()
    propagate_constants(work)
    remove_buffers(work, protected)
    return sweep_dead(work, protected)
