"""BLIF (Berkeley Logic Interchange Format) reader and writer.

The subset implemented is what the academic mapping flows (VTR, ABC,
SimpleMap) emit and consume: ``.model``, ``.inputs``, ``.outputs``,
``.names`` (SOP planes), ``.latch`` (with optional type/clock and initial
value) and ``.end``.  Line continuations with ``\\`` and ``#`` comments are
handled.  Unsupported constructs (``.subckt``, ``.gate``) raise
:class:`~repro.errors.BlifParseError` so silent misreads cannot happen.
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO

from repro.errors import BlifParseError, NetlistError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.sop import Cover, Cube, cover_to_truthtable, truthtable_to_cover
from repro.netlist.truthtable import TruthTable

__all__ = ["parse_blif", "parse_blif_file", "write_blif"]


def _logical_lines(text: str) -> Iterable[tuple[int, str]]:
    """Yield (line_no, logical_line) with continuations joined, comments cut."""
    pending = ""
    pending_start = 0
    for i, raw in enumerate(text.splitlines(), start=1):
        hash_pos = raw.find("#")
        if hash_pos >= 0:
            raw = raw[:hash_pos]
        raw = raw.rstrip()
        if not raw and not pending:
            continue
        if raw.endswith("\\"):
            if not pending:
                pending_start = i
            pending += raw[:-1] + " "
            continue
        if pending:
            line = pending + raw
            pending = ""
            yield pending_start, line.strip()
        else:
            if raw.strip():
                yield i, raw.strip()
    if pending.strip():
        yield pending_start, pending.strip()


class _PendingNames:
    """A .names block accumulated before resolution (two-pass parse)."""

    __slots__ = ("line_no", "signals", "cubes", "output_value")

    def __init__(self, line_no: int, signals: list[str]) -> None:
        self.line_no = line_no
        self.signals = signals
        self.cubes: list[Cube] = []
        self.output_value: int | None = None


def parse_blif(text: str, name_hint: str = "top") -> LogicNetwork:
    """Parse BLIF text into a :class:`LogicNetwork`.

    >>> net = parse_blif('''
    ... .model ex
    ... .inputs a b
    ... .outputs f
    ... .names a b f
    ... 11 1
    ... .end
    ... ''')
    >>> net.n_gates, net.po_names
    (1, ['f'])
    """
    model_name = name_hint
    inputs: list[str] = []
    outputs: list[str] = []
    names_blocks: list[_PendingNames] = []
    latch_decls: list[tuple[int, str, str, int]] = []  # line, d, q, init
    current: _PendingNames | None = None
    seen_end = False

    for line_no, line in _logical_lines(text):
        if line.startswith("."):
            current = None
            tokens = line.split()
            directive = tokens[0]
            if directive == ".model":
                model_name = tokens[1] if len(tokens) > 1 else name_hint
            elif directive == ".inputs":
                inputs.extend(tokens[1:])
            elif directive == ".outputs":
                outputs.extend(tokens[1:])
            elif directive == ".names":
                if len(tokens) < 2:
                    raise BlifParseError(".names needs at least an output", line_no)
                current = _PendingNames(line_no, tokens[1:])
                names_blocks.append(current)
            elif directive == ".latch":
                # .latch input output [type [clock]] [init]
                body = tokens[1:]
                if len(body) < 2:
                    raise BlifParseError(".latch needs input and output", line_no)
                d_name, q_name = body[0], body[1]
                init = 3
                rest = body[2:]
                if rest and rest[-1] in ("0", "1", "2", "3"):
                    init = int(rest[-1])
                latch_decls.append((line_no, d_name, q_name, init))
            elif directive == ".end":
                seen_end = True
                break
            elif directive in (".subckt", ".gate", ".mlatch", ".exdc"):
                raise BlifParseError(f"unsupported construct {directive}", line_no)
            else:
                # Unknown dot-directives (e.g. .default_input_arrival) are
                # timing annotations we can safely skip.
                continue
        else:
            if current is None:
                raise BlifParseError(f"stray plane line {line!r}", line_no)
            tokens = line.split()
            n_ins = len(current.signals) - 1
            if n_ins == 0:
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise BlifParseError("bad constant plane", line_no)
                out_val = int(tokens[0])
                cube = Cube(0, 0)
            else:
                if len(tokens) != 2:
                    raise BlifParseError("plane line must be '<ins> <out>'", line_no)
                plane, out_tok = tokens
                if len(plane) != n_ins:
                    raise BlifParseError(
                        f"plane width {len(plane)} != fanin count {n_ins}", line_no
                    )
                if out_tok not in ("0", "1"):
                    raise BlifParseError(f"bad output token {out_tok!r}", line_no)
                out_val = int(out_tok)
                cube = Cube.from_blif(plane)
            if current.output_value is None:
                current.output_value = out_val
            elif current.output_value != out_val:
                raise BlifParseError("mixed output polarities in one .names", line_no)
            current.cubes.append(cube)

    net = LogicNetwork(model_name)
    for pi in inputs:
        net.add_pi(pi)

    # Latch Q nodes exist before gate bodies (forward references allowed).
    for line_no, _d, q_name, init in latch_decls:
        if net.find(q_name) is not None:
            raise BlifParseError(f"latch output {q_name!r} redefined", line_no)
        net.add_latch(q_name, init=init)

    # Two passes over .names blocks so fan-ins may be defined in any order.
    # First create placeholder ordering: topologically BLIF allows any order,
    # so create all gate shells after resolving dependencies iteratively.
    unresolved = list(names_blocks)
    progress = True
    while unresolved and progress:
        progress = False
        still: list[_PendingNames] = []
        for block in unresolved:
            in_names = block.signals[:-1]
            out_name = block.signals[-1]
            fanins = [net.find(s) for s in in_names]
            if any(f is None for f in fanins):
                still.append(block)
                continue
            output_value = 1 if block.output_value is None else block.output_value
            cover = Cover(len(in_names), tuple(block.cubes), output_value)
            tt = cover_to_truthtable(cover)
            try:
                net.add_gate(out_name, [f for f in fanins if f is not None], tt)
            except NetlistError as exc:
                raise BlifParseError(str(exc), block.line_no) from exc
            progress = True
        unresolved = still
    if unresolved:
        missing = sorted(
            {
                s
                for block in unresolved
                for s in block.signals[:-1]
                if net.find(s) is None
            }
        )[:5]
        raise BlifParseError(
            f"undefined signals (or gate cycle): {missing}",
            unresolved[0].line_no,
        )

    for line_no, d_name, q_name, _init in latch_decls:
        d = net.find(d_name)
        if d is None:
            raise BlifParseError(f"latch input {d_name!r} undefined", line_no)
        net.set_latch_driver(net.require(q_name), d)

    for out in outputs:
        if net.find(out) is None:
            raise BlifParseError(f"output {out!r} has no driver")
        net.add_po(out)

    if not seen_end and not (inputs or outputs or names_blocks):
        raise BlifParseError("no BLIF content found")
    return net


def parse_blif_file(path: str) -> LogicNetwork:
    """Parse a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_blif(fh.read())


def write_blif(net: LogicNetwork, fh: TextIO | None = None) -> str:
    """Serialize a network to BLIF text (also writes to ``fh`` if given).

    Gate bodies are re-derived from truth tables via ISOP, so a
    parse→write→parse round trip preserves function (and this is tested by
    a hypothesis property).
    """
    out = io.StringIO()
    out.write(f".model {net.name}\n")
    if net.pis:
        out.write(".inputs " + " ".join(net.node_name(p) for p in net.pis) + "\n")
    if net.po_names:
        out.write(".outputs " + " ".join(net.po_names) + "\n")
    for latch in net.latches:
        if latch.driver < 0:
            raise NetlistError(
                f"latch {net.node_name(latch.q)!r} has no driver; cannot write"
            )
        out.write(
            f".latch {net.node_name(latch.driver)} {net.node_name(latch.q)}"
            f" re clk {latch.init}\n"
        )
    for nid in net.gates():
        func = net.func(nid)
        assert func is not None
        sig_names = [net.node_name(f) for f in net.fanins(nid)]
        out.write(".names " + " ".join(sig_names + [net.node_name(nid)]) + "\n")
        const = func.const_value()
        if const == 0:
            pass  # empty body == constant 0
        elif const == 1 and func.n_vars == 0:
            out.write("1\n")
        else:
            cover = truthtable_to_cover(func)
            for line in cover.to_blif_lines():
                out.write(line + "\n")
    out.write(".end\n")
    text = out.getvalue()
    if fh is not None:
        fh.write(text)
    return text
