"""Structural validation of logic networks.

Called at flow-stage boundaries (after parsing, after instrumentation, after
mapping) so that malformed networks fail loudly at the stage that produced
them rather than corrupting downstream results.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.network import LogicNetwork, NodeKind

__all__ = ["validate_network"]


def validate_network(net: LogicNetwork, *, require_pos: bool = True) -> None:
    """Raise :class:`NetlistError` on any structural inconsistency.

    Checks performed:

    * every fan-in id is a valid node defined before use (DAG over ids not
      required, but combinational acyclicity is);
    * gate function arity matches fan-in count;
    * latch drivers are connected and valid;
    * primary-output names resolve to nodes;
    * node names are unique and non-empty;
    * no combinational cycles (via :meth:`LogicNetwork.topo_order`).
    """
    n = net.n_nodes
    seen_names: set[str] = set()
    for nid in net.nodes():
        name = net.node_name(nid)
        if not name:
            raise NetlistError(f"node {nid} has an empty name")
        if name in seen_names:
            raise NetlistError(f"duplicate node name {name!r}")
        seen_names.add(name)

        kind = net.kind(nid)
        fanins = net.fanins(nid)
        func = net.func(nid)
        if kind == NodeKind.GATE:
            if func is None:
                raise NetlistError(f"gate {name!r} has no function")
            if func.n_vars != len(fanins):
                raise NetlistError(
                    f"gate {name!r}: {func.n_vars} vars vs {len(fanins)} fanins"
                )
            for f in fanins:
                if not 0 <= f < n:
                    raise NetlistError(f"gate {name!r}: fanin id {f} out of range")
        else:
            if fanins:
                raise NetlistError(f"{kind.name} node {name!r} must have no fanins")
            if func is not None:
                raise NetlistError(f"{kind.name} node {name!r} must have no function")

    q_seen: set[int] = set()
    for latch in net.latches:
        if latch.q in q_seen:
            raise NetlistError(f"latch output {latch.q} declared twice")
        q_seen.add(latch.q)
        if net.kind(latch.q) != NodeKind.LATCH:
            raise NetlistError(
                f"latch q node {net.node_name(latch.q)!r} has kind "
                f"{net.kind(latch.q).name}"
            )
        if latch.driver < 0:
            raise NetlistError(f"latch {net.node_name(latch.q)!r} is undriven")
        if not 0 <= latch.driver < n:
            raise NetlistError(
                f"latch {net.node_name(latch.q)!r}: driver id out of range"
            )
    latch_q_nodes = {latch.q for latch in net.latches}
    for nid in net.nodes():
        if net.kind(nid) == NodeKind.LATCH and nid not in latch_q_nodes:
            raise NetlistError(
                f"LATCH node {net.node_name(nid)!r} missing from latch list"
            )

    if require_pos and not net.po_names:
        raise NetlistError("network has no primary outputs")
    for name in net.po_names:
        if net.find(name) is None:
            raise NetlistError(f"primary output {name!r} resolves to no node")

    net.topo_order()  # raises on combinational cycles
