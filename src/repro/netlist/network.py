"""The central gate-level network data structure.

A :class:`LogicNetwork` is a named DAG of logic nodes:

* **PI** nodes — primary inputs;
* **LATCH** nodes — outputs of sequential elements (treated as combinational
  sources; their drivers are recorded in :attr:`LogicNetwork.latches`);
* **GATE** nodes — combinational functions (:class:`TruthTable`) of a fan-in
  tuple.  A gate with an empty fan-in is a constant.

Signals are identified with the node that drives them, exactly as in BLIF
where every signal name appears once as a ``.names``/``.latch`` output.
Primary outputs are signal names designated in :attr:`po_names`.

The structure is append-mostly: transforms build rewires in place
(:meth:`rewire`, :meth:`replace_uses`) and then call :meth:`compact` to drop
dead nodes, which keeps ids dense for the array-heavy downstream stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, Sequence

from repro.errors import NetlistError
from repro.netlist.truthtable import TruthTable

__all__ = ["NodeKind", "Latch", "LogicNetwork"]


class NodeKind(IntEnum):
    """Discriminates the three node flavours."""

    PI = 0
    LATCH = 1
    GATE = 2


@dataclass
class Latch:
    """A D-type sequential element.

    Attributes
    ----------
    driver:
        Node id of the D input (``-1`` until connected — BLIF allows
        forward references).
    q:
        Node id of the LATCH output node.
    init:
        Initial state: 0, 1, or 2 for "don't care" (simulated as 0).
    """

    driver: int
    q: int
    init: int = 0


class LogicNetwork:
    """A combinational/sequential gate-level netlist.

    Examples
    --------
    >>> net = LogicNetwork("toy")
    >>> a = net.add_pi("a")
    >>> b = net.add_pi("b")
    >>> f = net.add_gate("f", (a, b), TruthTable.var(0, 2) & TruthTable.var(1, 2))
    >>> net.add_po("f")
    >>> net.n_gates, net.n_pis, len(net.po_names)
    (1, 2, 1)
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._kinds: list[NodeKind] = []
        self._names: list[str] = []
        self._fanins: list[tuple[int, ...]] = []
        self._funcs: list[TruthTable | None] = []
        self._name2node: dict[str, int] = {}
        self.pis: list[int] = []
        self.latches: list[Latch] = []
        self.po_names: list[str] = []

    # -- construction ------------------------------------------------------

    def _add_node(
        self,
        kind: NodeKind,
        name: str,
        fanins: tuple[int, ...],
        func: TruthTable | None,
    ) -> int:
        if name in self._name2node:
            raise NetlistError(f"duplicate signal name {name!r}")
        nid = len(self._kinds)
        self._kinds.append(kind)
        self._names.append(name)
        self._fanins.append(fanins)
        self._funcs.append(func)
        self._name2node[name] = nid
        return nid

    def add_pi(self, name: str) -> int:
        """Add a primary input and return its node id."""
        nid = self._add_node(NodeKind.PI, name, (), None)
        self.pis.append(nid)
        return nid

    def add_gate(
        self, name: str, fanins: Sequence[int], func: TruthTable
    ) -> int:
        """Add a combinational gate.

        ``func`` must have exactly ``len(fanins)`` variables; variable ``i``
        corresponds to ``fanins[i]``.
        """
        fanins = tuple(int(f) for f in fanins)
        if func.n_vars != len(fanins):
            raise NetlistError(
                f"gate {name!r}: function has {func.n_vars} vars "
                f"but {len(fanins)} fanins given"
            )
        for f in fanins:
            if not 0 <= f < len(self._kinds):
                raise NetlistError(f"gate {name!r}: fanin id {f} undefined")
        return self._add_node(NodeKind.GATE, name, fanins, func)

    def add_const(self, name: str, value: int) -> int:
        """Add a constant-0/1 gate."""
        return self.add_gate(name, (), TruthTable.const(value, 0))

    def add_latch(self, q_name: str, driver: int = -1, init: int = 0) -> int:
        """Add a latch; returns the id of its Q output node.

        The driver may be connected later with :meth:`set_latch_driver`.
        """
        if init not in (0, 1, 2, 3):
            raise NetlistError(f"latch {q_name!r}: bad init value {init}")
        q = self._add_node(NodeKind.LATCH, q_name, (), None)
        self.latches.append(Latch(driver=driver, q=q, init=init))
        return q

    def set_latch_driver(self, q: int, driver: int) -> None:
        for latch in self.latches:
            if latch.q == q:
                latch.driver = driver
                return
        raise NetlistError(f"node {q} is not a latch output")

    def add_po(self, name: str) -> None:
        """Designate signal ``name`` as a primary output."""
        self.po_names.append(name)

    # -- accessors -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self._kinds)

    @property
    def n_pis(self) -> int:
        return len(self.pis)

    @property
    def n_latches(self) -> int:
        return len(self.latches)

    @property
    def n_gates(self) -> int:
        return sum(1 for k in self._kinds if k == NodeKind.GATE)

    def kind(self, nid: int) -> NodeKind:
        return self._kinds[nid]

    def node_name(self, nid: int) -> str:
        return self._names[nid]

    def fanins(self, nid: int) -> tuple[int, ...]:
        return self._fanins[nid]

    def func(self, nid: int) -> TruthTable | None:
        return self._funcs[nid]

    def find(self, name: str) -> int | None:
        """Node id for a signal name, or None."""
        return self._name2node.get(name)

    def require(self, name: str) -> int:
        nid = self._name2node.get(name)
        if nid is None:
            raise NetlistError(f"unknown signal {name!r}")
        return nid

    def nodes(self) -> range:
        return range(len(self._kinds))

    def gates(self) -> Iterator[int]:
        """Iterate over gate node ids in creation order."""
        for nid, k in enumerate(self._kinds):
            if k == NodeKind.GATE:
                yield nid

    def sources(self) -> list[int]:
        """Combinational sources: PIs followed by latch outputs."""
        return list(self.pis) + [latch.q for latch in self.latches]

    def po_nodes(self) -> list[int]:
        """Node ids driving each primary output (same order as po_names)."""
        return [self.require(n) for n in self.po_names]

    def latch_of(self, q: int) -> Latch:
        for latch in self.latches:
            if latch.q == q:
                return latch
        raise NetlistError(f"node {q} is not a latch output")

    # -- graph queries -------------------------------------------------------

    def fanouts(self) -> list[list[int]]:
        """Adjacency: for each node, the gate ids reading it (combinational)."""
        outs: list[list[int]] = [[] for _ in range(self.n_nodes)]
        for nid, k in enumerate(self._kinds):
            if k == NodeKind.GATE:
                for f in self._fanins[nid]:
                    outs[f].append(nid)
        return outs

    def fanout_counts(self) -> list[int]:
        """Combinational + sequential + PO reader counts per node."""
        counts = [0] * self.n_nodes
        for nid, k in enumerate(self._kinds):
            if k == NodeKind.GATE:
                for f in self._fanins[nid]:
                    counts[f] += 1
        for latch in self.latches:
            if latch.driver >= 0:
                counts[latch.driver] += 1
        for name in self.po_names:
            counts[self.require(name)] += 1
        return counts

    def topo_order(self) -> list[int]:
        """All nodes in combinational topological order (sources first).

        Raises :class:`NetlistError` on a combinational cycle.
        """
        n = self.n_nodes
        indeg = [0] * n
        for nid, k in enumerate(self._kinds):
            if k == NodeKind.GATE:
                indeg[nid] = len(self._fanins[nid])
        order: list[int] = [nid for nid in range(n) if indeg[nid] == 0]
        outs = self.fanouts()
        head = 0
        while head < len(order):
            nid = order[head]
            head += 1
            for reader in outs[nid]:
                indeg[reader] -= 1
                if indeg[reader] == 0:
                    order.append(reader)
        if len(order) != n:
            cyclic = [self._names[i] for i in range(n) if indeg[i] > 0][:5]
            raise NetlistError(f"combinational cycle involving {cyclic}")
        return order

    def transitive_fanin(self, roots: Iterable[int]) -> set[int]:
        """All nodes in the combinational cone feeding ``roots`` (inclusive)."""
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self._fanins[nid])
        return seen

    # -- mutation (used by transforms) ----------------------------------------

    def rewire(self, nid: int, fanins: Sequence[int], func: TruthTable) -> None:
        """Replace a gate's fan-in list and function in place."""
        if self._kinds[nid] != NodeKind.GATE:
            raise NetlistError(f"cannot rewire non-gate node {self._names[nid]!r}")
        fanins = tuple(int(f) for f in fanins)
        if func.n_vars != len(fanins):
            raise NetlistError("rewire arity mismatch")
        self._fanins[nid] = fanins
        self._funcs[nid] = func

    def replace_uses(self, old: int, new: int) -> None:
        """Redirect every reader of ``old`` (gates, latches, POs) to ``new``."""
        if old == new:
            return
        for nid, k in enumerate(self._kinds):
            if k == NodeKind.GATE and old in self._fanins[nid]:
                self._fanins[nid] = tuple(
                    new if f == old else f for f in self._fanins[nid]
                )
        for latch in self.latches:
            if latch.driver == old:
                latch.driver = new
        old_name = self._names[old]
        new_name = self._names[new]
        self.po_names = [new_name if p == old_name else p for p in self.po_names]

    def compact(self, keep: Iterable[int] | None = None) -> "LogicNetwork":
        """Rebuild the network keeping only live nodes.

        A node is live if it is a PI, a PO driver, a latch or latch driver,
        in the transitive fan-in of any of those, or listed in ``keep``.
        Returns a *new* network (ids change); PIs are all retained to keep
        interfaces stable.
        """
        roots: list[int] = [self.require(n) for n in self.po_names]
        for latch in self.latches:
            if latch.driver >= 0:
                roots.append(latch.driver)
            roots.append(latch.q)
        if keep is not None:
            roots.extend(keep)
        live = self.transitive_fanin(roots)
        live.update(self.pis)

        out = LogicNetwork(self.name)
        remap: dict[int, int] = {}
        for nid in self.topo_order():
            if nid not in live:
                continue
            kind = self._kinds[nid]
            if kind == NodeKind.PI:
                remap[nid] = out.add_pi(self._names[nid])
            elif kind == NodeKind.LATCH:
                latch = self.latch_of(nid)
                remap[nid] = out.add_latch(self._names[nid], init=latch.init)
            else:
                fanins = tuple(remap[f] for f in self._fanins[nid])
                func = self._funcs[nid]
                assert func is not None
                remap[nid] = out.add_gate(self._names[nid], fanins, func)
        for latch in self.latches:
            if latch.driver >= 0:
                out.set_latch_driver(remap[latch.q], remap[latch.driver])
        for name in self.po_names:
            out.add_po(name)
        return out

    def copy(self) -> "LogicNetwork":
        """Deep copy (new id space identical to the old one)."""
        out = LogicNetwork(self.name)
        out._kinds = list(self._kinds)
        out._names = list(self._names)
        out._fanins = list(self._fanins)
        out._funcs = list(self._funcs)
        out._name2node = dict(self._name2node)
        out.pis = list(self.pis)
        out.latches = [Latch(l.driver, l.q, l.init) for l in self.latches]
        out.po_names = list(self.po_names)
        return out

    def rename_node(self, nid: int, new_name: str) -> None:
        """Rename a signal, keeping PO references consistent."""
        if new_name in self._name2node:
            raise NetlistError(f"duplicate signal name {new_name!r}")
        old_name = self._names[nid]
        del self._name2node[old_name]
        self._names[nid] = new_name
        self._name2node[new_name] = nid
        self.po_names = [new_name if p == old_name else p for p in self.po_names]

    def fresh_name(self, stem: str) -> str:
        """A signal name not yet used, derived from ``stem``."""
        if stem not in self._name2node:
            return stem
        i = 0
        while f"{stem}_{i}" in self._name2node:
            i += 1
        return f"{stem}_{i}"

    def __repr__(self) -> str:
        return (
            f"LogicNetwork({self.name!r}, pis={self.n_pis}, "
            f"gates={self.n_gates}, latches={self.n_latches}, "
            f"pos={len(self.po_names)})"
        )
