"""Truth tables over a small number of variables.

A :class:`TruthTable` stores the complete function of up to
:data:`MAX_VARS` inputs as a Python integer bitmask: bit ``b`` holds the
output for the input assignment whose variable ``i`` equals ``(b >> i) & 1``.
Python integers give us arbitrary width for free, branch-free bitwise
algebra, and hashability (tables are interned as dict keys all over the
mapper).

This representation is the work-horse of technology mapping: cut functions,
LUT configuration contents, and TLUT parameter folding are all truth-table
manipulations (cofactoring, support reduction, composition).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

__all__ = ["TruthTable", "MAX_VARS"]

MAX_VARS = 16
"""Upper bound on variable count (2**16 bits keeps ints comfortably small)."""


@lru_cache(maxsize=None)
def _var_mask(n_vars: int, var: int) -> int:
    """Bitmask of truth-table positions where ``var`` is 1 (n_vars-wide)."""
    period = 1 << (var + 1)
    half = 1 << var
    block = ((1 << half) - 1) << half
    mask = 0
    for start in range(0, 1 << n_vars, period):
        mask |= block << start
    return mask


@lru_cache(maxsize=None)
def _full_mask(n_vars: int) -> int:
    return (1 << (1 << n_vars)) - 1


class TruthTable:
    """An immutable complete truth table on ``n_vars`` ordered inputs.

    Examples
    --------
    >>> a = TruthTable.var(0, 2)
    >>> b = TruthTable.var(1, 2)
    >>> (a & b).bits == 0b1000
    True
    >>> (a | b).count_ones()
    3
    >>> TruthTable.mux(TruthTable.var(0, 3), TruthTable.var(1, 3), TruthTable.var(2, 3)).n_vars
    3
    """

    __slots__ = ("n_vars", "bits")

    def __init__(self, n_vars: int, bits: int) -> None:
        if not 0 <= n_vars <= MAX_VARS:
            raise ValueError(f"n_vars must be in [0, {MAX_VARS}], got {n_vars}")
        self.n_vars = int(n_vars)
        self.bits = int(bits) & _full_mask(self.n_vars)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: bool | int, n_vars: int = 0) -> "TruthTable":
        """Constant-0 or constant-1 function on ``n_vars`` inputs."""
        return TruthTable(n_vars, _full_mask(n_vars) if value else 0)

    @staticmethod
    def var(index: int, n_vars: int) -> "TruthTable":
        """The projection function returning input ``index``."""
        if not 0 <= index < n_vars:
            raise ValueError(f"var index {index} out of range for {n_vars} vars")
        return TruthTable(n_vars, _var_mask(n_vars, index))

    @staticmethod
    def from_outputs(outputs: Sequence[int]) -> "TruthTable":
        """Build from an explicit output column of length ``2**n``.

        >>> TruthTable.from_outputs([0, 1, 1, 0]).bits == 0b0110
        True
        """
        n = len(outputs)
        if n == 0 or n & (n - 1):
            raise ValueError("output column length must be a power of two")
        n_vars = n.bit_length() - 1
        bits = 0
        for i, v in enumerate(outputs):
            if v:
                bits |= 1 << i
        return TruthTable(n_vars, bits)

    @staticmethod
    def mux(sel: "TruthTable", a: "TruthTable", b: "TruthTable") -> "TruthTable":
        """``sel ? b : a`` (when sel=0 choose ``a``) on a shared variable set."""
        return (~sel & a) | (sel & b)

    # -- algebra -----------------------------------------------------------

    def _check_compat(self, other: "TruthTable") -> None:
        if self.n_vars != other.n_vars:
            raise ValueError(
                f"variable-count mismatch: {self.n_vars} vs {other.n_vars}"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.n_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.n_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.n_vars, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n_vars, ~self.bits & _full_mask(self.n_vars))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.n_vars == other.n_vars
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.n_vars, self.bits))

    def __repr__(self) -> str:
        width = 1 << self.n_vars
        return f"TruthTable({self.n_vars}, 0b{self.bits:0{width}b})"

    # -- queries -----------------------------------------------------------

    def is_const(self) -> bool:
        return self.bits == 0 or self.bits == _full_mask(self.n_vars)

    def const_value(self) -> int | None:
        """0 or 1 for constant functions, None otherwise."""
        if self.bits == 0:
            return 0
        if self.bits == _full_mask(self.n_vars):
            return 1
        return None

    def count_ones(self) -> int:
        return self.bits.bit_count()

    def eval_point(self, assignment: Sequence[int]) -> int:
        """Evaluate on a single 0/1 input assignment.

        >>> TruthTable.var(1, 3).eval_point([0, 1, 0])
        1
        """
        if len(assignment) != self.n_vars:
            raise ValueError("assignment length mismatch")
        idx = 0
        for i, v in enumerate(assignment):
            if v:
                idx |= 1 << i
        return (self.bits >> idx) & 1

    def eval_index(self, idx: int) -> int:
        """Evaluate at a packed assignment index (bit i = variable i)."""
        return (self.bits >> (idx & ((1 << self.n_vars) - 1))) & 1

    # -- cofactors and support ---------------------------------------------

    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor with ``var`` fixed to ``value`` (same n_vars).

        The returned table no longer depends on ``var``.
        """
        if not 0 <= var < self.n_vars:
            raise ValueError(f"var {var} out of range")
        mask = _var_mask(self.n_vars, var)
        shift = 1 << var
        if value:
            hi = self.bits & mask
            return TruthTable(self.n_vars, hi | (hi >> shift))
        lo = self.bits & ~mask
        return TruthTable(self.n_vars, lo | (lo << shift))

    def depends_on(self, var: int) -> bool:
        return self.cofactor(var, 0).bits != self.cofactor(var, 1).bits

    def support(self) -> tuple[int, ...]:
        """Indices of variables the function truly depends on."""
        return tuple(i for i in range(self.n_vars) if self.depends_on(i))

    def shrink_to_support(self) -> tuple["TruthTable", tuple[int, ...]]:
        """Remove don't-care variables.

        Returns ``(table, kept)`` where ``kept[i]`` is the original index of
        the new variable ``i``.

        >>> t = TruthTable.var(2, 4)
        >>> small, kept = t.shrink_to_support()
        >>> small.n_vars, kept
        (1, (2,))
        """
        kept = self.support()
        if len(kept) == self.n_vars:
            return self, tuple(range(self.n_vars))
        new_n = len(kept)
        bits = 0
        for new_idx in range(1 << new_n):
            old_idx = 0
            for j, orig in enumerate(kept):
                if (new_idx >> j) & 1:
                    old_idx |= 1 << orig
            if (self.bits >> old_idx) & 1:
                bits |= 1 << new_idx
        return TruthTable(new_n, bits), kept

    def extend(self, n_vars: int) -> "TruthTable":
        """View this function on a larger variable set (new vars are don't-care)."""
        if n_vars < self.n_vars:
            raise ValueError("extend target smaller than current n_vars")
        tt = self
        bits = tt.bits
        for extra in range(tt.n_vars, n_vars):
            bits |= bits << (1 << extra)
        return TruthTable(n_vars, bits)

    def permute(self, mapping: Sequence[int]) -> "TruthTable":
        """Reorder variables: new variable ``mapping[i]`` := old variable ``i``.

        ``mapping`` must be a permutation-compatible injection into
        ``range(new_n)`` where ``new_n = max(mapping)+1``.
        """
        if len(mapping) != self.n_vars:
            raise ValueError("mapping length mismatch")
        new_n = max(mapping, default=-1) + 1
        if len(set(mapping)) != len(mapping):
            raise ValueError("mapping must be injective")
        bits = 0
        for old_idx in range(1 << self.n_vars):
            if (self.bits >> old_idx) & 1:
                new_idx = 0
                for i in range(self.n_vars):
                    if (old_idx >> i) & 1:
                        new_idx |= 1 << mapping[i]
                # the new index pattern repeats over unconstrained vars
                bits |= 1 << new_idx
        tt = TruthTable(new_n, bits)
        # account for vars in range(new_n) not present in mapping: the
        # function must not depend on them, and since we only set bits at
        # positions where those vars are 0, replicate across them.
        present = set(mapping)
        for v in range(new_n):
            if v not in present:
                shift = 1 << v
                tt = TruthTable(new_n, tt.bits | (tt.bits << shift))
        return tt

    # -- composition ---------------------------------------------------------

    def compose(
        self, inputs: Sequence["TruthTable"], n_vars: int | None = None
    ) -> "TruthTable":
        """Substitute ``inputs[i]`` for variable ``i``.

        All input tables must share a common variable count, which becomes
        the variable count of the result.  Used to collapse a cut's cone
        into a single LUT function during mapping.  ``n_vars`` must be given
        when composing a constant (0-variable) table, since there are no
        inputs to infer the target arity from.

        >>> f = TruthTable.var(0, 2) & TruthTable.var(1, 2)   # AND
        >>> x = TruthTable.var(0, 3)
        >>> y = TruthTable.var(2, 3)
        >>> g = f.compose([x, y])
        >>> g == (x & y)
        True
        """
        if len(inputs) != self.n_vars:
            raise ValueError("compose arity mismatch")
        if self.n_vars == 0:
            if n_vars is None:
                raise ValueError("compose of 0-var table needs explicit n_vars")
            return TruthTable.const(self.bits & 1, n_vars)
        base_n = inputs[0].n_vars
        for t in inputs:
            if t.n_vars != base_n:
                raise ValueError("compose inputs must share n_vars")
        ones = _full_mask(base_n)
        result = 0
        for idx in range(1 << self.n_vars):
            if not (self.bits >> idx) & 1:
                continue
            term = ones
            for i in range(self.n_vars):
                if (idx >> i) & 1:
                    term &= inputs[i].bits
                else:
                    term &= ~inputs[i].bits & ones
                if not term:
                    break
            result |= term
        return TruthTable(base_n, result)

    def outputs(self) -> list[int]:
        """The explicit output column as a list of 0/1 ints."""
        return [(self.bits >> i) & 1 for i in range(1 << self.n_vars)]

    # -- structure recognition ---------------------------------------------

    def as_mux(self) -> tuple[int, int, int] | None:
        """Recognize a 2:1 multiplexer structure.

        Returns ``(sel, a, b)`` variable indices such that the function is
        ``sel ? b : a`` with ``a``, ``b``, ``sel`` distinct projection
        variables — or ``None`` if the function is not such a mux.  Used by
        TCONMap to peel parameter-controlled multiplexers into tunable
        connections.
        """
        sup = self.support()
        if len(sup) != 3:
            return None
        for sel in sup:
            c0 = self.cofactor(sel, 0)
            c1 = self.cofactor(sel, 1)
            others = [v for v in sup if v != sel]
            for a, b in ((others[0], others[1]), (others[1], others[0])):
                if (
                    c0 == TruthTable.var(a, self.n_vars)
                    and c1 == TruthTable.var(b, self.n_vars)
                ):
                    return (sel, a, b)
        return None

    def is_buffer_of(self) -> int | None:
        """If the function equals one input verbatim, return that variable."""
        sup = self.support()
        if len(sup) != 1:
            return None
        v = sup[0]
        if self == TruthTable.var(v, self.n_vars):
            return v
        return None

    def is_inverter_of(self) -> int | None:
        """If the function equals the complement of one input, return it."""
        sup = self.support()
        if len(sup) != 1:
            return None
        v = sup[0]
        if self == ~TruthTable.var(v, self.n_vars):
            return v
        return None
