"""Netlist statistics: sizes, depths, fan-in/fan-out profiles.

``logic_depth`` here is the *gate-level* depth; the mapped (LUT-level) depth
reported in the paper's Table II is computed by :mod:`repro.mapping.depth`
on mapped networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.network import LogicNetwork, NodeKind

__all__ = ["NetworkStats", "network_stats", "logic_depth", "node_levels"]


def node_levels(net: LogicNetwork) -> list[int]:
    """Combinational level per node (sources = 0, gate = 1 + max(fanins))."""
    levels = [0] * net.n_nodes
    for nid in net.topo_order():
        if net.kind(nid) == NodeKind.GATE:
            fanins = net.fanins(nid)
            if fanins:
                levels[nid] = 1 + max(levels[f] for f in fanins)
            else:
                levels[nid] = 0
    return levels


def logic_depth(net: LogicNetwork) -> int:
    """Maximum combinational level over PO drivers and latch D inputs."""
    levels = node_levels(net)
    sinks = [net.require(n) for n in net.po_names]
    sinks += [l.driver for l in net.latches if l.driver >= 0]
    if not sinks:
        return 0
    return max(levels[s] for s in sinks)


@dataclass(frozen=True)
class NetworkStats:
    """Aggregate structural statistics for reporting."""

    name: str
    n_pis: int
    n_pos: int
    n_latches: int
    n_gates: int
    n_consts: int
    depth: int
    max_fanin: int
    avg_fanin: float
    max_fanout: int

    def row(self) -> list[object]:
        return [
            self.name,
            self.n_pis,
            self.n_pos,
            self.n_latches,
            self.n_gates,
            self.depth,
            self.max_fanin,
            f"{self.avg_fanin:.2f}",
            self.max_fanout,
        ]


def network_stats(net: LogicNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for a network."""
    fanin_sizes = []
    n_consts = 0
    for nid in net.gates():
        k = len(net.fanins(nid))
        if k == 0:
            n_consts += 1
        else:
            fanin_sizes.append(k)
    counts = net.fanout_counts()
    return NetworkStats(
        name=net.name,
        n_pis=net.n_pis,
        n_pos=len(net.po_names),
        n_latches=net.n_latches,
        n_gates=net.n_gates - n_consts,
        n_consts=n_consts,
        depth=logic_depth(net),
        max_fanin=max(fanin_sizes, default=0),
        avg_fanin=(sum(fanin_sizes) / len(fanin_sizes)) if fanin_sizes else 0.0,
        max_fanout=max(counts, default=0),
    )
