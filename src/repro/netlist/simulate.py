"""Bit-parallel functional simulation.

Values are packed 64 test vectors per ``numpy.uint64`` word: a node's value
is a vector of ``n_words`` words, and every gate evaluation is a handful of
bitwise numpy operations over whole arrays (the vectorization idiom from the
HPC guides — the Python-level loop runs once per *gate*, never per vector).

Gate functions are evaluated through their ISOP covers
(:func:`repro.netlist.sop.truthtable_to_cover`): each cube is an AND of
literals, cubes are OR-ed.  Covers are cached per truth table, so repeated
simulation of mapped networks costs little setup.

Two entry points:

* :func:`simulate_combinational` — evaluate every node given source values;
* :class:`SequentialSimulator` — cycle-accurate simulation with latch state,
  used by the emulation layer and the debug-loop examples.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.sop import truthtable_to_cover
from repro.util.bitops import words_for_bits

__all__ = [
    "random_stimulus",
    "apply_override",
    "simulate_combinational",
    "SequentialSimulator",
    "check_equivalent",
]

#: An override entry: either a packed value array (the node's value is
#: replaced wholesale — the historical behavior) or a ``(forced, mask)``
#: pair of packed arrays, where only the lanes selected by ``mask`` are
#: forced and every other lane keeps the *clean* computed value:
#: ``value = (clean & ~mask) | (forced & mask)``.  Lane-masked overrides
#: are how the lane-parallel debug engine injects one scenario's fault
#: into one SIMD lane without disturbing its 63 neighbours.
Override = "np.ndarray | tuple[np.ndarray, np.ndarray]"


def apply_override(clean: np.ndarray, override) -> np.ndarray:
    """Resolve one override against the clean (computed) value.

    Full-array overrides replace ``clean``; ``(forced, mask)`` pairs blend
    per lane: ``(clean & ~mask) | (forced & mask)``.
    """
    if isinstance(override, tuple):
        forced, mask = override
        forced = np.asarray(forced, dtype=np.uint64)
        mask = np.asarray(mask, dtype=np.uint64)
        return (clean & ~mask) | (forced & mask)
    return np.asarray(override, dtype=np.uint64)


def random_stimulus(
    net: LogicNetwork, n_vectors: int, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Random packed stimulus for every PI, keyed by PI name."""
    n_words = max(1, words_for_bits(n_vectors))
    return {
        net.node_name(pi): rng.integers(
            0, np.iinfo(np.uint64).max, size=n_words, dtype=np.uint64, endpoint=True
        )
        for pi in net.pis
    }


def _eval_gate(
    func, fanin_values: list[np.ndarray], n_words: int
) -> np.ndarray:
    """Evaluate one gate's truth table over packed words."""
    const = func.const_value()
    if const is not None:
        if const:
            return np.full(n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
        return np.zeros(n_words, dtype=np.uint64)
    cover = truthtable_to_cover(func)
    acc = np.zeros(n_words, dtype=np.uint64)
    for cube in cover.cubes:
        term = np.full(n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
        for i, val in enumerate(fanin_values):
            bit = (cube.mask >> i) & 1
            if not bit:
                continue
            if (cube.polarity >> i) & 1:
                np.bitwise_and(term, val, out=term)
            else:
                np.bitwise_and(term, ~val, out=term)
        np.bitwise_or(acc, term, out=acc)
    return acc


def simulate_combinational(
    net: LogicNetwork,
    source_values: Mapping[int, np.ndarray],
    *,
    overrides: Mapping[int, np.ndarray] | None = None,
) -> dict[int, np.ndarray]:
    """Evaluate all nodes given values for every combinational source.

    Parameters
    ----------
    source_values:
        Packed words for every PI and LATCH node id.
    overrides:
        Optional forced values for arbitrary nodes (used by fault injection:
        the override wins over the computed value).  Each entry is either a
        packed array (full replacement) or a ``(forced, mask)`` pair that
        forces only the masked lanes — see :func:`apply_override`.

    Returns a dict mapping *every* node id to its packed value array.
    """
    values: dict[int, np.ndarray] = {}
    overrides = overrides or {}
    n_words: int | None = None
    for nid in net.sources():
        if nid not in source_values:
            raise SimulationError(
                f"no stimulus for source {net.node_name(nid)!r}"
            )
        arr = np.asarray(source_values[nid], dtype=np.uint64)
        if n_words is None:
            n_words = arr.size
        elif arr.size != n_words:
            raise SimulationError("stimulus arrays must share length")
        values[nid] = arr
    if n_words is None:
        raise SimulationError("network has no sources")

    for nid in net.topo_order():
        ov = overrides.get(nid)
        if nid in values and ov is None:
            continue
        kind = net.kind(nid)
        if kind != NodeKind.GATE:
            if ov is not None:
                clean = values.get(nid)
                if clean is None and isinstance(ov, tuple):
                    clean = np.zeros(n_words, dtype=np.uint64)
                values[nid] = apply_override(clean, ov)
            continue
        if ov is not None and not isinstance(ov, tuple):
            values[nid] = np.asarray(ov, dtype=np.uint64)
            continue
        func = net.func(nid)
        assert func is not None
        fanin_vals = [values[f] for f in net.fanins(nid)]
        clean = _eval_gate(func, fanin_vals, n_words)
        values[nid] = apply_override(clean, ov) if ov is not None else clean
    return values


class SequentialSimulator:
    """Cycle-accurate simulation of a sequential network.

    Latches behave as D flip-flops: in each :meth:`step`, outputs present
    their stored state, combinational logic settles, and state is updated
    from the D inputs at the end of the cycle.

    64 parallel *runs* share each word, so a testbench can drive 64
    independent stimulus streams at once.

    >>> from repro.netlist.blif import parse_blif
    >>> net = parse_blif('''
    ... .model counterbit
    ... .inputs en
    ... .outputs q
    ... .latch d q 0
    ... .names en q d
    ... 01 1
    ... 10 1
    ... .end''')
    >>> import numpy as np
    >>> sim = SequentialSimulator(net, n_words=1)
    >>> ones = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)], dtype=np.uint64)
    >>> _ = sim.step({net.pis[0]: ones})
    >>> vals = sim.step({net.pis[0]: ones})
    >>> bool(vals[net.require('q')][0] == np.uint64(0xFFFFFFFFFFFFFFFF))
    True
    """

    def __init__(self, net: LogicNetwork, n_words: int = 1) -> None:
        self.net = net
        self.n_words = int(n_words)
        self.cycle = 0
        self.state: dict[int, np.ndarray] = {}
        self.reset()

    def reset(self) -> None:
        """Load latch initial values (init=1 → all-ones, else zeros)."""
        self.cycle = 0
        self.state = {}
        ones = np.full(self.n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
        for latch in self.net.latches:
            if latch.init == 1:
                self.state[latch.q] = ones.copy()
            else:
                self.state[latch.q] = np.zeros(self.n_words, dtype=np.uint64)

    def step(
        self,
        pi_values: Mapping[int, np.ndarray],
        *,
        overrides: Mapping[int, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Advance one clock cycle; returns every node's value this cycle."""
        sources: dict[int, np.ndarray] = {}
        for pi in self.net.pis:
            if pi not in pi_values:
                raise SimulationError(
                    f"cycle {self.cycle}: no value for PI "
                    f"{self.net.node_name(pi)!r}"
                )
            arr = np.asarray(pi_values[pi], dtype=np.uint64)
            if arr.size != self.n_words:
                raise SimulationError("PI value width mismatch")
            sources[pi] = arr
        sources.update(self.state)
        values = simulate_combinational(self.net, sources, overrides=overrides)
        next_state: dict[int, np.ndarray] = {}
        for latch in self.net.latches:
            next_state[latch.q] = values[latch.driver].copy()
        self.state = next_state
        self.cycle += 1
        return values


def check_equivalent(
    net_a: LogicNetwork,
    net_b: LogicNetwork,
    *,
    n_vectors: int = 256,
    n_cycles: int = 8,
    rng: np.random.Generator | None = None,
    po_names: list[str] | None = None,
) -> bool:
    """Random-simulation equivalence check between two networks.

    PIs and POs are matched by *name*; both networks must agree on the PI
    name set.  Sequential networks are compared over ``n_cycles`` cycles
    starting from their initial states.  This is a falsifier, not a prover —
    the test suite uses exhaustive vectors for small circuits where proof is
    wanted.
    """
    rng = rng or np.random.default_rng(0)
    pis_a = {net_a.node_name(p) for p in net_a.pis}
    pis_b = {net_b.node_name(p) for p in net_b.pis}
    if pis_a != pis_b:
        raise SimulationError(
            f"PI name mismatch: only in A {sorted(pis_a - pis_b)[:4]}, "
            f"only in B {sorted(pis_b - pis_a)[:4]}"
        )
    if po_names is None:
        po_names = [n for n in net_a.po_names if n in set(net_b.po_names)]
        if not po_names:
            raise SimulationError("no common primary outputs to compare")

    n_words = max(1, words_for_bits(n_vectors))
    seq = bool(net_a.latches or net_b.latches)
    cycles = n_cycles if seq else 1

    sim_a = SequentialSimulator(net_a, n_words)
    sim_b = SequentialSimulator(net_b, n_words)
    tail_mask = np.uint64((1 << (n_vectors - (n_words - 1) * 64)) - 1) if n_vectors % 64 else np.uint64(0xFFFFFFFFFFFFFFFF)

    for _ in range(cycles):
        stim_by_name = {
            name: rng.integers(
                0, np.iinfo(np.uint64).max, size=n_words, dtype=np.uint64,
                endpoint=True,
            )
            for name in pis_a
        }
        vals_a = sim_a.step(
            {p: stim_by_name[net_a.node_name(p)] for p in net_a.pis}
        )
        vals_b = sim_b.step(
            {p: stim_by_name[net_b.node_name(p)] for p in net_b.pis}
        )
        for name in po_names:
            va = vals_a[net_a.require(name)].copy()
            vb = vals_b[net_b.require(name)].copy()
            va[-1] &= tail_mask
            vb[-1] &= tail_mask
            if not np.array_equal(va, vb):
                return False
    return True
