"""Bit-parallel functional simulation.

Values are packed 64 test vectors per ``numpy.uint64`` word: a node's value
is a vector of ``n_words`` words, so lane ``k`` of a packed run lives at
word ``k // 64``, bit ``k % 64``.

Both entry points are **façades over the compiled kernels** of
:mod:`repro.netlist.compiled` by default: the network is lowered once into
a :class:`~repro.netlist.compiled.CompiledProgram` (cached per content
key) and every step executes generated straight-line bitwise code instead
of walking the gate list.  Pass ``interpreted=True`` to run the historical
reference interpreter — a per-gate loop evaluating ISOP covers
(:func:`repro.netlist.sop.truthtable_to_cover`) with numpy ops — which the
compiled path is tested bit-for-bit against (``tests/test_compiled.py``).

Two entry points:

* :func:`simulate_combinational` — evaluate every node given source values;
* :class:`SequentialSimulator` — cycle-accurate simulation with latch state,
  used by the emulation layer and the debug-loop examples.
"""

from __future__ import annotations

from typing import Mapping

try:  # optional at import time: the pure-python compiled backend (and the
    # no-numpy CI parity job) must be importable without numpy; every
    # array-producing entry point here still requires it at call time
    import numpy as np
except ImportError:  # pragma: no cover — exercised by the no-numpy CI job
    np = None

from repro.errors import SimulationError
from repro.netlist.compiled import (
    CompiledSimulator,
    int_to_words,
    program_for,
    words_to_int,
)
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.sop import truthtable_to_cover
from repro.util.bitops import words_for_bits

__all__ = [
    "random_stimulus",
    "apply_override",
    "simulate_combinational",
    "SequentialSimulator",
    "check_equivalent",
]

#: An override entry: either a packed value array (the node's value is
#: replaced wholesale — the historical behavior) or a ``(forced, mask)``
#: pair of packed arrays, where only the lanes selected by ``mask`` are
#: forced and every other lane keeps the *clean* computed value:
#: ``value = (clean & ~mask) | (forced & mask)``.  Lane-masked overrides
#: are how the lane-parallel debug engine injects one scenario's fault
#: into one SIMD lane without disturbing its 63 neighbours.
Override = "np.ndarray | tuple[np.ndarray, np.ndarray]"


def apply_override(clean: np.ndarray, override) -> np.ndarray:
    """Resolve one override against the clean (computed) value.

    Full-array overrides replace ``clean``; ``(forced, mask)`` pairs blend
    per lane: ``(clean & ~mask) | (forced & mask)``.
    """
    if isinstance(override, tuple):
        forced, mask = override
        forced = np.asarray(forced, dtype=np.uint64)
        mask = np.asarray(mask, dtype=np.uint64)
        return (clean & ~mask) | (forced & mask)
    return np.asarray(override, dtype=np.uint64)


def random_stimulus(
    net: LogicNetwork, n_vectors: int, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Random packed stimulus for every PI, keyed by PI name."""
    n_words = max(1, words_for_bits(n_vectors))
    return {
        net.node_name(pi): rng.integers(
            0, np.iinfo(np.uint64).max, size=n_words, dtype=np.uint64, endpoint=True
        )
        for pi in net.pis
    }


def _eval_gate(
    func, fanin_values: list[np.ndarray], n_words: int
) -> np.ndarray:
    """Evaluate one gate's truth table over packed words."""
    const = func.const_value()
    if const is not None:
        if const:
            return np.full(n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
        return np.zeros(n_words, dtype=np.uint64)
    cover = truthtable_to_cover(func)
    acc = np.zeros(n_words, dtype=np.uint64)
    for cube in cover.cubes:
        term = np.full(n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
        for i, val in enumerate(fanin_values):
            bit = (cube.mask >> i) & 1
            if not bit:
                continue
            if (cube.polarity >> i) & 1:
                np.bitwise_and(term, val, out=term)
            else:
                np.bitwise_and(term, ~val, out=term)
        np.bitwise_or(acc, term, out=acc)
    return acc


def _override_to_arrays(override, n_words: int):
    """Normalize integer-form overrides to the array forms the reference
    interpreter consumes (arrays pass through untouched)."""
    if isinstance(override, tuple):
        forced, mask = override
        if isinstance(forced, int):
            forced = int_to_words(forced, n_words)
        if isinstance(mask, int):
            mask = int_to_words(mask, n_words)
        return forced, mask
    if isinstance(override, int):
        return int_to_words(override, n_words)
    return override


def _override_to_ints(override, n_words: int) -> tuple[int, int]:
    """Normalize one override entry to a ``(forced, mask)`` integer pair.

    Accepts every form the stack produces: packed arrays (full
    replacement), ``(forced, mask)`` array pairs (lane blends), plain
    integers and ``(forced, mask)`` integer pairs (the word-packed form
    multi-word lane engines use natively).
    """
    full = (1 << (64 * n_words)) - 1
    if isinstance(override, tuple):
        forced, mask = override
        forced = forced if isinstance(forced, int) else words_to_int(
            np.asarray(forced, dtype=np.uint64)
        )
        mask = mask if isinstance(mask, int) else words_to_int(
            np.asarray(mask, dtype=np.uint64)
        )
        return forced & full, mask & full
    if isinstance(override, int):
        return override & full, full
    return words_to_int(np.asarray(override, dtype=np.uint64)) & full, full


def _overrides_to_ints(
    overrides, n_words: int
) -> "dict[int, tuple[int, int]] | None":
    if not overrides:
        return None
    return {
        nid: _override_to_ints(ov, n_words) for nid, ov in overrides.items()
    }


def simulate_combinational(
    net: LogicNetwork,
    source_values: Mapping[int, np.ndarray],
    *,
    overrides: Mapping[int, np.ndarray] | None = None,
    interpreted: bool = False,
    backend: str | None = None,
) -> dict[int, np.ndarray]:
    """Evaluate all nodes given values for every combinational source.

    Parameters
    ----------
    source_values:
        Packed words for every PI and LATCH node id.
    overrides:
        Optional forced values for arbitrary nodes (used by fault injection:
        the override wins over the computed value).  Each entry is either a
        packed array (full replacement) or a ``(forced, mask)`` pair that
        forces only the masked lanes — see :func:`apply_override`; the
        word-packed integer forms are accepted too.
    interpreted:
        ``False`` (default) runs the compiled per-network kernel of
        :mod:`repro.netlist.compiled`; ``True`` runs the reference
        per-gate interpreter.  Results are bit-identical.
    backend:
        Compiled kernel backend (``"python"`` / ``"numpy"`` / ``None``
        for auto — see :func:`repro.netlist.compiled.resolve_backend`).
        Ignored when ``interpreted=True``.

    Returns a dict mapping *every* node id to its packed value array.
    """
    if not interpreted:
        return _simulate_combinational_compiled(
            net, source_values, overrides=overrides, backend=backend
        )
    values: dict[int, np.ndarray] = {}
    overrides = overrides or {}
    n_words: int | None = None
    for nid in net.sources():
        if nid not in source_values:
            raise SimulationError(
                f"no stimulus for source {net.node_name(nid)!r}"
            )
        arr = np.asarray(source_values[nid], dtype=np.uint64)
        if n_words is None:
            n_words = arr.size
        elif arr.size != n_words:
            raise SimulationError("stimulus arrays must share length")
        values[nid] = arr
    if n_words is None:
        raise SimulationError("network has no sources")
    overrides = {
        nid: _override_to_arrays(ov, n_words)
        for nid, ov in overrides.items()
    }

    for nid in net.topo_order():
        ov = overrides.get(nid)
        if nid in values and ov is None:
            continue
        kind = net.kind(nid)
        if kind != NodeKind.GATE:
            if ov is not None:
                clean = values.get(nid)
                if clean is None and isinstance(ov, tuple):
                    clean = np.zeros(n_words, dtype=np.uint64)
                values[nid] = apply_override(clean, ov)
            continue
        if ov is not None and not isinstance(ov, tuple):
            values[nid] = np.asarray(ov, dtype=np.uint64)
            continue
        func = net.func(nid)
        assert func is not None
        fanin_vals = [values[f] for f in net.fanins(nid)]
        clean = _eval_gate(func, fanin_vals, n_words)
        values[nid] = apply_override(clean, ov) if ov is not None else clean
    return values


def _export_values(csim: CompiledSimulator) -> dict[int, np.ndarray]:
    """Materialize a compiled simulator's state as the historical
    dict-of-arrays result (one fresh matrix per call, rows are views)."""
    matrix = csim.dense().copy()
    return {nid: matrix[nid] for nid in range(csim.program.n_nodes)}


def _simulate_combinational_compiled(
    net: LogicNetwork,
    source_values: Mapping[int, np.ndarray],
    *,
    overrides=None,
    backend: str | None = None,
) -> dict[int, np.ndarray]:
    ints: dict[int, int] = {}
    n_words: int | None = None
    for nid in net.sources():
        if nid not in source_values:
            raise SimulationError(
                f"no stimulus for source {net.node_name(nid)!r}"
            )
        arr = np.asarray(source_values[nid], dtype=np.uint64)
        if n_words is None:
            n_words = arr.size
        elif arr.size != n_words:
            raise SimulationError("stimulus arrays must share length")
        ints[nid] = words_to_int(arr)
    if n_words is None:
        raise SimulationError("network has no sources")
    csim = CompiledSimulator(program_for(net), n_words=n_words, backend=backend)
    csim.eval_combinational(
        ints, overrides=_overrides_to_ints(overrides, n_words)
    )
    return _export_values(csim)


class SequentialSimulator:
    """Cycle-accurate simulation of a sequential network.

    Latches behave as D flip-flops: in each :meth:`step`, outputs present
    their stored state, combinational logic settles, and state is updated
    from the D inputs at the end of the cycle.

    ``64 * n_words`` parallel *runs* share each step, so a testbench can
    drive that many independent stimulus streams at once.

    By default steps execute the network's compiled kernel
    (:mod:`repro.netlist.compiled`); ``interpreted=True`` selects the
    reference per-gate interpreter (bit-identical, an order of magnitude
    slower — the escape hatch and the parity-test baseline).  ``program``
    injects a pre-compiled program; ``store`` threads an
    :class:`~repro.pipeline.ArtifactStore` through
    :func:`~repro.netlist.compiled.program_for` so program compilation is
    skipped on warm restarts.

    >>> from repro.netlist.blif import parse_blif
    >>> net = parse_blif('''
    ... .model counterbit
    ... .inputs en
    ... .outputs q
    ... .latch d q 0
    ... .names en q d
    ... 01 1
    ... 10 1
    ... .end''')
    >>> import numpy as np
    >>> sim = SequentialSimulator(net, n_words=1)
    >>> ones = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)], dtype=np.uint64)
    >>> _ = sim.step({net.pis[0]: ones})
    >>> vals = sim.step({net.pis[0]: ones})
    >>> bool(vals[net.require('q')][0] == np.uint64(0xFFFFFFFFFFFFFFFF))
    True
    """

    def __init__(
        self,
        net: LogicNetwork,
        n_words: int = 1,
        *,
        interpreted: bool = False,
        program=None,
        store=None,
        backend: str | None = None,
    ) -> None:
        self.net = net
        self.n_words = int(n_words)
        self.interpreted = bool(interpreted)
        if self.interpreted:
            self.compiled: CompiledSimulator | None = None
            self.backend: str | None = None
        else:
            self.compiled = CompiledSimulator(
                program if program is not None else program_for(net, store=store),
                n_words=self.n_words,
                backend=backend,
            )
            self.backend = self.compiled.backend
        self._cycle = 0
        self._state: dict[int, np.ndarray] = {}
        self.reset()

    @property
    def cycle(self) -> int:
        """Cycles stepped since reset (shared with the compiled core)."""
        if self.compiled is not None:
            return self.compiled.cycle
        return self._cycle

    @property
    def state(self) -> dict[int, np.ndarray]:
        """Current latch state, keyed by latch-output node id."""
        if self.compiled is None:
            return self._state
        return {
            q: int_to_words(s, self.n_words)
            for q, s in zip(
                self.compiled.program.latch_qs, self.compiled.latch_state
            )
        }

    def reset(self) -> None:
        """Load latch initial values (init=1 → all-ones, else zeros)."""
        self._cycle = 0
        if self.compiled is not None:
            self.compiled.reset()
            return
        self._state = {}
        ones = np.full(self.n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
        for latch in self.net.latches:
            if latch.init == 1:
                self._state[latch.q] = ones.copy()
            else:
                self._state[latch.q] = np.zeros(self.n_words, dtype=np.uint64)

    def _pi_ints(self, pi_values: Mapping[int, np.ndarray]) -> dict[int, int]:
        ints: dict[int, int] = {}
        for pi in self.net.pis:
            if pi not in pi_values:
                raise SimulationError(
                    f"cycle {self.cycle}: no value for PI "
                    f"{self.net.node_name(pi)!r}"
                )
            val = pi_values[pi]
            if isinstance(val, int):
                ints[pi] = val
                continue
            arr = np.asarray(val, dtype=np.uint64)
            if arr.size != self.n_words:
                raise SimulationError("PI value width mismatch")
            ints[pi] = words_to_int(arr)
        return ints

    def step(
        self,
        pi_values: Mapping[int, np.ndarray],
        *,
        overrides: Mapping[int, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Advance one clock cycle; returns every node's value this cycle."""
        if self.compiled is not None:
            self.compiled.step(
                self._pi_ints(pi_values),
                overrides=_overrides_to_ints(overrides, self.n_words),
            )
            return _export_values(self.compiled)
        sources: dict[int, np.ndarray] = {}
        for pi in self.net.pis:
            if pi not in pi_values:
                raise SimulationError(
                    f"cycle {self.cycle}: no value for PI "
                    f"{self.net.node_name(pi)!r}"
                )
            arr = np.asarray(pi_values[pi], dtype=np.uint64)
            if arr.size != self.n_words:
                raise SimulationError("PI value width mismatch")
            sources[pi] = arr
        sources.update(self._state)
        values = simulate_combinational(
            self.net, sources, overrides=overrides, interpreted=True
        )
        next_state: dict[int, np.ndarray] = {}
        for latch in self.net.latches:
            next_state[latch.q] = values[latch.driver].copy()
        self._state = next_state
        self._cycle += 1
        return values


def check_equivalent(
    net_a: LogicNetwork,
    net_b: LogicNetwork,
    *,
    n_vectors: int = 256,
    n_cycles: int = 8,
    rng: np.random.Generator | None = None,
    po_names: list[str] | None = None,
) -> bool:
    """Random-simulation equivalence check between two networks.

    PIs and POs are matched by *name*; both networks must agree on the PI
    name set.  Sequential networks are compared over ``n_cycles`` cycles
    starting from their initial states.  This is a falsifier, not a prover —
    the test suite uses exhaustive vectors for small circuits where proof is
    wanted.
    """
    rng = rng or np.random.default_rng(0)
    pis_a = {net_a.node_name(p) for p in net_a.pis}
    pis_b = {net_b.node_name(p) for p in net_b.pis}
    if pis_a != pis_b:
        raise SimulationError(
            f"PI name mismatch: only in A {sorted(pis_a - pis_b)[:4]}, "
            f"only in B {sorted(pis_b - pis_a)[:4]}"
        )
    if po_names is None:
        po_names = [n for n in net_a.po_names if n in set(net_b.po_names)]
        if not po_names:
            raise SimulationError("no common primary outputs to compare")

    n_words = max(1, words_for_bits(n_vectors))
    seq = bool(net_a.latches or net_b.latches)
    cycles = n_cycles if seq else 1

    sim_a = SequentialSimulator(net_a, n_words)
    sim_b = SequentialSimulator(net_b, n_words)
    tail_mask = np.uint64((1 << (n_vectors - (n_words - 1) * 64)) - 1) if n_vectors % 64 else np.uint64(0xFFFFFFFFFFFFFFFF)

    for _ in range(cycles):
        stim_by_name = {
            name: rng.integers(
                0, np.iinfo(np.uint64).max, size=n_words, dtype=np.uint64,
                endpoint=True,
            )
            for name in pis_a
        }
        vals_a = sim_a.step(
            {p: stim_by_name[net_a.node_name(p)] for p in net_a.pis}
        )
        vals_b = sim_b.step(
            {p: stim_by_name[net_b.node_name(p)] for p in net_b.pis}
        )
        for name in po_names:
            va = vals_a[net_a.require(name)].copy()
            vb = vals_b[net_b.require(name)].copy()
            va[-1] &= tail_mask
            vb[-1] &= tail_mask
            if not np.array_equal(va, vb):
                return False
    return True
