"""Vectorized numpy execution backend for compiled programs.

The python backend of :mod:`repro.netlist.compiled` evaluates each op as
big-int arithmetic — per-step cost is dominated by interpreter dispatch
(one bytecode sequence per literal), nearly flat in ``n_words``.  This
module lowers the *same* topo-ordered op list onto whole-array numpy
kernels over a dense ``uint64`` state matrix, so the per-op dispatch is
amortized across every word: at 512+ lanes the per-cycle cost drops well
below the big-int kernel's (``benchmarks/bench_kernels.py`` pins the
floor), and lane widths of 1024+ stop being interpreter-bound.

Lowering (:func:`build_plan`)
-----------------------------
State is one ``(2 * n_nodes + 2, n_words)`` matrix: row ``i`` holds node
*i*'s value, row ``n + i`` its complement (maintained only for nodes some
literal reads inverted, so inverted literals are plain row gathers — no
per-literal XOR pass), plus an all-ones and an all-zeros row that
normalize tautology cubes and empty covers into ordinary gathers.

Ops are grouped by logic level.  Within a level the AND stage sorts cubes
by literal count (descending) and lays literals out *position-major*:
one ``np.take`` gathers every literal row of the level, then position
*j*'s block ANDs into the accumulator's *prefix* of cubes still holding
``> j`` literals — exact literal counts, no padding, every operand
contiguous.  One permutation scatter drops the cube values into OR
layout (position-major by op, ops sorted by cube count descending), and
the OR stage runs the same prefix trick over cube positions.  Per level
that is ``1`` gather + ``K-1`` ANDs + ``1`` scatter + ``M-1`` ORs + the
output scatters, independent of op count.

Cycle batching (:class:`VectorState` with ``n_words > engine words``)
---------------------------------------------------------------------
For combinational programs consecutive cycles are independent, so the
engine evaluates *blocks* of ``C`` cycles as one extra-wide pass (cycle
*c* occupies word columns ``[c * NW, (c+1) * NW)``), amortizing gather
and dispatch overhead ``C``-fold — the lever that takes 512-lane steps
past the python backend (sequential programs stay cycle-by-cycle).

All buffers (state, per-level literal/cube/complement scratch) are
allocated once at construction; the clean evaluation path performs zero
per-cycle allocation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VectorPlan", "VectorState", "build_plan", "plan_for"]


class _Level:
    """One logic level's precomputed index arrays (see module docs)."""

    __slots__ = (
        "src",
        "kcounts",
        "perm",
        "mcounts",
        "n_cubes",
        "n_ops",
        "out_nodes",
        "inv_sel",
        "inv_rows",
    )

    def __init__(self, src, kcounts, perm, mcounts, n_cubes, n_ops,
                 out_nodes, inv_sel, inv_rows):
        self.src = src
        self.kcounts = kcounts
        self.perm = perm
        self.mcounts = mcounts
        self.n_cubes = n_cubes
        self.n_ops = n_ops
        self.out_nodes = out_nodes
        self.inv_sel = inv_sel
        self.inv_rows = inv_rows


class VectorPlan:
    """A compiled program lowered to per-level numpy index arrays.

    Width-independent: one plan serves every :class:`VectorState` width
    (per-cycle and cycle-batched alike).  Cached per program by
    :func:`plan_for`.
    """

    def __init__(self, program) -> None:
        n = program.n_nodes
        self.program = program
        self.n_nodes = n
        self.ones_row = 2 * n
        self.zeros_row = 2 * n + 1
        self.n_state_rows = 2 * n + 2

        needs_inv = np.zeros(n, dtype=bool)
        for _node, fanins, cubes in program.ops:
            for cmask, cpol in cubes:
                for pos, src in enumerate(fanins):
                    if (cmask >> pos) & 1 and not ((cpol >> pos) & 1):
                        needs_inv[src] = True
        self.needs_inv = needs_inv

        # group ops by logic level (sources/consts are level 0)
        level = [0] * n
        by_level: dict[int, list] = {}
        self.op_level: dict[int, int] = {}
        for node, fanins, cubes in program.ops:
            lv = 1 + max((level[f] for f in fanins), default=0)
            level[node] = lv
            cube_lits = []
            for cmask, cpol in cubes:
                lits = [
                    src + (0 if (cpol >> pos) & 1 else n)
                    for pos, src in enumerate(fanins)
                    if (cmask >> pos) & 1
                ]
                # tautology cube → gather the all-ones row
                cube_lits.append(lits or [self.ones_row])
            if not cube_lits:  # empty cover (constant 0, defensively)
                cube_lits = [[self.zeros_row]]
            by_level.setdefault(lv, []).append((node, cube_lits))

        self.levels: list[_Level] = []
        for lv in sorted(by_level):
            ops = by_level[lv]
            for node, _ in ops:
                self.op_level[node] = len(self.levels)
            self.levels.append(self._lower_level(ops, needs_inv))

    def _lower_level(self, ops, needs_inv) -> _Level:
        n = self.n_nodes
        # OR layout: ops sorted by cube count desc, cubes position-major
        # by op so the OR stage reduces over exact prefixes
        ops.sort(key=lambda t: -len(t[1]))
        n_ops = len(ops)
        out_nodes = np.array([node for node, _ in ops], dtype=np.intp)
        mcounts = []
        j = 0
        while True:
            c = sum(1 for _, cl in ops if len(cl) > j)
            if c == 0:
                break
            mcounts.append(c)
            j += 1
        oroff = [0]
        for c in mcounts:
            oroff.append(oroff[-1] + c)
        n_cubes = oroff[-1]

        # AND layout: cubes sorted by literal count desc, literals
        # position-major so the AND stage reduces over exact prefixes
        cubes = []  # (k, or_slot, lit_rows)
        for i, (_node, cube_lits) in enumerate(ops):
            for j, lits in enumerate(cube_lits):
                cubes.append((len(lits), oroff[j] + i, lits))
        cubes.sort(key=lambda t: -t[0])
        kcounts = []
        j = 0
        while True:
            c = sum(1 for k, _, _ in cubes if k > j)
            if c == 0:
                break
            kcounts.append(c)
            j += 1
        src = [
            lits[j]
            for j in range(len(kcounts))
            for k, _, lits in cubes
            if k > j
        ]
        inv_sel = np.array(
            [i for i, (node, _) in enumerate(ops) if needs_inv[node]],
            dtype=np.intp,
        )
        return _Level(
            src=np.array(src, dtype=np.intp),
            kcounts=tuple(kcounts),
            perm=np.array([slot for _, slot, _ in cubes], dtype=np.intp),
            mcounts=tuple(mcounts),
            n_cubes=n_cubes,
            n_ops=n_ops,
            out_nodes=out_nodes,
            inv_sel=inv_sel,
            inv_rows=out_nodes[inv_sel] + n,
        )


def build_plan(program) -> VectorPlan:
    """Lower ``program`` into a :class:`VectorPlan` (uncached)."""
    return VectorPlan(program)


def plan_for(program) -> VectorPlan:
    """The (cached) vector plan of a compiled program.

    Cached on the program object the way generated python kernels are —
    dropped on pickling (plans rebuild from the op list in one pass) and
    never shared across structural signatures, so an in-place rewire that
    recompiles the program can never be served a stale plan.
    """
    plan = getattr(program, "_vector_plan", None)
    if plan is None:
        plan = build_plan(program)
        program._vector_plan = plan
    return plan


class VectorState:
    """Dense evaluation state + scratch buffers for one word width.

    ``eval_levels`` runs one combinational settle over the full state
    width with zero allocation.  ``fixups`` optionally carries gate-level
    override blends, grouped by level index: each entry is applied right
    after its level's outputs land, so downstream levels see the forced
    value — the vector analogue of the python backend's forced kernel.
    """

    def __init__(self, plan: VectorPlan, n_words: int) -> None:
        self.plan = plan
        self.n_words = int(n_words)
        W = self.n_words
        self.state = np.zeros((plan.n_state_rows, W), dtype=np.uint64)
        self.state[plan.ones_row] = ~np.uint64(0)
        # Per level: the cube accumulator, the op accumulator, one gather
        # scratch sized for the largest non-leading position chunk, the
        # complement scratch, and the inverse cube permutation (orb
        # position -> accumulator row).  Gathers happen chunk by chunk so
        # each chunk is consumed while still cache-hot, instead of
        # materializing every literal row up front.
        self._scratch = []
        for lv in plan.levels:
            kc, mc = lv.kcounts, lv.mcounts
            tmp_rows = max(kc[1] if len(kc) > 1 else 0, mc[1] if len(mc) > 1 else 0)
            inv_perm = np.empty(lv.n_cubes, dtype=np.intp)
            inv_perm[lv.perm] = np.arange(lv.n_cubes, dtype=np.intp)
            self._scratch.append(
                (
                    np.empty((lv.n_cubes, W), dtype=np.uint64),
                    np.empty((lv.n_ops, W), dtype=np.uint64),
                    np.empty((tmp_rows, W), dtype=np.uint64),
                    np.empty((lv.inv_sel.size, W), dtype=np.uint64),
                    inv_perm,
                )
            )
        self.reset_consts()

    def reset_consts(self) -> None:
        """(Re)fold constant nodes into the state (values + complements)."""
        n = self.plan.n_nodes
        for node, const in self.plan.program.const_nodes:
            self.state[node] = ~np.uint64(0) if const else np.uint64(0)
            self.state[node + n] = ~self.state[node]

    def set_source(self, node: int, row: np.ndarray) -> None:
        """Write a source row (and its complement when some literal
        reads it inverted)."""
        state = self.state
        state[node] = row
        if self.plan.needs_inv[node]:
            np.invert(state[node], out=state[self.plan.n_nodes + node])

    def blend(self, node: int, forced: np.ndarray, notmask: np.ndarray) -> None:
        """In-place override blend: ``state[node] = (v & ~mask) | forced``
        (``forced`` pre-masked), complement refreshed when maintained."""
        row = self.state[node]
        np.bitwise_and(row, notmask, out=row)
        np.bitwise_or(row, forced, out=row)
        if self.plan.needs_inv[node]:
            np.invert(row, out=self.state[self.plan.n_nodes + node])

    def eval_levels(
        self, fixups: "dict[int, list[tuple[int, np.ndarray, np.ndarray]]] | None" = None
    ) -> None:
        state = self.state
        for li, (lv, (acc, oacc, tmp, invb, inv_perm)) in enumerate(
            zip(self.plan.levels, self._scratch)
        ):
            kc = lv.kcounts
            np.take(state, lv.src[: kc[0]], axis=0, out=acc)
            off = kc[0]
            for c in kc[1:]:
                t = tmp[:c]
                np.take(state, lv.src[off : off + c], axis=0, out=t)
                np.bitwise_and(acc[:c], t, out=acc[:c])
                off += c
            mc = lv.mcounts
            np.take(acc, inv_perm[: mc[0]], axis=0, out=oacc)
            off = mc[0]
            for c in mc[1:]:
                t = tmp[:c]
                np.take(acc, inv_perm[off : off + c], axis=0, out=t)
                np.bitwise_or(oacc[:c], t, out=oacc[:c])
                off += c
            state[lv.out_nodes] = oacc
            if lv.inv_sel.size:
                np.take(oacc, lv.inv_sel, axis=0, out=invb)
                np.invert(invb, out=invb)
                state[lv.inv_rows] = invb
            if fixups:
                for node, forced, notmask in fixups.get(li, ()):
                    self.blend(node, forced, notmask)
