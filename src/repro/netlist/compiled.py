"""Compiled simulation kernels: per-network evaluation programs.

The interpreted simulator (:mod:`repro.netlist.simulate`) walks the gate
list every cycle, paying per node for dict lookups, cover-cache hits and
fresh small-array allocations — with ``n_words`` typically 1, numpy
dispatch overhead dominates the packed emulation step.  This module
follows the ESSENT-style "compile the design into a program" idiom from
the HPC simulation literature: a :class:`LogicNetwork` is lowered **once**
into a :class:`CompiledProgram` — a topo-ordered straight-line op list
with integer-indexed fanins, ISOP cube masks/polarities flattened into
the op stream, constants folded, and PI/latch/PO index tables — and that
program is code-generated into a Python kernel whose only per-cycle work
is bitwise integer arithmetic over the dense lane state.

Lane state representation
-------------------------
A node's packed value is one **word-packed integer** carrying all
``n_words * 64`` SIMD lanes (Python integers are arbitrary-precision, so
one value object spans every word; lane *k* lives at bit ``k``, i.e. word
``k // 64``, bit ``k % 64``).  The generated kernel rebinds slots of one
preallocated flat list — no per-node dicts, no per-cycle array
allocation — and :meth:`CompiledSimulator.dense` exports the state as the
contiguous ``(n_nodes, n_words)`` ``uint64`` matrix (into a preallocated
buffer) whenever an array view is wanted.  Bit *k* of word *w* of row *n*
is lane ``64*w + k`` of node ``n`` — exactly the layout the interpreted
simulator spreads across its per-node arrays, which is what makes the
two paths bit-for-bit comparable (``tests/test_compiled.py``).

Overrides (fault forcing) resolve through precomputed node indices: gate
overrides blend inside a second generated kernel via per-node
``(forced, ~mask)`` tables (``value = (clean & ~mask) | (forced & mask)``
per lane, the same formula as
:func:`repro.netlist.simulate.apply_override`), while source and
folded-constant overrides blend before the kernel runs.

Program caching
---------------
Compilation costs one cover extraction + codegen pass per network, so
programs are cached at three levels by :func:`program_for`:

* a ``WeakKeyDictionary`` keyed by network *instance* (revalidated
  against the structural signature — in-place rewires miss instead of
  returning a stale program);
* a bounded signature-keyed LRU, so regenerated-but-identical networks
  (every ``mapping.to_lut_network()`` call builds a fresh object) share
  one program;
* optionally an :class:`~repro.pipeline.ArtifactStore` under the
  :data:`COMPILED_SIM_STAGE` pseudo-stage, so warm campaign restarts
  skip compilation the way they skip every other pipeline stage.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Mapping
from weakref import WeakKeyDictionary

import numpy as np

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.sop import truthtable_to_cover

__all__ = [
    "COMPILED_SIM_STAGE",
    "PROGRAM_VERSION",
    "CompiledProgram",
    "CompiledSimulator",
    "compile_network",
    "network_signature",
    "program_for",
]

#: ArtifactStore pseudo-stage name compiled programs persist under (the
#: online-phase analogue of the offline pipeline's stage entries).
COMPILED_SIM_STAGE = "compiled-sim"

#: Folded into :func:`network_signature`; bump when program lowering or
#: kernel semantics change so persisted programs from older versions miss.
PROGRAM_VERSION = 1

_MASK64 = (1 << 64) - 1

#: Straight-line ops per generated kernel function; very large networks
#: are split into several functions to keep CPython's compiler happy.
_OPS_PER_CHUNK = 2000


def network_signature(net: LogicNetwork) -> str:
    """Structural content key of a network for program caching.

    Hashes kinds, fanin indices, truth tables, latch wiring, PO node
    indices and the program version — *not* signal names, so a
    renamed-but-structurally identical network (e.g. every regeneration
    of the same mapped design) shares one compiled program.  Cheap
    relative to compilation: one linear pass, no cover extraction.
    """
    h = hashlib.sha256()
    h.update(f"{COMPILED_SIM_STAGE}-v{PROGRAM_VERSION}:{net.n_nodes}\n".encode())
    h.update(repr(tuple(net.pis)).encode())
    h.update(
        repr([(l.driver, l.q, l.init) for l in net.latches]).encode()
    )
    # PO membership by node index (still name-free): the program's
    # po_nodes table must belong to the network a cache hit serves
    h.update(repr([net.require(n) for n in net.po_names]).encode())
    for nid in range(net.n_nodes):
        kind = net.kind(nid)
        if kind == NodeKind.GATE:
            func = net.func(nid)
            assert func is not None
            h.update(
                f"g{nid}:{net.fanins(nid)}:{func.n_vars}:{func.bits:x}\n".encode()
            )
        else:
            h.update(f"n{nid}:{int(kind)}\n".encode())
    return h.hexdigest()


class CompiledProgram:
    """A network lowered to a flat, name-free evaluation program.

    Attributes
    ----------
    signature:
        The :func:`network_signature` this program was compiled from.
    n_nodes:
        Size of the node id space (= the lane-state vector length).
    ops:
        Topo-ordered gate ops, each ``(node, fanins, cubes)`` with
        ``cubes`` a tuple of ``(mask, polarity)`` pairs over the fanin
        positions — the ISOP cover flattened out of the truth table.
    const_nodes:
        ``(node, 0/1)`` pairs for constant gates — folded at reset, never
        re-evaluated per cycle.
    pi_nodes / latch_qs / latch_drivers / latch_inits / po_nodes:
        Integer index tables for the simulator's per-cycle bookkeeping.

    Programs are picklable (generated kernels are dropped from the state
    and regenerated lazily on first use), which is what lets an
    :class:`~repro.pipeline.ArtifactStore` persist them as pipeline
    artifacts.
    """

    def __init__(
        self,
        *,
        signature: str,
        n_nodes: int,
        ops: tuple,
        const_nodes: tuple,
        pi_nodes: tuple,
        latch_qs: tuple,
        latch_drivers: tuple,
        latch_inits: tuple,
        po_nodes: tuple,
    ) -> None:
        self.signature = signature
        self.n_nodes = n_nodes
        self.ops = ops
        self.const_nodes = const_nodes
        self.pi_nodes = pi_nodes
        self.latch_qs = latch_qs
        self.latch_drivers = latch_drivers
        self.latch_inits = latch_inits
        self.po_nodes = po_nodes
        self._finish_init()

    def _finish_init(self) -> None:
        self.source_nodes = self.pi_nodes + self.latch_qs
        is_op = [False] * self.n_nodes
        for node, _fanins, _cubes in self.ops:
            is_op[node] = True
        self.is_op = is_op
        self.const_value = dict(self.const_nodes)
        self._kernels: "tuple | None" = None

    # -- pickling (kernels are exec-generated functions; regenerate) --------

    def __getstate__(self) -> dict:
        return {
            "signature": self.signature,
            "n_nodes": self.n_nodes,
            "ops": self.ops,
            "const_nodes": self.const_nodes,
            "pi_nodes": self.pi_nodes,
            "latch_qs": self.latch_qs,
            "latch_drivers": self.latch_drivers,
            "latch_inits": self.latch_inits,
            "po_nodes": self.po_nodes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._finish_init()

    # -- kernel generation ---------------------------------------------------

    def kernels(self):
        """The generated ``(clean, forced)`` kernel pair (cached).

        ``clean(v, M)`` evaluates every gate op into the flat value list
        ``v`` (``M`` is the all-lanes mask).  ``forced(v, M, f, nm)``
        additionally blends each result through the per-node forced/
        not-mask tables: ``v[n] = (expr & nm[n]) | f[n]`` — with the
        tables at their neutral values (``0`` / ``M``) this reduces to
        the clean result, so only the nodes an override actually targets
        need their table slots armed.
        """
        if self._kernels is None:
            self._kernels = _codegen(self)
        return self._kernels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledProgram(n_nodes={self.n_nodes}, ops={len(self.ops)}, "
            f"consts={len(self.const_nodes)}, sig={self.signature[:12]}...)"
        )


def _op_exprs(ops) -> "list[tuple[int, str]]":
    """Lower each op to a Python bitwise expression over ``v``/``M``."""
    out = []
    for node, fanins, cubes in ops:
        terms = []
        for cmask, cpol in cubes:
            lits = []
            for pos, src in enumerate(fanins):
                if not (cmask >> pos) & 1:
                    continue
                if (cpol >> pos) & 1:
                    lits.append(f"v[{src}]")
                else:
                    lits.append(f"(M^v[{src}])")
            if lits:
                terms.append("&".join(lits))
            else:  # tautology cube (defensive; consts are folded earlier)
                terms.append("M")
        out.append((node, "|".join(terms) if terms else "0"))
    return out


def _codegen(program: CompiledProgram):
    """Generate the straight-line clean/forced kernels for a program."""
    exprs = _op_exprs(program.ops)
    clean_chunks = []
    forced_chunks = []
    for base in range(0, max(1, len(exprs)), _OPS_PER_CHUNK):
        chunk = exprs[base : base + _OPS_PER_CHUNK]
        clean_lines = [f"def _clean_{base}(v, M):"]
        forced_lines = [f"def _forced_{base}(v, M, f, nm):"]
        if not chunk:
            clean_lines.append("    pass")
            forced_lines.append("    pass")
        for node, expr in chunk:
            clean_lines.append(f"    v[{node}] = {expr}")
            forced_lines.append(
                f"    v[{node}] = (({expr})&nm[{node}])|f[{node}]"
            )
        ns: dict = {}
        exec(  # noqa: S102 — code generated from our own lowering, no user input
            compile(
                "\n".join(clean_lines + forced_lines),
                f"<compiled-sim:{program.signature[:12]}:{base}>",
                "exec",
            ),
            ns,
        )
        clean_chunks.append(ns[f"_clean_{base}"])
        forced_chunks.append(ns[f"_forced_{base}"])

    if len(clean_chunks) == 1:
        return clean_chunks[0], forced_chunks[0]

    def clean(v, M, _chunks=tuple(clean_chunks)):
        for fn in _chunks:
            fn(v, M)

    def forced(v, M, f, nm, _chunks=tuple(forced_chunks)):
        for fn in _chunks:
            fn(v, M, f, nm)

    return clean, forced


def compile_network(
    net: LogicNetwork, *, signature: str | None = None
) -> CompiledProgram:
    """Lower ``net`` into a :class:`CompiledProgram` (no caching here —
    use :func:`program_for` for the cached entry point)."""
    ops = []
    const_nodes = []
    for nid in net.topo_order():
        if net.kind(nid) != NodeKind.GATE:
            continue
        func = net.func(nid)
        assert func is not None
        const = func.const_value()
        if const is not None:
            const_nodes.append((nid, int(const)))
            continue
        cover = truthtable_to_cover(func)
        cubes = tuple((c.mask, c.polarity) for c in cover.cubes)
        ops.append((nid, net.fanins(nid), cubes))
    return CompiledProgram(
        signature=signature or network_signature(net),
        n_nodes=net.n_nodes,
        ops=tuple(ops),
        const_nodes=tuple(const_nodes),
        pi_nodes=tuple(net.pis),
        latch_qs=tuple(l.q for l in net.latches),
        latch_drivers=tuple(l.driver for l in net.latches),
        latch_inits=tuple(l.init for l in net.latches),
        po_nodes=tuple(
            net.require(name) for name in net.po_names
        ),
    )


# -- program caches ----------------------------------------------------------

_BY_NET: "WeakKeyDictionary[LogicNetwork, CompiledProgram]" = WeakKeyDictionary()
_BY_KEY: "OrderedDict[str, CompiledProgram]" = OrderedDict()
_BY_KEY_LIMIT = 64


def program_for(net: LogicNetwork, *, store=None) -> CompiledProgram:
    """The compiled program for ``net``, through every cache level.

    ``store`` (an :class:`~repro.pipeline.ArtifactStore` or anything with
    its ``get``/``put`` protocol) persists programs under the
    :data:`COMPILED_SIM_STAGE` pseudo-stage keyed by the structural
    signature, so a warm campaign restart pays zero compilations; in-
    process, programs are memoized per network instance (signature-
    revalidated, so in-place rewires recompile) and per signature (so
    regenerated identical networks — every ``to_lut_network()`` call —
    share one program).
    """
    sig = network_signature(net)
    hit = _BY_NET.get(net)
    if hit is not None and hit.signature == sig:
        return hit
    program = None
    if store is not None:
        found = store.get(COMPILED_SIM_STAGE, sig, expect=CompiledProgram)
        if found is not None:
            program = found.value
        else:
            program = _BY_KEY.get(sig)
            if program is None:
                program = compile_network(net, signature=sig)
            store.put(COMPILED_SIM_STAGE, sig, program)
    else:
        program = _BY_KEY.get(sig)
        if program is None:
            program = compile_network(net, signature=sig)
    _BY_KEY[sig] = program
    _BY_KEY.move_to_end(sig)
    while len(_BY_KEY) > _BY_KEY_LIMIT:
        _BY_KEY.popitem(last=False)
    try:
        _BY_NET[net] = program
    except TypeError:  # pragma: no cover — un-weakref-able network subclass
        pass
    return program


# -- execution ----------------------------------------------------------------


def int_to_words(value: int, n_words: int) -> np.ndarray:
    """A word-packed integer as a little-endian ``uint64`` array (bits
    beyond ``64 * n_words`` are dropped)."""
    value &= (1 << (64 * n_words)) - 1
    return np.frombuffer(
        value.to_bytes(8 * n_words, "little"), dtype=np.uint64
    )


def words_to_int(arr: np.ndarray) -> int:
    """Inverse of :func:`int_to_words` (any uint64 array, little-endian)."""
    return int.from_bytes(
        np.ascontiguousarray(arr, dtype=np.uint64).tobytes(), "little"
    )


class CompiledSimulator:
    """Executes a :class:`CompiledProgram` cycle by cycle.

    All per-cycle state lives in preallocated containers: the flat value
    list (one word-packed integer per node), the latch-state list, the
    forced/not-mask override tables and the dense export buffer.  A step
    is: write PI and latch-output slots, run the generated kernel,
    capture next latch state — nothing allocates an array.

    This is the engine-facing fast path; the drop-in replacement for the
    historical dict-of-arrays API is
    :class:`repro.netlist.simulate.SequentialSimulator`, which wraps this
    class and converts at its boundary.
    """

    def __init__(self, program: CompiledProgram, n_words: int = 1) -> None:
        if n_words < 1:
            raise SimulationError("n_words must be at least 1")
        self.program = program
        self.n_words = int(n_words)
        self.full_mask = (1 << (64 * self.n_words)) - 1
        self.cycle = 0
        n = program.n_nodes
        self.values: list[int] = [0] * n
        self.latch_state: list[int] = [0] * len(program.latch_qs)
        self._forced: list[int] = [0] * n
        self._notmask: list[int] = [self.full_mask] * n
        self._armed: list[int] = []
        self._dirty_consts: list[int] = []
        self._word_bytes = 8 * self.n_words
        self._dense_buf = bytearray(n * self._word_bytes)
        self._dense = np.frombuffer(self._dense_buf, dtype=np.uint64).reshape(
            n, self.n_words
        )
        self._clean_kernel, self._forced_kernel = program.kernels()
        self.reset()

    # -- state ---------------------------------------------------------------

    def reset(self) -> None:
        """Reload latch initial values and re-fold constants."""
        self.cycle = 0
        full = self.full_mask
        v = self.values
        for node, const in self.program.const_nodes:
            v[node] = full if const else 0
        for i, init in enumerate(self.program.latch_inits):
            self.latch_state[i] = full if init == 1 else 0
        self._dirty_consts.clear()

    def value(self, node: int) -> int:
        """Node's current word-packed value (all lanes, one integer)."""
        return self.values[node]

    def word(self, node: int, word: int = 0) -> int:
        """One 64-lane word of a node's value."""
        return (self.values[node] >> (64 * word)) & _MASK64

    def export_words(self, nodes, buf: bytearray) -> None:
        """Serialize ``nodes``' word-packed values into ``buf``
        (little-endian, ``8 * n_words`` bytes per node) — the one
        int→uint64 conversion loop shared by :meth:`dense` and the
        engine's per-cycle trace-sample capture."""
        bl = self._word_bytes
        v = self.values
        pos = 0
        for n in nodes:
            buf[pos : pos + bl] = v[n].to_bytes(bl, "little")
            pos += bl

    def dense(self) -> np.ndarray:
        """Export state as the contiguous ``(n_nodes, n_words)`` matrix.

        Fills the preallocated buffer in place — callers that keep the
        result across steps must copy.  Row ``n`` word ``w`` bit ``k`` is
        lane ``64*w + k`` of node ``n``.
        """
        self.export_words(range(len(self.values)), self._dense_buf)
        return self._dense

    # -- evaluation ----------------------------------------------------------

    def _restore_consts(self) -> None:
        if self._dirty_consts:
            full = self.full_mask
            cv = self.program.const_value
            v = self.values
            for node in self._dirty_consts:
                v[node] = full if cv[node] else 0
            self._dirty_consts.clear()

    def _eval(
        self, overrides: "Mapping[int, tuple[int, int]] | None"
    ) -> None:
        """Run one combinational settle with overrides already split out.

        ``overrides`` maps node → ``(forced, mask)`` word-packed integer
        pairs.  Source and folded-constant overrides blend into the value
        list before the kernel runs; gate overrides arm the forced-kernel
        tables so the blend happens the moment the gate is evaluated —
        its fanouts see the forced value, exactly like the interpreted
        path.
        """
        v = self.values
        full = self.full_mask
        if not overrides:
            self._clean_kernel(v, full)
            return
        is_op = self.program.is_op
        const_value = self.program.const_value
        armed = self._armed
        f = self._forced
        nm = self._notmask
        for node, (forced, mask) in overrides.items():
            forced &= full
            mask &= full
            if is_op[node]:
                f[node] = forced & mask
                nm[node] = full ^ mask
                armed.append(node)
            else:
                v[node] = (v[node] & (full ^ mask)) | (forced & mask)
                if node in const_value:
                    self._dirty_consts.append(node)
        if armed:
            self._forced_kernel(v, full, f, nm)
            for node in armed:
                f[node] = 0
                nm[node] = full
            armed.clear()
        else:
            self._clean_kernel(v, full)

    def step(
        self,
        pi_values: "Mapping[int, int]",
        *,
        overrides: "Mapping[int, tuple[int, int]] | None" = None,
    ) -> None:
        """Advance one clock cycle over word-packed integer stimulus."""
        self._restore_consts()
        v = self.values
        full = self.full_mask
        try:
            for pid in self.program.pi_nodes:
                v[pid] = pi_values[pid] & full
        except KeyError as exc:
            raise SimulationError(
                f"cycle {self.cycle}: no value for PI node {exc.args[0]}"
            ) from exc
        state = self.latch_state
        for i, q in enumerate(self.program.latch_qs):
            v[q] = state[i]
        self._eval(overrides)
        for i, d in enumerate(self.program.latch_drivers):
            state[i] = v[d]
        self.cycle += 1

    def eval_combinational(
        self,
        source_values: "Mapping[int, int]",
        *,
        overrides: "Mapping[int, tuple[int, int]] | None" = None,
    ) -> None:
        """One combinational settle from explicit source values (PIs and
        latch outputs alike), without touching latch state or the cycle
        counter — the compiled counterpart of
        :func:`repro.netlist.simulate.simulate_combinational`."""
        self._restore_consts()
        v = self.values
        full = self.full_mask
        for src in self.program.source_nodes:
            if src not in source_values:
                raise SimulationError(f"no stimulus for source node {src}")
            v[src] = source_values[src] & full
        self._eval(overrides)
