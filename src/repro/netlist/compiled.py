"""Compiled simulation kernels: per-network evaluation programs.

The interpreted simulator (:mod:`repro.netlist.simulate`) walks the gate
list every cycle, paying per node for dict lookups, cover-cache hits and
fresh small-array allocations — with ``n_words`` typically 1, numpy
dispatch overhead dominates the packed emulation step.  This module
follows the ESSENT-style "compile the design into a program" idiom from
the HPC simulation literature: a :class:`LogicNetwork` is lowered **once**
into a :class:`CompiledProgram` — a topo-ordered straight-line op list
with integer-indexed fanins, ISOP cube masks/polarities flattened into
the op stream, constants folded, and PI/latch/PO index tables — and that
program is code-generated into a Python kernel whose only per-cycle work
is bitwise integer arithmetic over the dense lane state.

Lane state representation
-------------------------
A node's packed value is one **word-packed integer** carrying all
``n_words * 64`` SIMD lanes (Python integers are arbitrary-precision, so
one value object spans every word; lane *k* lives at bit ``k``, i.e. word
``k // 64``, bit ``k % 64``).  The generated kernel rebinds slots of one
preallocated flat list — no per-node dicts, no per-cycle array
allocation — and :meth:`CompiledSimulator.dense` exports the state as the
contiguous ``(n_nodes, n_words)`` ``uint64`` matrix (into a preallocated
buffer) whenever an array view is wanted.  Bit *k* of word *w* of row *n*
is lane ``64*w + k`` of node ``n`` — exactly the layout the interpreted
simulator spreads across its per-node arrays, which is what makes the
two paths bit-for-bit comparable (``tests/test_compiled.py``).

Overrides (fault forcing) resolve through precomputed node indices: gate
overrides blend inside a second generated kernel via per-node
``(forced, ~mask)`` tables (``value = (clean & ~mask) | (forced & mask)``
per lane, the same formula as
:func:`repro.netlist.simulate.apply_override`), while source and
folded-constant overrides blend before the kernel runs.

Program caching
---------------
Compilation costs one cover extraction + codegen pass per network, so
programs are cached at three levels by :func:`program_for`:

* a ``WeakKeyDictionary`` keyed by network *instance* (revalidated
  against the structural signature — in-place rewires miss instead of
  returning a stale program);
* a bounded signature-keyed LRU, so regenerated-but-identical networks
  (every ``mapping.to_lut_network()`` call builds a fresh object) share
  one program;
* optionally an :class:`~repro.pipeline.ArtifactStore` under the
  :data:`COMPILED_SIM_STAGE` pseudo-stage, so warm campaign restarts
  skip compilation the way they skip every other pipeline stage.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Mapping
from weakref import WeakKeyDictionary

try:  # the numpy backend is optional: the python backend (and program
    # compilation itself) must work on a numpy-free interpreter, which the
    # CI backend-parity matrix exercises with an import shim
    import numpy as np
except ImportError:  # pragma: no cover — exercised by the no-numpy CI job
    np = None

from repro.errors import SimulationError
from repro.netlist.network import LogicNetwork, NodeKind
from repro.netlist.sop import truthtable_to_cover

__all__ = [
    "BACKENDS",
    "COMPILED_SIM_STAGE",
    "PROGRAM_VERSION",
    "CompiledProgram",
    "CompiledSimulator",
    "compile_network",
    "network_signature",
    "numpy_available",
    "program_for",
    "resolve_backend",
]

#: ArtifactStore pseudo-stage name compiled programs persist under (the
#: online-phase analogue of the offline pipeline's stage entries).
COMPILED_SIM_STAGE = "compiled-sim"

#: Folded into :func:`network_signature`; bump when program lowering or
#: kernel semantics change so persisted programs from older versions miss.
PROGRAM_VERSION = 1

_MASK64 = (1 << 64) - 1

#: Straight-line ops per generated kernel function; very large networks
#: are split into several functions to keep CPython's compiler happy.
_OPS_PER_CHUNK = 2000

# -- execution backends -------------------------------------------------------

#: Registered kernel execution backends: ``"python"`` runs the generated
#: big-int kernels (arbitrary lane width, no dependencies); ``"numpy"``
#: runs the vectorized whole-array lowering of :mod:`repro.netlist.vector`
#: (amortizes dispatch across words — the high-lane-width fast path).
BACKENDS = ("python", "numpy")

#: Environment override consulted when no explicit backend is requested
#: (values: ``auto`` / ``python`` / ``numpy``); the CLI's ``--sim-backend``
#: flag sets the same choice per campaign.
BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Auto selection switches to numpy at this many words (256 lanes): below
#: it, big-int ops are cheap and numpy dispatch dominates; above it, the
#: vectorized kernels amortize dispatch across the word axis.
AUTO_NUMPY_MIN_WORDS = 4

#: Cycle batching (combinational programs only) targets this total state
#: width per evaluation pass, capped at :data:`MAX_BLOCK_CYCLES` cycles.
BLOCK_TARGET_WORDS = 128
MAX_BLOCK_CYCLES = 64


def numpy_available() -> bool:
    """Whether the numpy execution backend can be constructed here."""
    return np is not None


def resolve_backend(backend: "str | None" = None, *, n_words: int = 1) -> str:
    """Resolve a backend request to a concrete registered backend.

    ``None``/``"auto"`` consults the :data:`BACKEND_ENV` environment
    variable, then falls back to width-based auto selection: numpy when
    available and ``n_words >= AUTO_NUMPY_MIN_WORDS`` (dispatch amortized
    across the word axis), python otherwise.  Explicit requests are
    validated — asking for numpy on a numpy-free interpreter is an error
    rather than a silent fallback.
    """
    if backend in (None, "auto"):
        backend = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if backend == "auto":
        if np is not None and n_words >= AUTO_NUMPY_MIN_WORDS:
            return "numpy"
        return "python"
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown simulation backend {backend!r} (known: "
            f"{', '.join(BACKENDS)}, or 'auto')"
        )
    if backend == "numpy" and np is None:
        raise SimulationError(
            "numpy simulation backend requested but numpy is not importable"
        )
    return backend


def network_signature(net: LogicNetwork) -> str:
    """Structural content key of a network for program caching.

    Hashes kinds, fanin indices, truth tables, latch wiring, PO node
    indices and the program version — *not* signal names, so a
    renamed-but-structurally identical network (e.g. every regeneration
    of the same mapped design) shares one compiled program.  Cheap
    relative to compilation: one linear pass, no cover extraction.
    """
    h = hashlib.sha256()
    h.update(f"{COMPILED_SIM_STAGE}-v{PROGRAM_VERSION}:{net.n_nodes}\n".encode())
    h.update(repr(tuple(net.pis)).encode())
    h.update(
        repr([(l.driver, l.q, l.init) for l in net.latches]).encode()
    )
    # PO membership by node index (still name-free): the program's
    # po_nodes table must belong to the network a cache hit serves
    h.update(repr([net.require(n) for n in net.po_names]).encode())
    for nid in range(net.n_nodes):
        kind = net.kind(nid)
        if kind == NodeKind.GATE:
            func = net.func(nid)
            assert func is not None
            h.update(
                f"g{nid}:{net.fanins(nid)}:{func.n_vars}:{func.bits:x}\n".encode()
            )
        else:
            h.update(f"n{nid}:{int(kind)}\n".encode())
    return h.hexdigest()


class CompiledProgram:
    """A network lowered to a flat, name-free evaluation program.

    Attributes
    ----------
    signature:
        The :func:`network_signature` this program was compiled from.
    n_nodes:
        Size of the node id space (= the lane-state vector length).
    ops:
        Topo-ordered gate ops, each ``(node, fanins, cubes)`` with
        ``cubes`` a tuple of ``(mask, polarity)`` pairs over the fanin
        positions — the ISOP cover flattened out of the truth table.
    const_nodes:
        ``(node, 0/1)`` pairs for constant gates — folded at reset, never
        re-evaluated per cycle.
    pi_nodes / latch_qs / latch_drivers / latch_inits / po_nodes:
        Integer index tables for the simulator's per-cycle bookkeeping.

    Programs are picklable (generated kernels are dropped from the state
    and regenerated lazily on first use), which is what lets an
    :class:`~repro.pipeline.ArtifactStore` persist them as pipeline
    artifacts.
    """

    def __init__(
        self,
        *,
        signature: str,
        n_nodes: int,
        ops: tuple,
        const_nodes: tuple,
        pi_nodes: tuple,
        latch_qs: tuple,
        latch_drivers: tuple,
        latch_inits: tuple,
        po_nodes: tuple,
    ) -> None:
        self.signature = signature
        self.n_nodes = n_nodes
        self.ops = ops
        self.const_nodes = const_nodes
        self.pi_nodes = pi_nodes
        self.latch_qs = latch_qs
        self.latch_drivers = latch_drivers
        self.latch_inits = latch_inits
        self.po_nodes = po_nodes
        self._finish_init()

    def _finish_init(self) -> None:
        self.source_nodes = self.pi_nodes + self.latch_qs
        is_op = [False] * self.n_nodes
        for node, _fanins, _cubes in self.ops:
            is_op[node] = True
        self.is_op = is_op
        self.const_value = dict(self.const_nodes)
        self._kernels: "tuple | None" = None

    # -- pickling (kernels are exec-generated functions; regenerate) --------

    def __getstate__(self) -> dict:
        return {
            "signature": self.signature,
            "n_nodes": self.n_nodes,
            "ops": self.ops,
            "const_nodes": self.const_nodes,
            "pi_nodes": self.pi_nodes,
            "latch_qs": self.latch_qs,
            "latch_drivers": self.latch_drivers,
            "latch_inits": self.latch_inits,
            "po_nodes": self.po_nodes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._finish_init()

    # -- kernel generation ---------------------------------------------------

    def kernels(self):
        """The generated ``(clean, forced)`` kernel pair (cached).

        ``clean(v, M)`` evaluates every gate op into the flat value list
        ``v`` (``M`` is the all-lanes mask).  ``forced(v, M, f, nm)``
        additionally blends each result through the per-node forced/
        not-mask tables: ``v[n] = (expr & nm[n]) | f[n]`` — with the
        tables at their neutral values (``0`` / ``M``) this reduces to
        the clean result, so only the nodes an override actually targets
        need their table slots armed.
        """
        if self._kernels is None:
            self._kernels = _codegen(self)
        return self._kernels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledProgram(n_nodes={self.n_nodes}, ops={len(self.ops)}, "
            f"consts={len(self.const_nodes)}, sig={self.signature[:12]}...)"
        )


def _op_exprs(ops) -> "list[tuple[int, str]]":
    """Lower each op to a Python bitwise expression over ``v``/``M``."""
    out = []
    for node, fanins, cubes in ops:
        terms = []
        for cmask, cpol in cubes:
            lits = []
            for pos, src in enumerate(fanins):
                if not (cmask >> pos) & 1:
                    continue
                if (cpol >> pos) & 1:
                    lits.append(f"v[{src}]")
                else:
                    lits.append(f"(M^v[{src}])")
            if lits:
                terms.append("&".join(lits))
            else:  # tautology cube (defensive; consts are folded earlier)
                terms.append("M")
        out.append((node, "|".join(terms) if terms else "0"))
    return out


def _codegen(program: CompiledProgram):
    """Generate the straight-line clean/forced kernels for a program."""
    exprs = _op_exprs(program.ops)
    clean_chunks = []
    forced_chunks = []
    for base in range(0, max(1, len(exprs)), _OPS_PER_CHUNK):
        chunk = exprs[base : base + _OPS_PER_CHUNK]
        clean_lines = [f"def _clean_{base}(v, M):"]
        forced_lines = [f"def _forced_{base}(v, M, f, nm):"]
        if not chunk:
            clean_lines.append("    pass")
            forced_lines.append("    pass")
        for node, expr in chunk:
            clean_lines.append(f"    v[{node}] = {expr}")
            forced_lines.append(
                f"    v[{node}] = (({expr})&nm[{node}])|f[{node}]"
            )
        ns: dict = {}
        exec(  # noqa: S102 — code generated from our own lowering, no user input
            compile(
                "\n".join(clean_lines + forced_lines),
                f"<compiled-sim:{program.signature[:12]}:{base}>",
                "exec",
            ),
            ns,
        )
        clean_chunks.append(ns[f"_clean_{base}"])
        forced_chunks.append(ns[f"_forced_{base}"])

    if len(clean_chunks) == 1:
        return clean_chunks[0], forced_chunks[0]

    def clean(v, M, _chunks=tuple(clean_chunks)):
        for fn in _chunks:
            fn(v, M)

    def forced(v, M, f, nm, _chunks=tuple(forced_chunks)):
        for fn in _chunks:
            fn(v, M, f, nm)

    return clean, forced


def compile_network(
    net: LogicNetwork, *, signature: str | None = None
) -> CompiledProgram:
    """Lower ``net`` into a :class:`CompiledProgram` (no caching here —
    use :func:`program_for` for the cached entry point)."""
    ops = []
    const_nodes = []
    for nid in net.topo_order():
        if net.kind(nid) != NodeKind.GATE:
            continue
        func = net.func(nid)
        assert func is not None
        const = func.const_value()
        if const is not None:
            const_nodes.append((nid, int(const)))
            continue
        cover = truthtable_to_cover(func)
        cubes = tuple((c.mask, c.polarity) for c in cover.cubes)
        ops.append((nid, net.fanins(nid), cubes))
    return CompiledProgram(
        signature=signature or network_signature(net),
        n_nodes=net.n_nodes,
        ops=tuple(ops),
        const_nodes=tuple(const_nodes),
        pi_nodes=tuple(net.pis),
        latch_qs=tuple(l.q for l in net.latches),
        latch_drivers=tuple(l.driver for l in net.latches),
        latch_inits=tuple(l.init for l in net.latches),
        po_nodes=tuple(
            net.require(name) for name in net.po_names
        ),
    )


# -- program caches ----------------------------------------------------------

_BY_NET: "WeakKeyDictionary[LogicNetwork, CompiledProgram]" = WeakKeyDictionary()
_BY_KEY: "OrderedDict[str, CompiledProgram]" = OrderedDict()
_BY_KEY_LIMIT = 64


def program_for(net: LogicNetwork, *, store=None) -> CompiledProgram:
    """The compiled program for ``net``, through every cache level.

    ``store`` (an :class:`~repro.pipeline.ArtifactStore` or anything with
    its ``get``/``put`` protocol) persists programs under the
    :data:`COMPILED_SIM_STAGE` pseudo-stage keyed by the structural
    signature, so a warm campaign restart pays zero compilations; in-
    process, programs are memoized per network instance (signature-
    revalidated, so in-place rewires recompile) and per signature (so
    regenerated identical networks — every ``to_lut_network()`` call —
    share one program).
    """
    sig = network_signature(net)
    hit = _BY_NET.get(net)
    if hit is not None and hit.signature == sig:
        return hit
    program = None
    if store is not None:
        found = store.get(COMPILED_SIM_STAGE, sig, expect=CompiledProgram)
        if found is not None:
            program = found.value
        else:
            program = _BY_KEY.get(sig)
            if program is None:
                program = compile_network(net, signature=sig)
            store.put(COMPILED_SIM_STAGE, sig, program)
    else:
        program = _BY_KEY.get(sig)
        if program is None:
            program = compile_network(net, signature=sig)
    _BY_KEY[sig] = program
    _BY_KEY.move_to_end(sig)
    while len(_BY_KEY) > _BY_KEY_LIMIT:
        _BY_KEY.popitem(last=False)
    try:
        _BY_NET[net] = program
    except TypeError:  # pragma: no cover — un-weakref-able network subclass
        pass
    return program


# -- execution ----------------------------------------------------------------


def int_to_words(value: int, n_words: int) -> "np.ndarray":
    """A word-packed integer as a little-endian ``uint64`` array (bits
    beyond ``64 * n_words`` are dropped)."""
    if np is None:  # pragma: no cover — exercised by the no-numpy CI job
        raise SimulationError("int_to_words needs numpy (array export path)")
    value &= (1 << (64 * n_words)) - 1
    return np.frombuffer(
        value.to_bytes(8 * n_words, "little"), dtype=np.uint64
    )


def words_to_int(arr: "np.ndarray") -> int:
    """Inverse of :func:`int_to_words` (any uint64 array, little-endian)."""
    if np is None:  # pragma: no cover — exercised by the no-numpy CI job
        raise SimulationError("words_to_int needs numpy (array import path)")
    return int.from_bytes(
        np.ascontiguousarray(arr, dtype=np.uint64).tobytes(), "little"
    )


class _RowIntView:
    """Read-only ``values``-style adapter over the numpy backend's state:
    indexing by node id yields the word-packed integer, so code written
    against the python backend's flat value list keeps working."""

    __slots__ = ("_state", "_n")

    def __init__(self, state, n_nodes: int) -> None:
        self._state = state
        self._n = n_nodes

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, node: int) -> int:
        return int.from_bytes(self._state[node].tobytes(), "little")


class CompiledSimulator:
    """Executes a :class:`CompiledProgram` cycle by cycle.

    ``backend`` selects the kernel implementation (see
    :func:`resolve_backend`; ``None`` auto-selects by word count):

    * ``"python"`` — the generated big-int kernels.  All per-cycle state
      lives in preallocated containers: the flat value list (one
      word-packed integer per node), the latch-state list, the forced/
      not-mask override tables and the dense export buffer.  A step is:
      write PI and latch-output slots, run the generated kernel, capture
      next latch state — nothing allocates an array.
    * ``"numpy"`` — the vectorized whole-array lowering of
      :mod:`repro.netlist.vector` over a dense ``uint64`` state matrix;
      per-op dispatch is amortized across the word axis, and
      combinational programs additionally support cycle batching through
      :meth:`run_block` (up to :attr:`block_cycles` cycles per
      vectorized pass — the 512+-lane fast path).  ``values`` stays
      indexable by node id (a read-only view yielding word-packed
      integers), so both backends present one API.

    This is the engine-facing fast path; the drop-in replacement for the
    historical dict-of-arrays API is
    :class:`repro.netlist.simulate.SequentialSimulator`, which wraps this
    class and converts at its boundary.
    """

    def __init__(
        self,
        program: CompiledProgram,
        n_words: int = 1,
        *,
        backend: "str | None" = None,
    ) -> None:
        if n_words < 1:
            raise SimulationError("n_words must be at least 1")
        self.program = program
        self.n_words = int(n_words)
        self.backend = resolve_backend(backend, n_words=self.n_words)
        self.full_mask = (1 << (64 * self.n_words)) - 1
        self.cycle = 0
        n = program.n_nodes
        self.latch_state: list[int] = [0] * len(program.latch_qs)
        self._dirty_consts: list[int] = []
        self._word_bytes = 8 * self.n_words
        self._dense_buf = bytearray(n * self._word_bytes)
        self._dense = None  # numpy view over _dense_buf, built on demand
        if self.backend == "numpy":
            from repro.netlist.vector import VectorState, plan_for

            self._plan = plan_for(program)
            self._vec = VectorState(self._plan, self.n_words)
            self.values: "list[int] | _RowIntView" = _RowIntView(
                self._vec.state, n
            )
            self._block_cycles = (
                1
                if program.latch_qs
                else max(
                    1,
                    min(MAX_BLOCK_CYCLES, BLOCK_TARGET_WORDS // self.n_words),
                )
            )
            self._blk = None  # cycle-batched VectorState, built on demand
            self._dirty_consts_blk: list[int] = []
            # block stimulus marshalling: PI scatter indices (built on
            # first run_block) and the broadcast zero-row byte constant
            self._pi_idx = None
            self._pi_inv_sel = None
            self._pi_inv_pos = None
            self._pi_inv_rows = None
            self._inv_buf = None
            self._zero_row_bytes = b"\x00" * self._word_bytes
        else:
            self._plan = None
            self._vec = None
            self.values = [0] * n
            self._forced: list[int] = [0] * n
            self._notmask: list[int] = [self.full_mask] * n
            self._armed: list[int] = []
            self._block_cycles = 1
            self._clean_kernel, self._forced_kernel = program.kernels()
        self.reset()

    # -- state ---------------------------------------------------------------

    def reset(self) -> None:
        """Reload latch initial values and re-fold constants."""
        self.cycle = 0
        full = self.full_mask
        if self._vec is not None:
            self._vec.reset_consts()
            if self._blk is not None:
                self._blk.reset_consts()
                self._dirty_consts_blk.clear()
        else:
            v = self.values
            for node, const in self.program.const_nodes:
                v[node] = full if const else 0
        for i, init in enumerate(self.program.latch_inits):
            self.latch_state[i] = full if init == 1 else 0
        self._dirty_consts.clear()

    def value(self, node: int) -> int:
        """Node's current word-packed value (all lanes, one integer)."""
        return self.values[node]

    def word(self, node: int, word: int = 0) -> int:
        """One 64-lane word of a node's value."""
        if self._vec is not None:
            return int(self._vec.state[node, word])
        return (self.values[node] >> (64 * word)) & _MASK64

    def node_ints(self, nodes) -> "list[int]":
        """Word-packed integer values for a list of node ids — the bulk
        read both backends serve without materializing the full state."""
        if self._vec is not None:
            state = self._vec.state
            return [
                int.from_bytes(state[n].tobytes(), "little") for n in nodes
            ]
        v = self.values
        return [v[n] for n in nodes]

    def export_words(self, nodes, buf: bytearray) -> None:
        """Serialize ``nodes``' word-packed values into ``buf``
        (little-endian, ``8 * n_words`` bytes per node) — the one
        int→uint64 conversion loop shared by :meth:`dense` and the
        engine's per-cycle trace-sample capture."""
        if self._vec is not None:
            idx = np.asarray(nodes, dtype=np.intp)
            view = np.frombuffer(buf, dtype=np.uint64).reshape(
                idx.size, self.n_words
            )
            np.take(self._vec.state, idx, axis=0, out=view)
            return
        bl = self._word_bytes
        v = self.values
        pos = 0
        for n in nodes:
            buf[pos : pos + bl] = v[n].to_bytes(bl, "little")
            pos += bl

    def dense(self) -> "np.ndarray":
        """Export state as the contiguous ``(n_nodes, n_words)`` matrix.

        Fills the preallocated buffer in place — callers that keep the
        result across steps must copy.  Row ``n`` word ``w`` bit ``k`` is
        lane ``64*w + k`` of node ``n``.
        """
        if np is None:  # pragma: no cover — exercised by the no-numpy CI job
            raise SimulationError("dense export needs numpy")
        if self._dense is None:
            self._dense = np.frombuffer(
                self._dense_buf, dtype=np.uint64
            ).reshape(self.program.n_nodes, self.n_words)
        if self._vec is not None:
            self._dense[:] = self._vec.state[: self.program.n_nodes]
        else:
            self.export_words(range(len(self.values)), self._dense_buf)
        return self._dense

    # -- evaluation ----------------------------------------------------------

    def _restore_consts(self) -> None:
        if not self._dirty_consts:
            return
        full = self.full_mask
        cv = self.program.const_value
        if self._vec is not None:
            state = self._vec.state
            n = self.program.n_nodes
            for node in self._dirty_consts:
                state[node] = (
                    ~np.uint64(0) if cv[node] else np.uint64(0)
                )
                state[node + n] = ~state[node]
        else:
            v = self.values
            for node in self._dirty_consts:
                v[node] = full if cv[node] else 0
        self._dirty_consts.clear()

    def _eval(
        self, overrides: "Mapping[int, tuple[int, int]] | None"
    ) -> None:
        """Run one combinational settle with overrides already split out.

        ``overrides`` maps node → ``(forced, mask)`` word-packed integer
        pairs.  Source and folded-constant overrides blend into the value
        state before the kernel runs; gate overrides blend the moment the
        gate is evaluated — its fanouts see the forced value, exactly
        like the interpreted path (python: the forced kernel's per-node
        tables; numpy: per-level fixups applied between level passes).
        """
        if self._vec is not None:
            fixups = self._vec_overrides(
                self._vec, overrides, self._dirty_consts
            )
            self._vec.eval_levels(fixups)
            return
        v = self.values
        full = self.full_mask
        if not overrides:
            self._clean_kernel(v, full)
            return
        is_op = self.program.is_op
        const_value = self.program.const_value
        armed = self._armed
        f = self._forced
        nm = self._notmask
        for node, (forced, mask) in overrides.items():
            forced &= full
            mask &= full
            if is_op[node]:
                f[node] = forced & mask
                nm[node] = full ^ mask
                armed.append(node)
            else:
                v[node] = (v[node] & (full ^ mask)) | (forced & mask)
                if node in const_value:
                    self._dirty_consts.append(node)
        if armed:
            self._forced_kernel(v, full, f, nm)
            for node in armed:
                f[node] = 0
                nm[node] = full
            armed.clear()
        else:
            self._clean_kernel(v, full)

    # -- numpy-backend internals ---------------------------------------------

    def _row_from_int(self, value: int) -> "np.ndarray":
        return np.frombuffer(
            (value & self.full_mask).to_bytes(self._word_bytes, "little"),
            dtype=np.uint64,
        )

    def _vec_overrides(self, vec, overrides, dirty):
        """Blend source/const overrides into ``vec`` now; return the gate
        overrides grouped by level index for mid-eval fixups."""
        if not overrides:
            return None
        is_op = self.program.is_op
        const_value = self.program.const_value
        full = self.full_mask
        fixups: "dict[int, list] | None" = None
        for node, (forced, mask) in overrides.items():
            farr = self._row_from_int(forced & mask)
            nmarr = self._row_from_int(full ^ mask)
            if is_op[node]:
                if fixups is None:
                    fixups = {}
                fixups.setdefault(self._plan.op_level[node], []).append(
                    (node, farr, nmarr)
                )
            else:
                vec.blend(node, farr, nmarr)
                if node in const_value:
                    dirty.append(node)
        return fixups

    # -- stepping -------------------------------------------------------------

    def step(
        self,
        pi_values: "Mapping[int, int]",
        *,
        overrides: "Mapping[int, tuple[int, int]] | None" = None,
    ) -> None:
        """Advance one clock cycle over word-packed integer stimulus."""
        self._restore_consts()
        full = self.full_mask
        state = self.latch_state
        if self._vec is not None:
            vec = self._vec
            try:
                for pid in self.program.pi_nodes:
                    vec.set_source(pid, self._row_from_int(pi_values[pid]))
            except KeyError as exc:
                raise SimulationError(
                    f"cycle {self.cycle}: no value for PI node {exc.args[0]}"
                ) from exc
            for i, q in enumerate(self.program.latch_qs):
                vec.set_source(q, self._row_from_int(state[i]))
            self._eval(overrides)
            st = vec.state
            for i, d in enumerate(self.program.latch_drivers):
                state[i] = int.from_bytes(st[d].tobytes(), "little")
            self.cycle += 1
            return
        v = self.values
        try:
            for pid in self.program.pi_nodes:
                v[pid] = pi_values[pid] & full
        except KeyError as exc:
            raise SimulationError(
                f"cycle {self.cycle}: no value for PI node {exc.args[0]}"
            ) from exc
        for i, q in enumerate(self.program.latch_qs):
            v[q] = state[i]
        self._eval(overrides)
        for i, d in enumerate(self.program.latch_drivers):
            state[i] = v[d]
        self.cycle += 1

    def eval_combinational(
        self,
        source_values: "Mapping[int, int]",
        *,
        overrides: "Mapping[int, tuple[int, int]] | None" = None,
    ) -> None:
        """One combinational settle from explicit source values (PIs and
        latch outputs alike), without touching latch state or the cycle
        counter — the compiled counterpart of
        :func:`repro.netlist.simulate.simulate_combinational`."""
        self._restore_consts()
        if self._vec is not None:
            vec = self._vec
            for src in self.program.source_nodes:
                if src not in source_values:
                    raise SimulationError(f"no stimulus for source node {src}")
                vec.set_source(src, self._row_from_int(source_values[src]))
            self._eval(overrides)
            return
        v = self.values
        full = self.full_mask
        for src in self.program.source_nodes:
            if src not in source_values:
                raise SimulationError(f"no stimulus for source node {src}")
            v[src] = source_values[src] & full
        self._eval(overrides)

    # -- cycle batching (numpy backend, combinational programs) ---------------

    @property
    def block_cycles(self) -> int:
        """Cycles one :meth:`run_block` call can evaluate vectorized
        (``1`` on the python backend and for sequential programs)."""
        return self._block_cycles

    def run_block(
        self,
        pi_rows: "Sequence[Mapping[int, int]]",
        overrides_rows: "Sequence[Mapping[int, tuple[int, int]] | None] | None" = None,
    ) -> None:
        """Advance ``len(pi_rows)`` cycles in one evaluation pass.

        Combinational cycles are independent, so the numpy backend lays
        cycle *c* of the batch on word columns ``[c * n_words,
        (c+1) * n_words)`` of an extra-wide state and settles them all in
        one vectorized pass — gather and dispatch overhead amortized
        ``C``-fold.  Per-cycle overrides keep exact per-cycle semantics
        (each cycle's ``(forced, mask)`` lands only on its columns).
        After the call the ordinary per-cycle state reflects the *last*
        cycle of the batch and :meth:`block_export` serves every cycle's
        values.  Backends/programs without batching (``block_cycles ==
        1``) fall back to looped :meth:`step` calls — callers need no
        backend-specific logic, only an optional fast path.
        """
        n_cycles = len(pi_rows)
        if overrides_rows is None:
            overrides_rows = [None] * n_cycles
        if self._block_cycles <= 1 or n_cycles <= 1:
            for row, ov in zip(pi_rows, overrides_rows):
                self.step(row, overrides=ov)
            return
        blk = self._block_begin(n_cycles)
        full = self.full_mask
        wb = self._word_bytes
        pis = self.program.pi_nodes
        # one python-level pass converts every (PI, cycle) integer to its
        # 8*n_words little-endian bytes, then a single fancy-index scatter
        # lands the whole stimulus matrix — per-call numpy overhead is
        # paid once per block, not once per source.  The hot path assumes
        # in-range non-negative values (to_bytes raises on anything else,
        # and the masking fallback re-runs the conversion).  Padding
        # columns past n_cycles stay stale; nothing reads them.
        zb = self._zero_row_bytes
        try:
            try:
                data = b"".join(
                    [
                        zb if not (v := row[pid]) else v.to_bytes(wb, "little")
                        for pid in pis
                        for row in pi_rows
                    ]
                )
            except OverflowError:  # out-of-range/negative stimulus: mask
                data = b"".join(
                    [
                        (row[pid] & full).to_bytes(wb, "little")
                        for pid in pis
                        for row in pi_rows
                    ]
                )
        except KeyError as exc:
            raise SimulationError(
                f"cycle {self.cycle}: no value for PI node {exc.args[0]}"
            ) from exc
        cols = n_cycles * self.n_words
        stim = np.frombuffer(data, dtype=np.uint64).reshape(len(pis), cols)
        self._block_scatter_stim(blk, stim, cols)
        fixups = None
        if any(overrides_rows):
            per_node: "dict[int, tuple[bytearray, bytearray]]" = {}
            blank = bytes(wb * self._block_cycles)
            for c, ov in enumerate(overrides_rows):
                if not ov:
                    continue
                for node, (forced, mask) in ov.items():
                    fb, mb = per_node.setdefault(
                        node, (bytearray(blank), bytearray(blank))
                    )
                    fb[c * wb : (c + 1) * wb] = (
                        forced & mask & full
                    ).to_bytes(wb, "little")
                    mb[c * wb : (c + 1) * wb] = (mask & full).to_bytes(
                        wb, "little"
                    )
            is_op = self.program.is_op
            const_value = self.program.const_value
            for node, (fb, mb) in per_node.items():
                farr = np.frombuffer(bytes(fb), dtype=np.uint64)
                nmarr = ~np.frombuffer(bytes(mb), dtype=np.uint64)
                if is_op[node]:
                    if fixups is None:
                        fixups = {}
                    fixups.setdefault(self._plan.op_level[node], []).append(
                        (node, farr, nmarr)
                    )
                else:
                    blk.blend(node, farr, nmarr)
                    if node in const_value:
                        self._dirty_consts_blk.append(node)
        blk.eval_levels(fixups)
        self._block_finish(blk, n_cycles)

    def _block_begin(self, n_cycles: int):
        """Validate capacity and return the cycle-batched state, consts
        restored and PI scatter indices ready."""
        if n_cycles > self._block_cycles:
            raise SimulationError(
                f"run_block of {n_cycles} cycles exceeds block capacity "
                f"{self._block_cycles}"
            )
        if self._blk is None:
            from repro.netlist.vector import VectorState

            self._blk = VectorState(
                self._plan, self.n_words * self._block_cycles
            )
        blk = self._blk
        if self._dirty_consts_blk:
            blk.reset_consts()
            self._dirty_consts_blk.clear()
        self._restore_consts()
        if self._pi_idx is None:
            self._pi_idx = np.asarray(self.program.pi_nodes, dtype=np.intp)
            self._pi_inv_sel = np.asarray(
                [
                    bool(self._plan.needs_inv[p])
                    for p in self.program.pi_nodes
                ],
                dtype=bool,
            )
            self._pi_inv_pos = np.flatnonzero(self._pi_inv_sel)
            self._pi_inv_rows = (
                self._pi_idx[self._pi_inv_sel] + self._plan.n_nodes
            )
            self._inv_buf = np.empty(
                (
                    self._pi_inv_pos.size,
                    self.n_words * self._block_cycles,
                ),
                dtype=np.uint64,
            )
        return blk

    def _block_scatter_stim(self, blk, stim: "np.ndarray", cols: int) -> None:
        """Land the ``(n_pis, cols)`` stimulus matrix (rows in
        ``program.pi_nodes`` order) plus the complement rows literals
        read inverted — the complements pass through a preallocated
        buffer so the scatter is allocation-free."""
        blk.state[self._pi_idx, :cols] = stim
        if self._pi_inv_pos.size:
            buf = self._inv_buf[:, :cols]
            np.take(stim, self._pi_inv_pos, axis=0, out=buf)
            np.invert(buf, out=buf)
            blk.state[self._pi_inv_rows, :cols] = buf

    def _block_finish(self, blk, n_cycles: int) -> None:
        # the ordinary per-cycle state tracks the batch's last cycle, so
        # single-cycle reads after a block see a consistent snapshot
        nw = self.n_words
        self._vec.state[:, :] = blk.state[
            :, (n_cycles - 1) * nw : n_cycles * nw
        ]
        self._last_block = n_cycles
        self.cycle += n_cycles

    def run_block_array(self, stim: "np.ndarray") -> None:
        """Advance a batch of clean cycles from a dense stimulus matrix.

        ``stim`` is a ``(n_pis, C * n_words)`` uint64 array, rows aligned
        to ``program.pi_nodes`` order, cycle ``c`` of the batch on word
        columns ``[c * n_words, (c+1) * n_words)`` — the numpy backend's
        native stimulus format.  Callers that already hold word-packed
        arrays (trace replays, generated stimulus matrices, the kernel
        benchmark) skip :meth:`run_block`'s per-integer marshalling
        entirely; semantics are otherwise identical to a clean
        (override-free) :meth:`run_block`, including :meth:`block_export`
        and :meth:`rewind_block` on the result.  Requires the numpy
        backend on a combinational program (``block_cycles > 1``).
        """
        if self._vec is None or self._block_cycles <= 1:
            raise SimulationError(
                "run_block_array requires the numpy backend on a "
                "combinational program"
            )
        nw = self.n_words
        n_pis = len(self.program.pi_nodes)
        if (
            stim.ndim != 2
            or stim.shape[0] != n_pis
            or stim.dtype != np.uint64
            or stim.shape[1] % nw
            or stim.shape[1] == 0
        ):
            raise SimulationError(
                f"run_block_array stimulus must be uint64 of shape "
                f"({n_pis}, C * {nw}), got {stim.dtype} {stim.shape}"
            )
        n_cycles = stim.shape[1] // nw
        blk = self._block_begin(n_cycles)
        self._block_scatter_stim(blk, stim, stim.shape[1])
        blk.eval_levels(None)
        self._block_finish(blk, n_cycles)

    def rewind_block(self, n_consumed: int) -> None:
        """Declare that only the first ``n_consumed`` cycles of the last
        :meth:`run_block` batch were used (an early-stop predicate fired
        mid-block): the cycle counter rewinds past the overshoot and the
        per-cycle state re-mirrors cycle ``n_consumed - 1`` — exactly the
        state a cycle-by-cycle run stopping there would leave."""
        last = getattr(self, "_last_block", 0)
        if not 0 < n_consumed <= last:
            raise SimulationError(
                f"rewind_block({n_consumed}) without a matching run_block"
            )
        nw = self.n_words
        self._vec.state[:, :] = self._blk.state[
            :, (n_consumed - 1) * nw : n_consumed * nw
        ]
        self.cycle -= last - n_consumed
        self._last_block = n_consumed

    def block_export(self, nodes, out: "np.ndarray") -> None:
        """Gather the last :meth:`run_block` batch's rows for ``nodes``
        into preallocated ``out`` of shape ``(len(nodes), block_cycles *
        n_words)`` — reshape to ``(len(nodes), block_cycles, n_words)``
        for per-cycle views."""
        if self._blk is None:
            raise SimulationError("block_export before any run_block")
        np.take(
            self._blk.state,
            np.asarray(nodes, dtype=np.intp),
            axis=0,
            out=out,
        )
