"""Logic-netlist substrate.

This package provides the gate-level data structures the whole flow is built
on: truth tables, sum-of-products covers, the :class:`LogicNetwork` DAG,
BLIF reading/writing, structural validation, cleanup transforms and a
bit-parallel functional simulator.

It corresponds to the front half of the paper's tool flow (Fig. 5): the
synthesized ``.blif`` netlist that enters signal parameterisation.
"""

from repro.netlist.truthtable import TruthTable
from repro.netlist.sop import Cube, Cover, cover_to_truthtable, truthtable_to_cover
from repro.netlist.network import LogicNetwork, NodeKind, Latch
from repro.netlist.blif import parse_blif, parse_blif_file, write_blif
from repro.netlist.validate import validate_network
from repro.netlist.transforms import sweep_dead, propagate_constants, remove_buffers
from repro.netlist.simulate import (
    simulate_combinational,
    SequentialSimulator,
    random_stimulus,
    check_equivalent,
)
from repro.netlist.compiled import (
    BACKENDS,
    COMPILED_SIM_STAGE,
    CompiledProgram,
    CompiledSimulator,
    compile_network,
    network_signature,
    numpy_available,
    program_for,
    resolve_backend,
)
from repro.netlist.stats import network_stats, NetworkStats, logic_depth

__all__ = [
    "TruthTable",
    "Cube",
    "Cover",
    "cover_to_truthtable",
    "truthtable_to_cover",
    "LogicNetwork",
    "NodeKind",
    "Latch",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "validate_network",
    "sweep_dead",
    "propagate_constants",
    "remove_buffers",
    "simulate_combinational",
    "SequentialSimulator",
    "random_stimulus",
    "check_equivalent",
    "BACKENDS",
    "COMPILED_SIM_STAGE",
    "CompiledProgram",
    "CompiledSimulator",
    "compile_network",
    "network_signature",
    "numpy_available",
    "program_for",
    "resolve_backend",
    "network_stats",
    "NetworkStats",
    "logic_depth",
]
