"""ASCII table rendering used by the experiment reports.

The benchmark harness regenerates the paper's tables as plain text; this
module provides a minimal, dependency-free table formatter with alignment
control and optional CSV export.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence

__all__ = ["TextTable"]


class TextTable:
    """A simple column-aligned text table.

    >>> t = TextTable(["name", "luts"], aligns="lr")
    >>> t.add_row(["stereov.", 190])
    >>> t.add_row(["clma", 7707])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    name     | luts
    ---------+-----
    stereov. |  190
    clma     | 7707
    """

    def __init__(self, headers: Sequence[str], aligns: str | None = None) -> None:
        self.headers = [str(h) for h in headers]
        if aligns is None:
            aligns = "l" * len(self.headers)
        if len(aligns) != len(self.headers):
            raise ValueError("aligns must have one character per column")
        if any(a not in "lrc" for a in aligns):
            raise ValueError("aligns characters must be one of 'l', 'r', 'c'")
        self.aligns = aligns
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
        return str(cell)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    @staticmethod
    def _pad(text: str, width: int, align: str) -> str:
        if align == "l":
            return text.ljust(width)
        if align == "r":
            return text.rjust(width)
        return text.center(width)

    def render(self) -> str:
        """Render the table with a header separator line."""
        widths = self._widths()
        out = io.StringIO()
        header = " | ".join(
            self._pad(h, w, "l") for h, w in zip(self.headers, widths)
        )
        out.write(header.rstrip() + "\n")
        out.write("-+-".join("-" * w for w in widths) + "\n")
        for row in self.rows:
            line = " | ".join(
                self._pad(c, w, a) for c, w, a in zip(row, widths, self.aligns)
            )
            out.write(line.rstrip() + "\n")
        return out.getvalue().rstrip("\n")

    def render_csv(self) -> str:
        """Render as comma-separated values (no quoting — cells are simple)."""
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines)
