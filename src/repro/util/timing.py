"""Wall-clock instrumentation for flow phases.

The compile-time experiment (§V-C.1 of the paper) compares place-and-route
runtimes between the conventional and parameterized flows, so the flow
orchestrators time every phase with :class:`PhaseTimer` and report a
breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Stopwatch", "PhaseTimer"]


class Stopwatch:
    """A resettable wall-clock stopwatch based on ``perf_counter``.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> sw.stop() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._t0: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the elapsed seconds since :meth:`start`."""
        if self._t0 is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed = time.perf_counter() - self._t0
        self._t0 = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    >>> pt = PhaseTimer()
    >>> with pt.phase("map"):
    ...     _ = sum(range(100))
    >>> with pt.phase("route"):
    ...     _ = sum(range(100))
    >>> set(pt.totals) == {"map", "route"}
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        """Sum of all phase times in seconds."""
        return sum(self.totals.values())

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulators into this one."""
        for k, v in other.totals.items():
            self.totals[k] = self.totals.get(k, 0.0) + v
        for k, c in other.counts.items():
            self.counts[k] = self.counts.get(k, 0) + c

    def report(self) -> str:
        """Human-readable multi-line breakdown, longest phase first."""
        lines = []
        for name, secs in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<24s} {secs:10.4f} s  (x{self.counts[name]})")
        lines.append(f"{'TOTAL':<24s} {self.total():10.4f} s")
        return "\n".join(lines)
