"""Deterministic random-number streams.

Every stochastic component of the library (workload generation, placement
annealing, test-vector generation) draws from a named stream derived from a
single experiment seed.  Deriving streams by *name* rather than by call
order means adding a new consumer never perturbs existing results — a
requirement for regenerating the paper's tables bit-identically.
"""

from __future__ import annotations

import hashlib

try:  # optional at import time (the no-numpy CI parity job imports the
    # package without it); stream construction still requires numpy
    import numpy as np
except ImportError:  # pragma: no cover — exercised by the no-numpy CI job
    np = None

__all__ = ["derive_seed", "RngHub"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream ``name``.

    The derivation hashes ``(root_seed, name)`` with BLAKE2b so that child
    seeds are statistically independent and stable across platforms and
    Python versions (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(root_seed.to_bytes(16, "little", signed=True))
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little") & 0x7FFF_FFFF_FFFF_FFFF


class RngHub:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root experiment seed.  Two hubs with the same seed produce identical
        streams for identical names.

    Examples
    --------
    >>> hub = RngHub(42)
    >>> g1 = hub.stream("placement")
    >>> g2 = hub.stream("workload/clma")
    >>> float(g1.random()) != float(g2.random())
    True
    >>> hub2 = RngHub(42)
    >>> float(hub2.stream("placement").random()) == float(RngHub(42).stream("placement").random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object
        (stateful); use :meth:`fresh` for a restarted copy.
        """
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, name))
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (position reset)."""
        return np.random.default_rng(derive_seed(self.seed, name))

    def child(self, name: str) -> "RngHub":
        """Return a hub whose root seed is derived from this hub and ``name``."""
        return RngHub(derive_seed(self.seed, f"hub/{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngHub(seed={self.seed}, streams={sorted(self._cache)})"
