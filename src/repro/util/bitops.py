"""Bit packing helpers on numpy arrays.

Bitstreams (:mod:`repro.bitgen`) and bit-parallel simulation
(:mod:`repro.netlist.simulate`) both store bits densely in ``uint64`` words;
these helpers convert between boolean vectors and packed words and count
differing bits — the inner loop of partial-reconfiguration diffing.
"""

from __future__ import annotations

try:  # optional at import time so the pure-python simulation path (and
    # the no-numpy CI parity job) can import this module; every packing
    # helper still requires numpy at call time
    import numpy as np
except ImportError:  # pragma: no cover — exercised by the no-numpy CI job
    np = None

__all__ = ["words_for_bits", "pack_bits", "unpack_bits", "popcount64", "xor_popcount"]

_POP8 = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)
    if np is not None
    else None
)


def words_for_bits(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits``.

    >>> words_for_bits(0), words_for_bits(1), words_for_bits(64), words_for_bits(65)
    (0, 1, 1, 2)
    """
    return (int(n_bits) + 63) >> 6


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/0-1 vector into little-endian ``uint64`` words.

    Bit ``i`` of the input lands in word ``i // 64``, bit position ``i % 64``.

    >>> w = pack_bits(np.array([1, 0, 1]))
    >>> int(w[0])
    5
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    padded = np.zeros(words_for_bits(n) * 64, dtype=np.uint8)
    padded[:n] = bits
    # numpy packbits is big-endian within bytes; ask for little-endian so the
    # word view below keeps bit i at position i.
    as_bytes = np.packbits(padded, bitorder="little")
    return as_bytes.view(np.uint64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: first ``n_bits`` as a ``uint8`` 0/1 vector.

    >>> v = unpack_bits(pack_bits(np.array([1, 1, 0, 1])), 4)
    >>> v.tolist()
    [1, 1, 0, 1]
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:n_bits]


def popcount64(words: np.ndarray) -> int:
    """Total number of set bits across a ``uint64`` array.

    >>> popcount64(pack_bits(np.array([1, 0, 1, 1])))
    3
    """
    as_bytes = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    return int(_POP8[as_bytes].sum())


def xor_popcount(a: np.ndarray, b: np.ndarray) -> int:
    """Number of bit positions at which ``a`` and ``b`` differ.

    Both arrays must be ``uint64`` of the same length.  This is the hot path
    of frame diffing in partial reconfiguration, done without materializing
    an unpacked bit vector.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return popcount64(np.bitwise_xor(a, b))
