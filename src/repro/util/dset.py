"""Disjoint-set (union-find) over dense integer ids.

Used by netlist transforms (net merging after constant propagation) and by
the packer when coalescing connected logic into clusters.
"""

from __future__ import annotations

__all__ = ["DisjointSet"]


class DisjointSet:
    """Union-find with path halving and union by size.

    >>> d = DisjointSet(5)
    >>> d.union(0, 1); d.union(3, 4)
    >>> d.find(1) == d.find(0)
    True
    >>> d.find(2) in (2,)
    True
    >>> d.n_sets
    3
    """

    __slots__ = ("_parent", "_size", "n_sets")

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n
        self.n_sets = n

    def __len__(self) -> int:
        return len(self._parent)

    def add(self) -> int:
        """Add a new singleton element, returning its id."""
        idx = len(self._parent)
        self._parent.append(idx)
        self._size.append(1)
        self.n_sets += 1
        return idx

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.n_sets -= 1
        return ra

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> dict[int, list[int]]:
        """Map each root to the sorted list of its members."""
        out: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            out.setdefault(self.find(x), []).append(x)
        return out
