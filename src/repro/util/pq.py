"""Indexed binary min-heap.

A priority queue with *decrease-key*: when a shorter path to a node is
found mid-search, its queue priority drops without leaving stale entries
behind.  Python's :mod:`heapq` has no decrease-key, so we keep an explicit
position index per key.  The reference PathFinder
(:mod:`repro.route.ref`) searches through it; the production router
(:mod:`repro.route.pathfinder`) switched to C-level :mod:`heapq` with
lazy deletion, which benchmarked faster despite the stale entries.

Keys are non-negative integers (routing-resource node ids), priorities are
floats.  All operations are O(log n); :meth:`contains` and priority lookup
are O(1).
"""

from __future__ import annotations

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """Binary min-heap over integer keys with decrease-key support.

    >>> h = IndexedMinHeap()
    >>> h.push(5, 3.0); h.push(7, 1.0); h.push(9, 2.0)
    >>> h.pop()
    (7, 1.0)
    >>> h.push(5, 0.5)      # decrease-key for key 5
    >>> h.pop()
    (5, 0.5)
    >>> h.pop()
    (9, 2.0)
    >>> len(h)
    0
    """

    __slots__ = ("_keys", "_prios", "_pos")

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._prios: list[float] = []
        self._pos: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def contains(self, key: int) -> bool:
        return key in self._pos

    def priority(self, key: int) -> float:
        """Current priority of ``key`` (KeyError if absent)."""
        return self._prios[self._pos[key]]

    def push(self, key: int, prio: float) -> None:
        """Insert ``key`` or update its priority (up or down)."""
        pos = self._pos.get(key)
        if pos is None:
            self._keys.append(key)
            self._prios.append(prio)
            pos = len(self._keys) - 1
            self._pos[key] = pos
            self._sift_up(pos)
        else:
            old = self._prios[pos]
            self._prios[pos] = prio
            if prio < old:
                self._sift_up(pos)
            elif prio > old:
                self._sift_down(pos)

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(key, priority)`` with the smallest priority."""
        if not self._keys:
            raise IndexError("pop from empty heap")
        key = self._keys[0]
        prio = self._prios[0]
        last_key = self._keys.pop()
        last_prio = self._prios.pop()
        del self._pos[key]
        if self._keys:
            self._keys[0] = last_key
            self._prios[0] = last_prio
            self._pos[last_key] = 0
            self._sift_down(0)
        return key, prio

    def clear(self) -> None:
        self._keys.clear()
        self._prios.clear()
        self._pos.clear()

    # -- internals --------------------------------------------------------

    def _swap(self, i: int, j: int) -> None:
        keys, prios, pos = self._keys, self._prios, self._pos
        keys[i], keys[j] = keys[j], keys[i]
        prios[i], prios[j] = prios[j], prios[i]
        pos[keys[i]] = i
        pos[keys[j]] = j

    def _sift_up(self, i: int) -> None:
        prios = self._prios
        while i > 0:
            parent = (i - 1) >> 1
            if prios[i] < prios[parent]:
                self._swap(i, parent)
                i = parent
            else:
                return

    def _sift_down(self, i: int) -> None:
        prios = self._prios
        n = len(prios)
        while True:
            left = 2 * i + 1
            right = left + 1
            smallest = i
            if left < n and prios[left] < prios[smallest]:
                smallest = left
            if right < n and prios[right] < prios[smallest]:
                smallest = right
            if smallest == i:
                return
            self._swap(i, smallest)
            i = smallest
