"""Deterministic fan-out of intra-design kernel rounds onto a shared pool.

The region-parallel placer and the round-parallel router both run as a
sequence of *rounds*: the parent builds a batch of independent payloads,
every payload is evaluated against the same frozen snapshot, and the
results are merged parent-side in a fixed order.  :class:`IntraPool` is
the one execution primitive behind both — it runs a round's payloads
either on a shared :class:`~concurrent.futures.ProcessPoolExecutor`
(the campaign's one worker pool, never a nested pool) or in-process,
producing **identical results either way**: a round's outcome is a pure
function of its payloads, so the worker count is an execution detail.

Worker-side state is kept cheap with a *statics* protocol: each kernel
registers one immutable blob (the flattened RR graph, the placement net
tables) under a token; workers cache the prepared blob in a module
global, and a worker that has not seen the token yet answers
``("need", token)`` so the parent resends the blob with that payload.
Pool failures (``OSError``, ``PermissionError``, ``BrokenExecutor`` —
sandboxes, dead workers) permanently degrade the pool to in-process
execution for the rest of the build; the round that hit the failure is
re-run locally from its original payloads, so results are unaffected.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable

from repro.errors import POOL_ERRORS

__all__ = ["IntraPool", "run_round_task", "POOL_ERRORS"]

#: Per-process cache of prepared statics, keyed by token.  Bounded: a
#: long-lived worker serving many builds must not accumulate RR graphs.
_STATICS: dict[str, Any] = {}
_MAX_STATICS = 4


def _prepare(module: str, token: str, blob: Any) -> Any:
    """Prepare and cache ``blob`` for ``token`` via the kernel module's
    optional ``prepare_static`` hook (identity when absent)."""
    mod = importlib.import_module(module)
    prepare = getattr(mod, "prepare_static", None)
    static = prepare(blob) if prepare is not None else blob
    while len(_STATICS) >= _MAX_STATICS:
        _STATICS.pop(next(iter(_STATICS)))
    _STATICS[token] = static
    return static


def run_round_task(task: tuple) -> tuple:
    """Worker-side entry point (module-level, picklable).

    ``task`` is ``(module, fn_name, token, blob_or_None, payload)``.
    Returns ``("ok", result)`` or ``("need", token)`` when the statics
    for ``token`` are not cached here and no blob was shipped.
    """
    module, fn_name, token, blob, payload = task
    static = _STATICS.get(token)
    if static is None:
        if blob is None:
            return ("need", token)
        static = _prepare(module, token, blob)
    fn = getattr(importlib.import_module(module), fn_name)
    return ("ok", fn(static, payload))


class IntraPool:
    """Round fan-out helper over a shared executor (or in-process).

    Parameters
    ----------
    workers:
        Requested intra-design parallelism.  ``<= 1`` never touches the
        pool: every round runs in-process (the serial-by-construction
        configuration the determinism tests compare against).
    acquire:
        Zero-argument callable returning a live executor (or ``None``) —
        typically :meth:`DataflowScheduler._acquire_pool` bound to the
        campaign's one shared pool.  ``None`` forces in-process rounds.
    """

    def __init__(
        self,
        workers: int = 1,
        acquire: "Callable[[], Any] | None" = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._acquire = acquire
        self.broken = False
        """A pool failure was observed; all later rounds run in-process."""
        self.rounds = 0
        self.pooled_rounds = 0
        self._sent: set[str] = set()

    def chunks(self, n_items: int) -> list[tuple[int, int]]:
        """Deterministic near-even split of ``n_items`` into at most
        ``workers`` contiguous ``(start, end)`` ranges."""
        n_chunks = max(1, min(self.workers, n_items))
        k, m = divmod(n_items, n_chunks)
        out = []
        a = 0
        for i in range(n_chunks):
            b = a + k + (1 if i < m else 0)
            out.append((a, b))
            a = b
        return out

    def _pool(self):
        if self.workers <= 1 or self.broken or self._acquire is None:
            return None
        try:
            pool = self._acquire()
        except POOL_ERRORS:
            pool = None
        if pool is None:
            self.broken = True
        return pool

    def _run_local(
        self, module: str, fn_name: str, token: str, blob: Any, payloads: list
    ) -> list:
        static = _STATICS.get(token)
        if static is None:
            static = _prepare(module, token, blob)
        fn = getattr(importlib.import_module(module), fn_name)
        return [fn(static, payload) for payload in payloads]

    def map_round(
        self, module: str, fn_name: str, token: str, blob: Any, payloads: list
    ) -> list:
        """Evaluate ``module.fn_name(static, payload)`` for every payload.

        Results come back in payload order.  The kernel function must be
        a pure function of ``(static, payload)`` — payloads are built
        fresh per round, so kernels may mutate their own payload freely
        (both the pickled pool copy and the in-process original are
        consumed exactly once).
        """
        self.rounds += 1
        pool = self._pool()
        if pool is None or len(payloads) <= 1:
            return self._run_local(module, fn_name, token, blob, payloads)
        first = token not in self._sent
        tasks = [
            (module, fn_name, token, blob if first else None, p)
            for p in payloads
        ]
        try:
            futures = [pool.submit(run_round_task, t) for t in tasks]
            results = []
            for fut, task in zip(futures, tasks):
                out = fut.result()
                if out[0] == "need":
                    # a fresh worker process missed the statics: resend
                    retry = (module, fn_name, token, blob, task[4])
                    out = pool.submit(run_round_task, retry).result()
                results.append(out[1])
        except POOL_ERRORS:
            self.broken = True
            return self._run_local(module, fn_name, token, blob, payloads)
        self._sent.add(token)
        self.pooled_rounds += 1
        return results
