"""Shared low-level utilities.

The utility layer deliberately has no dependencies on the rest of the
library; everything above (netlist, mapping, physical design, core) may use
it freely.
"""

from repro.util.rng import RngHub, derive_seed
from repro.util.timing import Stopwatch, PhaseTimer
from repro.util.tables import TextTable
from repro.util.pq import IndexedMinHeap
from repro.util.dset import DisjointSet
from repro.util.bitops import (
    pack_bits,
    unpack_bits,
    popcount64,
    words_for_bits,
)

__all__ = [
    "RngHub",
    "derive_seed",
    "Stopwatch",
    "PhaseTimer",
    "TextTable",
    "IndexedMinHeap",
    "DisjointSet",
    "pack_bits",
    "unpack_bits",
    "popcount64",
    "words_for_bits",
]
