"""Deterministic fault injection for the campaign execution layer.

The robustness claim of the supervision subsystem — a campaign survives
worker kills, hung tasks, broken pools, torn store writes and a killed
parent, producing outcomes **byte-identical** to a fault-free run — is
only testable if those faults can be injected on a repeatable schedule.
This module is that schedule: an inert-by-default hook surface the
execution layer calls at its fault-relevant points, armed by a JSON spec
in the :data:`ENV_VAR` environment variable so that pool *worker
processes* (which inherit the parent's environment) observe the same
spec without any explicit plumbing.

Hook points (all no-ops unless armed):

* :func:`on_pooled_task` — start of every pooled task in a worker
  process (:func:`repro.pipeline.scheduler._timed_call`).  Drives
  ``kill_worker_at_task`` (SIGKILL the worker at its Nth task — the
  parent sees ``BrokenProcessPool``), ``pool_error_at_task`` (raise
  ``BrokenProcessPool`` from the task body on schedule) and
  ``delay_task`` (sleep a matching task past its supervision timeout).
* :func:`on_store_write` — after an :class:`~repro.pipeline.store.
  ArtifactStore` temp file is fully written, before the atomic rename.
  Drives ``truncate_store_at_put`` (tear the file mid-write, so the
  persisted artifact fails its checksum trailer on the next read).
* :func:`on_journal_append` — after every campaign-journal append.
  Drives ``kill_parent_at_append`` (SIGKILL the *orchestrator* process
  itself at the Nth appended outcome — the checkpoint/resume test).

Every fault is **one-shot across the whole process tree**: before
firing, a hook atomically creates a marker file (``O_CREAT | O_EXCL``)
under the spec's ``dir``, so a respawned pool does not re-kill its
workers and a resumed campaign does not re-kill its parent.  That is
what makes recovery testable: inject exactly one fault, assert the run
converges to the fault-free outcome.

Tests arm the harness with :func:`arm` (a context-manager-free
``arm``/``disarm`` pair — subprocess tests set :data:`ENV_VAR`
directly) and must disarm in a ``finally``.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Any

__all__ = [
    "ENV_VAR",
    "arm",
    "disarm",
    "reset",
    "armed",
    "on_pooled_task",
    "on_store_write",
    "on_journal_append",
]

ENV_VAR = "REPRO_CHAOS"

#: Parsed spec cache: ``None`` = not yet read, ``False`` = unarmed.
_spec: "dict[str, Any] | bool | None" = None
#: Per-process event counters (tasks seen, store puts seen, ...).
_counters: dict[str, int] = {}


def arm(once_dir: str, **spec: Any) -> None:
    """Arm the harness process-tree-wide.

    ``once_dir`` must be a writable directory (one-shot marker files land
    there); keyword arguments are the fault schedule — see the module
    docstring for the recognized keys.  The spec travels through the
    environment, so worker processes forked/spawned *after* arming
    observe it too.
    """
    spec["dir"] = once_dir
    os.environ[ENV_VAR] = json.dumps(spec)
    reset()


def disarm() -> None:
    """Remove the spec from the environment and drop cached state."""
    os.environ.pop(ENV_VAR, None)
    reset()


def reset() -> None:
    """Drop this process's cached spec and counters (markers persist)."""
    global _spec
    _spec = None
    _counters.clear()


def armed() -> bool:
    return bool(_load())


def _load() -> "dict[str, Any] | bool":
    global _spec
    if _spec is None:
        raw = os.environ.get(ENV_VAR)
        try:
            _spec = json.loads(raw) if raw else False
        except ValueError:
            _spec = False
    return _spec


def _count(name: str) -> int:
    _counters[name] = _counters.get(name, 0) + 1
    return _counters[name]


def _fire_once(spec: dict, name: str) -> bool:
    """Atomically claim the one-shot marker for fault ``name``.

    Returns True exactly once across every process sharing the spec's
    marker directory; any filesystem failure counts as "already fired"
    so a broken marker dir can never turn one fault into many.
    """
    path = os.path.join(spec.get("dir", "."), f"chaos-{name}.fired")
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        return True
    except OSError:
        return False


def on_pooled_task(label: str) -> None:
    """Hook: a pooled task is starting in a worker process."""
    spec = _load()
    if not spec:
        return
    n = _count("task")
    at = spec.get("kill_worker_at_task")
    if at is not None and n >= at and _fire_once(spec, "kill-worker"):
        os.kill(os.getpid(), signal.SIGKILL)
    at = spec.get("pool_error_at_task")
    if at is not None and n >= at and _fire_once(spec, "pool-error"):
        from concurrent.futures.process import BrokenProcessPool

        raise BrokenProcessPool("chaos: injected pool error")
    delay = spec.get("delay_task")
    if (
        delay
        and delay.get("match", "") in label
        and _fire_once(spec, "delay")
    ):
        time.sleep(float(delay["seconds"]))


def on_store_write(tmp_path: str, final_path: str) -> None:
    """Hook: a store temp file is fully written, rename comes next."""
    spec = _load()
    if not spec:
        return
    at = spec.get("truncate_store_at_put")
    if at is None:
        return
    if _count("put") >= at and _fire_once(spec, "truncate"):
        size = os.path.getsize(tmp_path)
        with open(tmp_path, "r+b") as fh:
            fh.truncate(max(1, size // 2))


def on_journal_append(n_appends: int) -> None:
    """Hook: the campaign journal just appended its ``n_appends``-th line."""
    spec = _load()
    if not spec:
        return
    at = spec.get("kill_parent_at_append")
    if at is not None and n_appends >= at and _fire_once(spec, "kill-parent"):
        os.kill(os.getpid(), signal.SIGKILL)
