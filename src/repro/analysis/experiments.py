"""Drivers regenerating every table and figure of the paper's §V.

Per-benchmark flow artifacts are cached in-process so Table I, Table II
and Fig. 7 (which share the same runs) cost one pass.  The drivers are
embarrassingly parallel over benchmarks: pass ``map_fn`` (e.g. an MPI or
multiprocessing pool's ``map``) to distribute them.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.analysis.reporting import ascii_bar_chart
from repro.baselines import ConventionalResult, RecompileModel, run_conventional_flow
from repro.baselines.conventional import user_sink_names
from repro.core.costmodel import Virtex5Model
from repro.core.flow import DebugFlowConfig, OfflineStage, run_generic_stage
from repro.core.parameters import ParameterAssignment
from repro.core.scg import SpecializedConfigGenerator
from repro.core.virtual import build_virtual_pconf
from repro.mapping import MappingResult
from repro.util.tables import TextTable
from repro.workloads import BenchmarkSpec, generate_circuit, paper_suite

__all__ = [
    "BenchColumns",
    "run_benchmark_columns",
    "run_table1",
    "run_table2",
    "run_fig7",
    "run_compile_time",
    "run_runtime_overhead",
]

_CACHE: dict[tuple[str, int], "BenchColumns"] = {}

#: Per ``offline_fn``, the ``(benchmark, seed)`` pairs already offered to
#: it.  A warm :data:`_CACHE` hit still offers the artifact to an explicit
#: ``offline_fn`` once (the caller wants its cache populated), but Table
#: I, Table II and Fig. 7 all replay the same columns — without this memo
#: every driver would regenerate the circuit and re-offer per column.
#: Weakly keyed so dropping the cache adapter also drops its memo.
_OFFERED: "weakref.WeakKeyDictionary[Callable, set[tuple[str, int]]]" = (
    weakref.WeakKeyDictionary()
)


@dataclass
class BenchColumns:
    """All four Table I/II columns for one benchmark."""

    spec: BenchmarkSpec
    offline: OfflineStage
    sm: ConventionalResult
    abc: ConventionalResult
    user_sinks: list[str]
    runtime_s: float = 0.0

    @property
    def initial(self) -> MappingResult:
        return self.offline.initial

    @property
    def proposed(self) -> MappingResult:
        return self.offline.mapping

    def row_table1(self) -> list[object]:
        p = self.proposed
        return [
            self.spec.name,
            self.spec.n_gates,
            self.initial.n_luts,
            self.sm.n_luts,
            self.abc.n_luts,
            f"{p.n_luts}({p.n_tluts}/{p.n_tcons})",
        ]

    def row_table2(self) -> list[object]:
        return [
            self.spec.name,
            self.initial.depth_to(self.user_sinks),
            self.sm.user_depth,
            self.abc.user_depth,
            self.proposed.depth_to(self.user_sinks),
        ]


def run_benchmark_columns(
    spec: BenchmarkSpec,
    seed: int = 2016,
    *,
    offline_fn: Callable[..., OfflineStage] | None = None,
) -> BenchColumns:
    """Run Initial / SimpleMap / ABC / Proposed for one benchmark (cached).

    ``offline_fn(net, config) -> OfflineStage`` overrides how the offline
    artifact is produced; pass
    :meth:`repro.campaign.OfflineCache.as_offline_fn` (whole-artifact) or
    :meth:`repro.pipeline.ArtifactStore.as_offline_fn` (stage-granular)
    to share artifacts with a debug campaign instead of re-running the
    generic stage here.
    """
    key = (spec.name, seed)
    got = _CACHE.get(key)
    if got is not None:
        if offline_fn is not None:
            # honor an explicit offline_fn even on a warm hit (the caller
            # wants its own cache populated) without re-running the
            # already-cached conventional flows — but offer each artifact
            # to a given offline_fn only once, so replaying the columns
            # across Table I/II/Fig. 7 doesn't regenerate the circuit and
            # re-offer per driver
            offered = _OFFERED.setdefault(offline_fn, set())
            if key not in offered:
                offered.add(key)
                offline_fn(generate_circuit(spec, seed), DebugFlowConfig())
        return got
    t0 = time.perf_counter()
    net = generate_circuit(spec, seed)
    sinks = user_sink_names(net)
    offline = (offline_fn or run_generic_stage)(net, DebugFlowConfig())
    if offline_fn is not None:
        # the build path already offered (net, config) to offline_fn
        _OFFERED.setdefault(offline_fn, set()).add(key)
    sm = run_conventional_flow(net, "simplemap")
    abc = run_conventional_flow(net, "abc")
    cols = BenchColumns(
        spec=spec,
        offline=offline,
        sm=sm,
        abc=abc,
        user_sinks=sinks,
        runtime_s=time.perf_counter() - t0,
    )
    _CACHE[key] = cols
    return cols


def _resolve_specs(
    specs: Sequence[BenchmarkSpec] | None, small_only: bool
) -> list[BenchmarkSpec]:
    if specs is not None:
        return list(specs)
    return paper_suite(small_only=small_only)


def run_table1(
    specs: Sequence[BenchmarkSpec] | None = None,
    *,
    seed: int = 2016,
    small_only: bool = False,
    map_fn: Callable = map,
) -> str:
    """Regenerate Table I: area results in #LUTs."""
    specs = _resolve_specs(specs, small_only)
    cols = list(map_fn(lambda s: run_benchmark_columns(s, seed), specs))
    t = TextTable(
        ["Benchmark", "#Gate", "Initial", "SM", "ABC", "Proposed (TLUT/TCON)"],
        aligns="lrrrrr",
    )
    for c in cols:
        t.add_row(c.row_table1())
    ref = TextTable(
        ["Benchmark", "Initial", "SM", "ABC", "Proposed (TLUT/TCON)"],
        aligns="lrrrr",
    )
    for c in cols:
        s = c.spec
        ref.add_row(
            [
                s.name,
                s.paper_initial_luts,
                s.paper_sm_luts,
                s.paper_abc_luts,
                f"{s.paper_proposed_luts}({s.paper_tluts}/{s.paper_tcons})",
            ]
        )
    ratios = [
        (c.sm.n_luts + c.abc.n_luts) / 2.0 / max(1, c.proposed.n_luts)
        for c in cols
    ]
    avg = sum(ratios) / len(ratios) if ratios else 0.0
    return (
        "TABLE I — AREA RESULTS IN #LUTS (measured)\n"
        + t.render()
        + f"\n\nconventional/proposed area ratio: avg {avg:.2f}x "
        f"(paper: ~3.5x)\n\nPaper reference values:\n"
        + ref.render()
    )


def run_table2(
    specs: Sequence[BenchmarkSpec] | None = None,
    *,
    seed: int = 2016,
    small_only: bool = False,
    map_fn: Callable = map,
) -> str:
    """Regenerate Table II: logic depth of the user design."""
    specs = _resolve_specs(specs, small_only)
    cols = list(map_fn(lambda s: run_benchmark_columns(s, seed), specs))
    t = TextTable(
        ["Benchmark", "Golden", "SimpleMap", "ABC", "Proposed"],
        aligns="lrrrr",
    )
    for c in cols:
        t.add_row(c.row_table2())
    ref = TextTable(
        ["Benchmark", "Golden", "SimpleMap", "ABC", "Proposed"],
        aligns="lrrrr",
    )
    for c in cols:
        s = c.spec
        # paper's per-column depths: SM/ABC are golden or golden+1; proposed
        # golden or golden-1 — encode the published values directly
        paper_depths = {
            "stereov.": (4, 5, 5, 4),
            "diffeq2": (14, 15, 15, 14),
            "diffeq1": (15, 15, 15, 14),
            "clma": (11, 11, 11, 11),
            "or1200": (27, 28, 28, 27),
            "frisc": (14, 14, 14, 14),
            "s38417": (7, 8, 8, 7),
            "s38584": (7, 8, 8, 7),
        }
        g, sm, abc, prop = paper_depths.get(
            s.name, (s.golden_depth,) * 4
        )
        ref.add_row([s.name, g, sm, abc, prop])
    return (
        "TABLE II — DEPTH RESULTS (measured)\n"
        + t.render()
        + "\n\nPaper reference values:\n"
        + ref.render()
    )


def run_fig7(
    specs: Sequence[BenchmarkSpec] | None = None,
    *,
    seed: int = 2016,
    small_only: bool = False,
    map_fn: Callable = map,
) -> str:
    """Regenerate Fig. 7: the area comparison as an ASCII bar chart + CSV."""
    specs = _resolve_specs(specs, small_only)
    cols = list(map_fn(lambda s: run_benchmark_columns(s, seed), specs))
    groups = [
        (
            c.spec.name,
            {
                "Initial": float(c.initial.n_luts),
                "SimpleMap": float(c.sm.n_luts),
                "ABC": float(c.abc.n_luts),
                "Proposed": float(c.proposed.n_luts),
            },
        )
        for c in cols
    ]
    chart = ascii_bar_chart(groups, unit="LUTs")
    csv = TextTable(["benchmark", "initial", "simplemap", "abc", "proposed"])
    for c in cols:
        csv.add_row(
            [
                c.spec.name,
                c.initial.n_luts,
                c.sm.n_luts,
                c.abc.n_luts,
                c.proposed.n_luts,
            ]
        )
    return (
        "FIG. 7 — AREA RESULTS IN TERMS OF LOOK-UP TABLES (measured)\n\n"
        + chart
        + "\n\nCSV series:\n"
        + csv.render_csv()
    )


def run_compile_time(
    specs: Sequence[BenchmarkSpec] | None = None,
    *,
    seed: int = 2016,
    map_fn: Callable = map,
) -> str:
    """Regenerate §V-C.1: wires, CLBs and P&R runtime, both flows.

    The paper runs this on "small designs"; by default we use the <1000
    gate subset of the suite, full pack/place/route in both flows.
    """
    from repro.physical import physical_from_mapping

    specs = _resolve_specs(specs, small_only=True)

    def one(spec: BenchmarkSpec):
        cols = run_benchmark_columns(spec, seed)
        prop_phys = physical_from_mapping(
            cols.offline.mapping, cols.offline.instrumented, seed=seed
        )
        conv_phys = physical_from_mapping(cols.abc.final, None, seed=seed)
        return spec, prop_phys, conv_phys

    rows = list(map_fn(one, specs))
    t = TextTable(
        [
            "Benchmark",
            "wires conv",
            "wires prop",
            "wire ratio",
            "CLBs conv",
            "CLBs prop",
            "CLB ratio",
            "P&R conv (s)",
            "P&R prop (s)",
        ],
        aligns="lrrrrrrrr",
    )
    for spec, prop, conv in rows:
        wc, wp = conv.wires_used, prop.wires_used
        cc, cp = conv.n_clbs_used, prop.n_clbs_used
        t.add_row(
            [
                spec.name,
                wc,
                wp,
                f"{wc / max(1, wp):.2f}x",
                cc,
                cp,
                f"{cc / max(1, cp):.2f}x",
                f"{conv.timers.total():.2f}",
                f"{prop.timers.total():.2f}",
            ]
        )
    return (
        "COMPILE-TIME OVERHEAD (§V-C.1, measured)\n"
        + t.render()
        + "\n\nPaper reference (small designs): 5316 wires parameterized vs "
        "15699 conventional (~3x less);\nP&R runtimes up to 3x faster; up "
        "to 4x fewer CLBs."
    )


def run_runtime_overhead(
    spec: BenchmarkSpec | None = None,
    *,
    seed: int = 2016,
    model: Virtex5Model | None = None,
    n_respecializations: int = 8,
) -> str:
    """Regenerate §V-C.2: specialization vs full reconfiguration.

    Uses the virtual PConf of a mid-size benchmark: measured software
    evaluation time, modeled device-side time, the three-orders-of-
    magnitude comparison against full reconfiguration, the 5000-turn
    break-even, and the conventional recompile comparison.
    """
    model = model or Virtex5Model()
    if spec is None:
        # clma: the largest benchmark — its PConf size puts the evaluation
        # time in the paper's quoted tens-of-microseconds regime
        spec = paper_suite()[3]
    cols = run_benchmark_columns(spec, seed)
    design = cols.offline.instrumented
    vp = build_virtual_pconf(cols.offline.mapping, design)
    scg = SpecializedConfigGenerator(vp.bitstream, model=model)
    scg.load_full(design.param_space.zeros())

    net = design.network
    taps = design.taps
    sw_times: list[float] = []
    records = []
    for i in range(n_respecializations):
        sig = net.node_name(taps[(i * 7) % len(taps)])
        values = design.selection_for([sig])
        rec = scg.respecialize(design.param_space.assignment(values))
        sw_times.append(rec.software_seconds)
        records.append(rec)

    last = records[-1]
    stats = last.stats
    cost = last.device_cost
    recomp = RecompileModel()
    conv_luts = cols.abc.n_luts
    recompile_s = recomp.compile_time_s(conv_luts)

    t = TextTable(["quantity", "value"], aligns="lr")
    t.add_row(["benchmark", spec.name])
    t.add_row(["tunable bits", vp.bitstream.n_tunable])
    t.add_row(["distinct Boolean functions", vp.bitstream.n_distinct_exprs])
    t.add_row(
        ["expr nodes / respecialization", stats.n_expr_nodes_evaluated]
    )
    t.add_row(
        [
            "SCG software time (this host)",
            f"{1e3 * sum(sw_times) / len(sw_times):.2f} ms",
        ]
    )
    for k, v in cost.rows():
        t.add_row([k, v])
    t.add_row(
        ["conventional recompile (model)", f"{recompile_s:.0f} s"]
    )
    t.add_row(
        [
            "specialization vs recompile",
            f"{recompile_s / cost.specialization_s:.0f}x faster",
        ]
    )
    full_vs_spec = cost.full_reconfig_s / cost.specialization_s
    return (
        "RUN-TIME OVERHEAD (§V-C.2, measured + modeled)\n"
        + t.render()
        + f"\n\nshape check: specialization is {full_vs_spec:.0f}x faster than a "
        "full reconfiguration\n(paper: ~3 orders of magnitude; 176 ms full vs "
        "<=50 us evaluation;\nbreak-even ~5000 debugging turns at 400 MHz / "
        "4-tick loop)."
    )
