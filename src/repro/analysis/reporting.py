"""Plain-text rendering of experiment results.

Every benchmark target writes its output both to stdout (visible with
``pytest -s``) and to ``results/<name>.txt``, so the EXPERIMENTS.md record
can be regenerated without scraping terminal logs.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

__all__ = [
    "ascii_bar_chart",
    "save_result",
    "results_dir",
    "aggregate_campaign",
    "lane_occupancy",
    "render_campaign_report",
]


def results_dir(base: str | None = None) -> str:
    """The results directory (created on demand)."""
    d = base or os.environ.get("REPRO_RESULTS_DIR") or os.path.join(
        os.getcwd(), "results"
    )
    os.makedirs(d, exist_ok=True)
    return d


def save_result(name: str, text: str, base: str | None = None) -> str:
    """Write ``text`` to ``results/<name>.txt``; returns the path."""
    path = os.path.join(results_dir(base), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    return path


def ascii_bar_chart(
    groups: Sequence[tuple[str, Mapping[str, float]]],
    *,
    width: int = 50,
    unit: str = "LUTs",
) -> str:
    """Grouped horizontal bar chart (one block per benchmark).

    >>> print(ascii_bar_chart([("x", {"a": 2.0, "b": 4.0})], width=4))
    x
      a  ##    2 LUTs
      b  ####  4 LUTs
    """
    peak = max(
        (v for _g, series in groups for v in series.values()), default=1.0
    )
    label_w = max(
        (len(k) for _g, series in groups for k in series), default=1
    )
    lines: list[str] = []
    for gname, series in groups:
        lines.append(gname)
        for key, value in series.items():
            n = max(0, round(width * value / peak)) if peak else 0
            bar = "#" * n
            lines.append(
                f"  {key.ljust(label_w)}  {bar.ljust(width)}  "
                f"{value:.0f} {unit}"
            )
    return "\n".join(lines)


def aggregate_campaign(records: Sequence[Mapping]) -> dict:
    """Campaign-level aggregates over per-scenario result records.

    ``records`` are plain dicts as produced by
    :meth:`repro.campaign.results.ScenarioResult.as_record` — this module
    stays independent of the campaign types so either layer can evolve.
    """
    counts: dict[str, int] = {}
    for r in records:
        counts[r["status"]] = counts.get(r["status"], 0) + 1
    done = [r for r in records if r["status"] != "error"]
    localized = [r for r in done if r["status"] == "localized"]
    return {
        "n_scenarios": len(records),
        "counts": counts,
        "localization_rate": len(localized) / len(done) if done else 0.0,
        "offline_s": sum(r.get("offline_s", 0.0) for r in records),
        "online_s": sum(r.get("online_s", 0.0) for r in records),
        "cache_hits": sum(bool(r.get("offline_cache_hit")) for r in records),
        "offline_builds": sum(
            not r.get("offline_cache_hit") and r.get("offline_ok", True)
            for r in records
        ),
        "turns": sum(r.get("turns", 0) for r in records),
        "modeled_overhead_s": sum(
            r.get("modeled_overhead_s", 0.0) for r in records
        ),
    }


def lane_occupancy(lane_batches: Sequence[int]) -> dict:
    """Per-batch lane-occupancy aggregates of a lane-parallel campaign.

    ``lane_batches`` holds the number of scenarios bound to each online
    batch's packed emulation.  Occupancy is measured against the words
    each batch actually allocated (64 lanes per ``uint64`` word, so a
    96-lane batch occupies 96 of 128 word bits) — the fraction of the
    packed machine the batched engine actually used.
    """
    if not lane_batches:
        return {"n_batches": 0, "mean_lanes": 0.0, "max_lanes": 0, "occupancy": 0.0}
    capacity = sum(64 * ((n + 63) // 64) for n in lane_batches)
    return {
        "n_batches": len(lane_batches),
        "mean_lanes": sum(lane_batches) / len(lane_batches),
        "max_lanes": max(lane_batches),
        "occupancy": sum(lane_batches) / capacity if capacity else 0.0,
    }


def render_campaign_report(
    records: Sequence[Mapping],
    *,
    wall_s: float | None = None,
    workers: int | None = None,
    cache: Mapping | None = None,
    lane_width: int | None = None,
    lane_batches: Sequence[int] = (),
    offline_workers: int | None = None,
    offline_wall_s: float | None = None,
    offline_stage_s: Mapping[str, float] | None = None,
    intra_design_workers: int | None = None,
    notes: Sequence[str] = (),
    schedule: str | None = None,
    sched_wall_s: float | None = None,
    overlap_ratio: float | None = None,
    stage_concurrency: Mapping[str, float] | None = None,
    resilience: Mapping | None = None,
    title: str = "DEBUG-CAMPAIGN REPORT",
) -> str:
    """Render per-scenario records plus campaign aggregates as plain text.

    The same conventions as the Table I/II drivers: a ``TextTable`` block,
    aggregate lines below, persistable via :func:`save_result`.
    """
    from repro.util.tables import TextTable

    t = TextTable(
        [
            "Scenario",
            "Kind",
            "Status",
            "Fail@",
            "Suspect",
            "Region",
            "Turns",
            "Frames",
            "Spec (us)",
            "Online (s)",
            "Offline (s)",
            "Hit",
        ],
        aligns="llllrrrrrrrl",
    )
    for r in records:
        fail = (
            f"{r.get('failing_po', '')}:{r['fail_cycle']}"
            if r.get("fail_cycle", -1) >= 0
            else "-"
        )
        t.add_row(
            [
                r["scenario"],
                r["kind"],
                r["status"],
                fail,
                r.get("suspect") or "-",
                r.get("region_size", 0),
                r.get("turns", 0),
                r.get("frames_touched", 0),
                f"{1e6 * r.get('modeled_overhead_s', 0.0):.1f}",
                f"{r.get('online_s', 0.0):.2f}",
                f"{r.get('offline_s', 0.0):.2f}",
                "y" if r.get("offline_cache_hit") else "n",
            ]
        )
    agg = aggregate_campaign(records)
    lines = [title, t.render(), ""]
    counts = ", ".join(
        f"{k}={v}" for k, v in sorted(agg["counts"].items())
    )
    lines.append(
        f"scenarios: {agg['n_scenarios']} ({counts}); "
        f"localization rate {100 * agg['localization_rate']:.0f}%"
    )
    builds = agg["offline_builds"]
    lines.append(
        f"offline stage: {builds} build(s) + {agg['cache_hits']} cache "
        f"hit(s), {agg['offline_s']:.2f} s total; "
        f"online: {agg['online_s']:.2f} s over {agg['turns']} debugging "
        f"turn(s), {1e6 * agg['modeled_overhead_s']:.1f} us modeled "
        "specialization"
    )
    if offline_stage_s:
        breakdown = ", ".join(
            f"{name}={secs:.2f}s" for name, secs in offline_stage_s.items()
        )
        par = (
            f", {offline_workers} build worker(s)"
            if offline_workers and offline_workers > 1
            else ""
        )
        wall = (
            f" ({offline_wall_s:.2f} s wall{par})"
            if offline_wall_s is not None
            else ""
        )
        lines.append(f"offline stages built: {breakdown}{wall}")
    if intra_design_workers:
        lines.append(
            f"intra-design parallelism: {intra_design_workers} worker(s) "
            "(level-wave mapping; region-parallel place and round-parallel "
            "route on physical runs)"
        )
    if wall_s is not None:
        par = f", {workers} worker(s)" if workers else ""
        lines.append(f"wall clock: {wall_s:.2f} s{par}")
    if schedule and sched_wall_s is not None:
        line = (
            f"schedule: {schedule}; task wall {sched_wall_s:.2f} s, "
            f"offline/online overlap {100 * (overlap_ratio or 0.0):.0f}%"
        )
        if stage_concurrency:
            conc = ", ".join(
                f"{name}={value:.2f}"
                for name, value in stage_concurrency.items()
            )
            line += f"; stage concurrency: {conc}"
        lines.append(line)
    if lane_batches:
        occ = lane_occupancy(lane_batches)
        width = f" (lane width {lane_width})" if lane_width else ""
        lines.append(
            f"online engine{width}: {occ['n_batches']} lane batch(es), "
            f"mean {occ['mean_lanes']:.1f} / max {occ['max_lanes']} lanes "
            f"per word, {100 * occ['occupancy']:.0f}% word occupancy"
        )
    if cache:
        cache = dict(cache)
        per_stage = cache.pop("per_stage", None)
        lines.append(
            "cache: "
            + ", ".join(f"{k}={v}" for k, v in sorted(cache.items()))
        )
        # stage-granular stores break the accounting down per compile
        # stage — what "stages invalidated per instrumentation change"
        # looks like at campaign scale
        for stage, stats in (per_stage or {}).items():
            lines.append(
                f"  stage {stage}: "
                + ", ".join(f"{k}={v}" for k, v in sorted(dict(stats).items()))
            )
    if resilience:
        # supervision counters + checkpoint state: only rendered when the
        # campaign hit a fault, retried, resumed or kept a journal at all
        parts = [
            f"{k}={v}"
            for k, v in resilience.items()
            if k != "journal_path" and v
        ]
        path = resilience.get("journal_path")
        if path:
            parts.append(f"journal={path}")
        if parts:
            lines.append("resilience: " + ", ".join(parts))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
