"""Plain-text rendering of experiment results.

Every benchmark target writes its output both to stdout (visible with
``pytest -s``) and to ``results/<name>.txt``, so the EXPERIMENTS.md record
can be regenerated without scraping terminal logs.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

__all__ = ["ascii_bar_chart", "save_result", "results_dir"]


def results_dir(base: str | None = None) -> str:
    """The results directory (created on demand)."""
    d = base or os.environ.get("REPRO_RESULTS_DIR") or os.path.join(
        os.getcwd(), "results"
    )
    os.makedirs(d, exist_ok=True)
    return d


def save_result(name: str, text: str, base: str | None = None) -> str:
    """Write ``text`` to ``results/<name>.txt``; returns the path."""
    path = os.path.join(results_dir(base), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    return path


def ascii_bar_chart(
    groups: Sequence[tuple[str, Mapping[str, float]]],
    *,
    width: int = 50,
    unit: str = "LUTs",
) -> str:
    """Grouped horizontal bar chart (one block per benchmark).

    >>> print(ascii_bar_chart([("x", {"a": 2.0, "b": 4.0})], width=4))
    x
      a  ##    2 LUTs
      b  ####  4 LUTs
    """
    peak = max(
        (v for _g, series in groups for v in series.values()), default=1.0
    )
    label_w = max(
        (len(k) for _g, series in groups for k in series), default=1
    )
    lines: list[str] = []
    for gname, series in groups:
        lines.append(gname)
        for key, value in series.items():
            n = max(0, round(width * value / peak)) if peak else 0
            bar = "#" * n
            lines.append(
                f"  {key.ljust(label_w)}  {bar.ljust(width)}  "
                f"{value:.0f} {unit}"
            )
    return "\n".join(lines)
