"""Experiment drivers and reporting.

One entry point per paper artifact (see DESIGN.md §4):

* :func:`~repro.analysis.experiments.run_table1` — Table I (area)
* :func:`~repro.analysis.experiments.run_table2` — Table II (depth)
* :func:`~repro.analysis.experiments.run_fig7` — Fig. 7 (area chart)
* :func:`~repro.analysis.experiments.run_compile_time` — §V-C.1
* :func:`~repro.analysis.experiments.run_runtime_overhead` — §V-C.2
"""

from repro.analysis.experiments import (
    BenchColumns,
    run_benchmark_columns,
    run_table1,
    run_table2,
    run_fig7,
    run_compile_time,
    run_runtime_overhead,
)
from repro.analysis.reporting import ascii_bar_chart, save_result

__all__ = [
    "BenchColumns",
    "run_benchmark_columns",
    "run_table1",
    "run_table2",
    "run_fig7",
    "run_compile_time",
    "run_runtime_overhead",
    "ascii_bar_chart",
    "save_result",
]
