"""Crash-consistent campaign checkpoint journal.

A campaign killed mid-run (parent OOM-kill, CI timeout, ^C) loses only
the scenarios whose outcomes had not yet been **journaled**: each
finished scenario appends one self-checking line to an append-only
journal under ``<cache_dir>/journal/<campaign_id>.jsonl``, and
``--resume <campaign_id>`` replays those lines instead of recomputing
the scenarios.  Because :meth:`~repro.campaign.results.ScenarioResult.
outcome` is deterministic, a resumed campaign's outcomes JSON is
byte-identical to an uninterrupted run's.

File format — one record per line, human-greppable::

    <crc32 hex of the JSON text> <JSON object>\\n

The first record is a header carrying a format version, the campaign id,
the scenario count and a :func:`campaign_fingerprint` of the scenario
list + outcome-relevant config; a resume against a journal whose
fingerprint does not match the requested campaign is refused rather than
silently mixing incompatible outcomes.  Scenario records carry the full
:meth:`~repro.campaign.results.ScenarioResult.as_record` dict.

Crash consistency: every line is written with a single buffered write
followed by a flush (and an ``fsync`` when enabled), so the only
possible damage from a kill is a torn **final** line — detected by the
missing newline or a CRC mismatch and dropped on load; the scenario it
described is simply recomputed.  A CRC mismatch *before* the last line
means real corruption: loading stops at the first bad line and the
remainder of the campaign is recomputed (never trusted).

The fingerprint deliberately excludes execution knobs (workers, lane
width, schedule, backend) — outcomes are byte-identical across those by
construction, so a campaign interrupted at ``--workers 4`` may be
resumed at ``--workers 1`` and vice versa.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Any, Sequence

from repro.util import chaos

__all__ = [
    "JOURNAL_VERSION",
    "campaign_fingerprint",
    "journal_path",
    "CampaignJournal",
]

JOURNAL_VERSION = 1


def campaign_fingerprint(scenarios: Sequence, config) -> str:
    """Stable identity of (scenario list, outcome-relevant config).

    Hashes each scenario's defining fields plus the flow config,
    physical-stage flag and turn budget — everything that can change a
    deterministic outcome.  Worker counts, lane width, schedule and
    kernel backend are excluded on purpose (outcome-neutral knobs).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(config.flow).encode("utf-8"))
    h.update(
        f"|physical={config.with_physical}|turns={config.max_turns}".encode()
    )
    for sc in scenarios:
        h.update(
            "|".join(
                str(v)
                for v in (
                    sc.name,
                    sc.kind,
                    repr(sc.spec),
                    sc.design_seed,
                    sc.horizon,
                    sc.stimulus_seed,
                    sc.fault_signal,
                    sc.fault_value,
                    sc.fault_from_cycle,
                    sc.bug_seed,
                )
            ).encode("utf-8")
        )
        h.update(b"\x00")
    return h.hexdigest()


def journal_path(cache_dir: str, campaign_id: str) -> str:
    safe = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in campaign_id
    )
    return os.path.join(cache_dir, "journal", f"{safe}.jsonl")


def _encode(record: dict) -> bytes:
    text = json.dumps(record, sort_keys=True, default=str)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}\n".encode("utf-8")


def _decode(line: bytes) -> "dict | None":
    """One journal line back to its record; None if torn/corrupt."""
    if not line.endswith(b"\n"):
        return None
    try:
        crc_hex, text = line.rstrip(b"\n").split(b" ", 1)
        if int(crc_hex, 16) != zlib.crc32(text) & 0xFFFFFFFF:
            return None
        return json.loads(text.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


class CampaignJournal:
    """Append-side handle on one campaign's journal file.

    Create with :meth:`start` (fresh campaign: truncates, writes the
    header) or :meth:`resume` (existing campaign: validates the header,
    returns the finished records, positions for further appends).
    """

    def __init__(self, path: str, *, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self.n_appended = 0
        self._fh = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def start(
        cls,
        path: str,
        *,
        campaign_id: str,
        fingerprint: str,
        n_scenarios: int,
        fsync: bool = False,
    ) -> "CampaignJournal":
        os.makedirs(os.path.dirname(path), exist_ok=True)
        j = cls(path, fsync=fsync)
        j._fh = open(path, "wb")
        j._append(
            {
                "t": "header",
                "v": JOURNAL_VERSION,
                "campaign": campaign_id,
                "fingerprint": fingerprint,
                "n": n_scenarios,
            }
        )
        return j

    @classmethod
    def resume(
        cls,
        path: str,
        *,
        fingerprint: str,
        fsync: bool = False,
    ) -> "tuple[CampaignJournal, dict[int, dict]]":
        """Reopen ``path`` for appends; return the finished records.

        Raises :class:`FileNotFoundError` when no such campaign was ever
        journaled and :class:`ValueError` when the journal belongs to a
        different scenario list / config (fingerprint mismatch) or is
        too damaged to trust (bad header).
        """
        header, records = cls.load(path)
        if header is None:
            raise ValueError(f"journal {path!r} has no readable header")
        if header.get("v") != JOURNAL_VERSION:
            raise ValueError(
                f"journal {path!r} is format v{header.get('v')}, "
                f"expected v{JOURNAL_VERSION}"
            )
        if header.get("fingerprint") != fingerprint:
            raise ValueError(
                "refusing to resume: the journal was written by a campaign "
                "with different scenarios or flow config "
                f"(journal fingerprint {header.get('fingerprint')}, "
                f"this campaign {fingerprint})"
            )
        j = cls(path, fsync=fsync)
        j._fh = open(path, "ab")
        return j, records

    @staticmethod
    def load(path: str) -> "tuple[dict | None, dict[int, dict]]":
        """Read ``(header, {scenario idx: result record})`` from ``path``.

        Stops at the first undecodable line: a torn final line (the
        expected kill artifact) is silently dropped; anything after a
        mid-file corruption is not trusted either way.  Missing file
        raises :class:`FileNotFoundError`.
        """
        header: "dict | None" = None
        records: dict[int, dict] = {}
        with open(path, "rb") as fh:
            for i, line in enumerate(fh):
                rec = _decode(line)
                if rec is None:
                    break
                if i == 0:
                    if rec.get("t") != "header":
                        return None, {}
                    header = rec
                elif rec.get("t") == "scenario":
                    records[int(rec["idx"])] = rec["result"]
        return header, records

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- appends ---------------------------------------------------------------

    def append_scenario(self, idx: int, record: dict) -> None:
        """Journal one finished scenario (its ``as_record()`` dict)."""
        self._append({"t": "scenario", "idx": idx, "result": record})

    def _append(self, record: dict) -> None:
        self._fh.write(_encode(record))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.n_appended += 1
        chaos.on_journal_append(self.n_appended)
