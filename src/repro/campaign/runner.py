"""Scenario execution: detection + localization, solo or lane-batched.

:func:`run_scenario` is the historical unit of work — one scenario, one
:class:`~repro.core.debug.DebugSession`.  :func:`run_scenario_batch`
binds any number of scenarios *sharing one offline artifact* (and one
horizon) to the lanes of a single :class:`~repro.engine.LaneEngine` —
64 per packed word, further words added beyond that — one packed golden
pass, one packed detection run (with a per-lane early exit: the moment
every live lane has diverged, the rest of the horizon is skipped), and a
batched frontier walk where every observe+replay turn advances every
still-active lane, retiring lanes as their walks converge.

Both are pure functions of ``(scenarios, offline artifact)`` — stimulus,
golden model and bug reproduction all derive deterministically from the
scenario — and the batch path drives the *same*
:func:`~repro.campaign.localize.divergence_walk` decision generator the
serial path does, which is what guarantees byte-identical outcomes
between serial, parallel and lane-batched campaigns at every lane width.
"""

from __future__ import annotations

import numpy as np

from repro.campaign.localize import (
    divergence_walk,
    golden_signal_traces,
    localize_divergence,
    mapped_frontier_fn,
)
from repro.campaign.results import ScenarioResult
from repro.core.debug import DebugSession
from repro.core.flow import OfflineStage
from repro.engine import LaneEngine
from repro.util.timing import PhaseTimer
from repro.workloads.scenarios import (
    DebugScenario,
    packed_signal_traces,
    stimulus_script,
)

__all__ = ["run_scenario", "run_scenario_batch"]


def run_scenario(
    scenario: DebugScenario,
    offline: OfflineStage,
    *,
    max_turns: int = 48,
    interpreted: bool = False,
    store=None,
    backend: str | None = None,
) -> ScenarioResult:
    """Run one scenario's online debug loop against its offline artifact.

    Phases (timed individually through :class:`PhaseTimer`):

    1. *setup* — build the :class:`DebugSession`; for ``stuck_at``
       scenarios, arm the emulation-level fault;
    2. *golden* — one reference simulation pass recording every observable
       tap and every primary output;
    3. *detect* — emulate the (faulty) mapped design watching its primary
       outputs until the first cycle diverging from golden; no divergence
       within the horizon ⇒ ``undetected``;
    4. *localize* — the frontier walk of
       :func:`~repro.campaign.localize.localize_divergence`.

    Never raises: failures are captured as ``status="error"`` results so a
    single bad scenario cannot take down a campaign.
    """
    timers = PhaseTimer()
    result = ScenarioResult(
        scenario=scenario.name,
        design=scenario.spec.name,
        kind=scenario.kind,
        status="error",
        truth=scenario.fault_signal or "",
    )
    try:
        golden = scenario.golden_network()
        if scenario.kind == "mutation":
            # reproduce the recorded bug (on a scratch copy) for its
            # ground-truth site
            bug = scenario.reproduce_bug(golden.copy())
            result.truth = bug.node_name

        with timers.phase("setup"):
            # trace depth must cover the horizon, or the ring buffer wraps
            # and waveform comparisons would misalign against golden
            session = DebugSession(
                offline,
                trace_depth=max(
                    scenario.horizon, offline.config.trace_depth
                ),
                interpreted=interpreted,
                program_store=store,
                backend=backend,
            )
            if scenario.kind == "stuck_at":
                assert scenario.fault_signal is not None
                session.force(
                    scenario.fault_signal,
                    scenario.fault_value,
                    first_cycle=scenario.fault_from_cycle,
                )

        stim = stimulus_script(golden, scenario.horizon, scenario.stimulus_seed)
        design = session.design
        tap_names = [design.network.node_name(t) for t in design.taps]

        with timers.phase("golden"):
            golden_traces = golden_signal_traces(
                golden,
                stim,
                tap_names + session.user_po_names,
                interpreted=interpreted,
            )

        with timers.phase("detect"):
            observed = session.output_trace(
                scenario.horizon, stimulus=lambda c: stim[c]
            )
            failure = _first_divergence(observed, golden_traces)

        if failure is None:
            result.status = "undetected"
        else:
            fail_cycle, failing_po = failure
            result.fail_cycle = fail_cycle
            result.failing_po = failing_po
            with timers.phase("localize"):
                session.reset()
                # walk over the full horizon, not just up to the failure:
                # a short pre-failure window can hide slow-diverging
                # signals and stall the walk one hop short of the bug
                loc = localize_divergence(
                    session,
                    golden_traces,
                    failing_po,
                    stim,
                    max_turns=max_turns,
                    # forced faults propagate along mapped LUT connectivity
                    frontier_fn=mapped_frontier_fn(session)
                    if scenario.kind == "stuck_at"
                    else None,
                )
            result.suspect = loc.suspect
            result.region_size = len(loc.region)
            result.turns = loc.turns
            result.signals_checked = loc.signals_checked
            hit = result.truth == loc.suspect or result.truth in loc.region
            result.status = "localized" if hit else "missed"

        result.modeled_overhead_s = session.total_modeled_overhead_s()
        result.frames_touched = sum(t.frames_touched for t in session.turns)
    except Exception as exc:  # noqa: BLE001 — campaign must survive any scenario
        result.status = "error"
        result.error = f"{type(exc).__name__}: {exc}"

    result.setup_s = timers.totals.get("setup", 0.0)
    result.golden_s = timers.totals.get("golden", 0.0)
    result.detect_s = timers.totals.get("detect", 0.0)
    result.localize_s = timers.totals.get("localize", 0.0)
    result.online_s = timers.total()
    return result


def _first_divergence(
    observed: list[dict[str, int]],
    golden_traces: dict[str, "object"],
) -> tuple[int, str] | None:
    """First (cycle, po) where the emulated outputs leave the golden trace."""
    for cyc, row in enumerate(observed):
        for po, bit in row.items():
            exp = golden_traces.get(po)
            if exp is not None and cyc < len(exp) and int(exp[cyc]) != bit:
                return cyc, po
    return None


def _lane_slice(packed: dict[str, np.ndarray], lane: int) -> dict[str, np.ndarray]:
    """One lane's ``uint8`` view of lane-packed golden traces."""
    word, bit = lane >> 6, np.uint64(lane & 63)
    one = np.uint64(1)
    return {
        n: ((arr[:, word] >> bit) & one).astype(np.uint8)
        for n, arr in packed.items()
    }


def run_scenario_batch(
    scenarios: "list[DebugScenario]",
    offline: OfflineStage,
    *,
    max_turns: int = 48,
    interpreted: bool = False,
    store=None,
    backend: str | None = None,
) -> list[ScenarioResult]:
    """Run many scenarios' online loops as lanes of one packed engine.

    Every scenario must share ``offline`` (the orchestrator groups by
    offline cache key) and the same horizon — lanes advance in lockstep,
    so one replay length must serve the whole batch.  Batches wider than
    64 simply span multiple packed words (lane *k* = word ``k // 64``,
    bit ``k % 64``).  The phases mirror :func:`run_scenario`, vectorized
    across lanes:

    1. *setup* — one :class:`~repro.engine.LaneEngine`; each ``stuck_at``
       scenario's fault is armed on its lane only (``lane_mask``);
    2. *golden* — **one** packed reference pass over the shared golden
       design, every lane's stimulus in its bit of the packed words;
    3. *detect* — one packed emulation compared cycle by cycle against
       the packed golden PO words, with a per-lane early exit: the run
       stops the moment every live lane has diverged (lanes that never
       diverge keep it going to the full horizon, so ``undetected``
       verdicts are unchanged);
    4. *localize* — a batched frontier walk: each detected lane runs its
       own :func:`~repro.campaign.localize.divergence_walk` generator,
       and every observe+replay turn serves all still-active lanes at
       once (each lane observing its *own* frontier batch via per-lane
       select parameters); lanes retire as their walks converge.

    Per-scenario timing fields report the batch phase time divided by the
    batch size — the amortized cost actually paid per scenario, keeping
    campaign-level ``online_total_s`` equal to wall clock spent.  The
    deterministic outcome fields are byte-identical to the serial path's.
    ``interpreted`` runs the whole batch on the reference interpreter
    (benchmark baseline); ``store`` persists compiled programs;
    ``backend`` selects the compiled kernel implementation
    (:func:`repro.netlist.compiled.resolve_backend` — ``None`` auto-picks
    numpy for wide batches when it is available).  Never
    raises: per-lane failures degrade to ``status="error"`` results for
    their lane only.
    """
    timers = PhaseTimer()
    n = len(scenarios)
    results = [
        ScenarioResult(
            scenario=sc.name,
            design=sc.spec.name,
            kind=sc.kind,
            status="error",
            truth=sc.fault_signal or "",
            lane=lane,
            lane_batch=n,
        )
        for lane, sc in enumerate(scenarios)
    ]
    if not scenarios:
        return results
    horizon = scenarios[0].horizon
    live: list[int] = []

    try:
        goldens = [sc.golden_network() for sc in scenarios]
        for lane, sc in enumerate(scenarios):
            if sc.kind == "mutation":
                bug = sc.reproduce_bug(goldens[lane].copy())
                results[lane].truth = bug.node_name
            if sc.horizon != horizon:
                raise ValueError("batched scenarios must share one horizon")

        with timers.phase("setup"):
            engine = LaneEngine(
                offline,
                n_lanes=n,
                trace_depth=max(horizon, offline.config.trace_depth),
                interpreted=interpreted,
                program_store=store,
                backend=backend,
            )
            stims = [
                stimulus_script(goldens[lane], horizon, sc.stimulus_seed)
                for lane, sc in enumerate(scenarios)
            ]
            for lane, sc in enumerate(scenarios):
                engine.bind_stimulus(lane, stims[lane])
                try:
                    if sc.kind == "stuck_at":
                        assert sc.fault_signal is not None
                        engine.force(
                            sc.fault_signal,
                            sc.fault_value,
                            lane=lane,
                            first_cycle=sc.fault_from_cycle,
                        )
                except Exception as exc:  # noqa: BLE001 — isolate the lane
                    results[lane].error = f"{type(exc).__name__}: {exc}"
                    continue
                live.append(lane)

        design = engine.design
        tap_names = [design.network.node_name(t) for t in design.taps]
        trace_names = tap_names + engine.user_po_names

        with timers.phase("golden"):
            # a golden design is a pure function of (spec, design_seed):
            # lanes sharing both share one packed reference pass — the
            # common all-stuck-at batch pays for exactly one
            packed_golden: list[dict[str, np.ndarray] | None] = [None] * n
            by_golden: dict[tuple, list[int]] = {}
            for lane in live:
                sc = scenarios[lane]
                by_golden.setdefault((sc.spec, sc.design_seed), []).append(lane)
            for lanes in by_golden.values():
                packed = packed_signal_traces(
                    goldens[lanes[0]],
                    [stims[l] for l in lanes],
                    trace_names,
                    interpreted=interpreted,
                )
                for pos, l in enumerate(lanes):
                    packed_golden[l] = _lane_slice(packed, pos)

        with timers.phase("detect"):
            po_names = engine.user_po_names
            # word-packed golden PO values per (cycle, po), built from the
            # per-lane slices so lanes from different golden groups land
            # on their own bits; po_lane_masks[j] marks the lanes whose
            # golden model drives that PO at all (absent ⇒ cannot diverge,
            # the same skip the serial scan applies via golden.get())
            n_pos = len(po_names)
            golden_words = [[0] * n_pos for _ in range(horizon)]
            po_lane_masks = [0] * n_pos
            for j, po in enumerate(po_names):
                for lane in live:
                    exp = packed_golden[lane].get(po)
                    if exp is None:
                        continue
                    po_lane_masks[j] |= 1 << lane
                    lane_bit = 1 << lane
                    for c in np.flatnonzero(exp[:horizon]):
                        golden_words[int(c)][j] |= lane_bit

            undiverged = 0
            for lane in live:
                undiverged |= 1 << lane
            first_div: dict[int, tuple[int, int]] = {}

            def _all_diverged(c: int, row_ints: "list[int]") -> bool:
                # scanning POs in order and retiring a lane at its first
                # hit reproduces the serial scan's (cycle, po) tie-break
                nonlocal undiverged
                gw = golden_words[c]
                for j, got in enumerate(row_ints):
                    d = (got ^ gw[j]) & po_lane_masks[j] & undiverged
                    while d:
                        low = d & -d
                        first_div[low.bit_length() - 1] = (c, j)
                        undiverged &= ~low
                        d ^= low
                return undiverged == 0

            engine.run_outputs(horizon, lanes=live, stop=_all_diverged)
            detected: list[int] = []
            for lane in live:
                hit = first_div.get(lane)
                if hit is None:
                    results[lane].status = "undetected"
                else:
                    cyc, j = hit
                    results[lane].fail_cycle = cyc
                    results[lane].failing_po = po_names[j]
                    detected.append(lane)

        with timers.phase("localize"):
            engine.reset()
            walks = {}
            mapped_frontier = mapped_frontier_fn(engine)
            for lane in detected:
                walks[lane] = divergence_walk(
                    design,
                    packed_golden[lane],
                    results[lane].failing_po,
                    horizon,
                    max_turns=max_turns,
                    # forced faults propagate along mapped LUT connectivity
                    frontier_fn=mapped_frontier
                    if scenarios[lane].kind == "stuck_at"
                    else None,
                )

            def finish(lane: int, loc) -> None:
                r = results[lane]
                r.suspect = loc.suspect
                r.region_size = len(loc.region)
                r.turns = loc.turns
                r.signals_checked = loc.signals_checked
                hit = r.truth == loc.suspect or r.truth in loc.region
                r.status = "localized" if hit else "missed"

            pending: dict[int, list[str]] = {}
            for lane in detected:
                try:
                    pending[lane] = walks[lane].send(None)
                except StopIteration as stop:
                    finish(lane, stop.value)
            while pending:
                for lane, batch in pending.items():
                    engine.observe(batch, lane=lane)
                engine.reset()
                # charge the replay's cycles only to the lanes that took a
                # turn — retired lanes' accounting matches a solo session's
                engine.run(horizon, lanes=list(pending))
                advanced: dict[int, list[str]] = {}
                for lane in pending:
                    waves = engine.waveforms(lane)
                    try:
                        advanced[lane] = walks[lane].send(waves)
                    except StopIteration as stop:
                        finish(lane, stop.value)
                pending = advanced

        for lane in live:
            results[lane].modeled_overhead_s = engine.total_modeled_overhead_s(
                lane
            )
            results[lane].frames_touched = sum(
                t.frames_touched for t in engine.turns[lane]
            )
    except Exception as exc:  # noqa: BLE001 — campaign must survive any batch
        for lane in range(n):
            if results[lane].status == "error" and not results[lane].error:
                results[lane].error = f"{type(exc).__name__}: {exc}"

    share = 1.0 / max(1, n)
    for r in results:
        r.setup_s = timers.totals.get("setup", 0.0) * share
        r.golden_s = timers.totals.get("golden", 0.0) * share
        r.detect_s = timers.totals.get("detect", 0.0) * share
        r.localize_s = timers.totals.get("localize", 0.0) * share
        r.online_s = timers.total() * share
    return results
