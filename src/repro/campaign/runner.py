"""Per-scenario execution: one debug session, detection, localization.

:func:`run_scenario` is the unit of work the campaign orchestrator
dispatches (serially or to a worker pool).  It is a pure function of
``(scenario, offline artifact)`` — stimulus, golden model and bug
reproduction all derive deterministically from the scenario — which is
what guarantees byte-identical outcomes between serial and parallel
campaigns.
"""

from __future__ import annotations

from repro.campaign.localize import (
    golden_signal_traces,
    localize_divergence,
    mapped_frontier_fn,
)
from repro.campaign.results import ScenarioResult
from repro.core.debug import DebugSession
from repro.core.flow import OfflineStage
from repro.util.timing import PhaseTimer
from repro.workloads.scenarios import DebugScenario, stimulus_script

__all__ = ["run_scenario"]


def run_scenario(
    scenario: DebugScenario,
    offline: OfflineStage,
    *,
    max_turns: int = 48,
) -> ScenarioResult:
    """Run one scenario's online debug loop against its offline artifact.

    Phases (timed individually through :class:`PhaseTimer`):

    1. *setup* — build the :class:`DebugSession`; for ``stuck_at``
       scenarios, arm the emulation-level fault;
    2. *golden* — one reference simulation pass recording every observable
       tap and every primary output;
    3. *detect* — emulate the (faulty) mapped design watching its primary
       outputs until the first cycle diverging from golden; no divergence
       within the horizon ⇒ ``undetected``;
    4. *localize* — the frontier walk of
       :func:`~repro.campaign.localize.localize_divergence`.

    Never raises: failures are captured as ``status="error"`` results so a
    single bad scenario cannot take down a campaign.
    """
    timers = PhaseTimer()
    result = ScenarioResult(
        scenario=scenario.name,
        design=scenario.spec.name,
        kind=scenario.kind,
        status="error",
        truth=scenario.fault_signal or "",
    )
    try:
        golden = scenario.golden_network()
        if scenario.kind == "mutation":
            # reproduce the recorded bug (on a scratch copy) for its
            # ground-truth site
            bug = scenario.reproduce_bug(golden.copy())
            result.truth = bug.node_name

        with timers.phase("setup"):
            # trace depth must cover the horizon, or the ring buffer wraps
            # and waveform comparisons would misalign against golden
            session = DebugSession(
                offline,
                trace_depth=max(
                    scenario.horizon, offline.config.trace_depth
                ),
            )
            if scenario.kind == "stuck_at":
                assert scenario.fault_signal is not None
                session.force(
                    scenario.fault_signal,
                    scenario.fault_value,
                    first_cycle=scenario.fault_from_cycle,
                )

        stim = stimulus_script(golden, scenario.horizon, scenario.stimulus_seed)
        design = session.design
        tap_names = [design.network.node_name(t) for t in design.taps]

        with timers.phase("golden"):
            golden_traces = golden_signal_traces(
                golden, stim, tap_names + session.user_po_names
            )

        with timers.phase("detect"):
            observed = session.output_trace(
                scenario.horizon, stimulus=lambda c: stim[c]
            )
            failure = _first_divergence(observed, golden_traces)

        if failure is None:
            result.status = "undetected"
        else:
            fail_cycle, failing_po = failure
            result.fail_cycle = fail_cycle
            result.failing_po = failing_po
            with timers.phase("localize"):
                session.reset()
                # walk over the full horizon, not just up to the failure:
                # a short pre-failure window can hide slow-diverging
                # signals and stall the walk one hop short of the bug
                loc = localize_divergence(
                    session,
                    golden_traces,
                    failing_po,
                    stim,
                    max_turns=max_turns,
                    # forced faults propagate along mapped LUT connectivity
                    frontier_fn=mapped_frontier_fn(session)
                    if scenario.kind == "stuck_at"
                    else None,
                )
            result.suspect = loc.suspect
            result.region_size = len(loc.region)
            result.turns = loc.turns
            result.signals_checked = loc.signals_checked
            hit = result.truth == loc.suspect or result.truth in loc.region
            result.status = "localized" if hit else "missed"

        result.modeled_overhead_s = session.total_modeled_overhead_s()
        result.frames_touched = sum(t.frames_touched for t in session.turns)
    except Exception as exc:  # noqa: BLE001 — campaign must survive any scenario
        result.status = "error"
        result.error = f"{type(exc).__name__}: {exc}"

    result.setup_s = timers.totals.get("setup", 0.0)
    result.golden_s = timers.totals.get("golden", 0.0)
    result.detect_s = timers.totals.get("detect", 0.0)
    result.localize_s = timers.totals.get("localize", 0.0)
    result.online_s = timers.total()
    return result


def _first_divergence(
    observed: list[dict[str, int]],
    golden_traces: dict[str, "object"],
) -> tuple[int, str] | None:
    """First (cycle, po) where the emulated outputs leave the golden trace."""
    for cyc, row in enumerate(observed):
        for po, bit in row.items():
            exp = golden_traces.get(po)
            if exp is not None and cyc < len(exp) and int(exp[cyc]) != bit:
                return cyc, po
    return None
