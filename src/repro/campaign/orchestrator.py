"""Batch campaign orchestration: one dataflow scheduler, two phases overlapped.

:func:`run_campaign` drives a whole batch of (design, bug-scenario) pairs
through the two-stage debug flow:

* **Offline work**: every scenario's design-under-debug is materialized
  and resolved — against a whole-artifact
  :class:`~repro.campaign.cache.OfflineCache`, a stage-granular
  :class:`~repro.pipeline.ArtifactStore` (each compile stage reused
  independently under its content-addressed key), or cold.  Structurally
  identical designs share artifacts, so a campaign of N stuck-at
  scenarios on one design pays the generic stage (and, with
  ``with_physical``, the full pack/place/route back-end) exactly once.
* **Online work**: scenarios are grouped by **lane batch** — the finest
  key that lets them share one packed emulation: the offline artifact's
  identity plus the golden design and the horizon.  Each batch of up to
  ``lane_width`` scenarios runs as the lanes of a single
  :class:`~repro.engine.LaneEngine`
  (:func:`~repro.campaign.runner.run_scenario_batch`); ``lane_width=1``
  falls back to the historical per-scenario path.

Both phases are expressed as tasks on one
:class:`~repro.pipeline.scheduler.DataflowScheduler` sharing one worker
pool.  Under the default ``schedule="dataflow"`` there is **no phase
barrier**: a design's lane batches launch the moment its last offline
build lands, while other designs are still packing/placing/routing — and
with ``offline_workers > 1`` a single design's independent stages
(``rr-graph`` vs ``place``) overlap too, via the fused segment tasks of
:func:`~repro.pipeline.scheduler.submit_compile`.  ``schedule="barrier"``
keeps the historical offline-then-online ordering (the baseline
``benchmarks/bench_overlap.py`` measures against).  The serial
configuration (``workers=1``, ``offline_workers=1``) is the same
scheduler with nothing pooled — the event loop degenerates to the
historical serial loops.

Store semantics are identical across schedules and worker counts: the
parent process performs every cache probe and store put, under the same
content-addressed keys and in the same per-design order as a serial run,
so outcomes are byte-identical and hit/miss/invalidation statistics
match exactly.  Process pools degrade gracefully: a pool that cannot
start (sandboxes, restricted containers) falls back to in-parent
execution, reported in the notes.

Results aggregate into a :class:`~repro.campaign.results.CampaignReport`,
whose ``workers`` field reports the *effective* parallelism (1 when the
pool fell back to serial), whose ``lane_batches`` field records per-batch
lane occupancy, and which now carries the critical-path breakdown —
``sched_wall_s``, ``overlap_ratio`` and per-stage concurrency.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.campaign.cache import ArtifactStore, OfflineCache, resolve_offline
from repro.campaign.results import CampaignReport, ScenarioResult
from repro.campaign.runner import run_scenario, run_scenario_batch
from repro.core.flow import DebugFlowConfig, OfflineStage, offline_cache_key
from repro.pipeline.scheduler import (
    DataflowScheduler,
    ScheduledTask,
    submit_compile,
)
from repro.workloads.scenarios import DebugScenario

__all__ = ["CampaignConfig", "prebuild_offline", "run_campaign"]

CacheLike = OfflineCache | ArtifactStore | None


@dataclass
class CampaignConfig:
    """Knobs of a campaign run."""

    flow: DebugFlowConfig = field(default_factory=DebugFlowConfig)
    workers: int = 1
    """Online-phase parallelism; ``<= 1`` runs scenarios serially."""
    offline_workers: int = 1
    """Offline-phase parallelism: distinct cold designs (unique offline
    cache keys) build concurrently in a process pool, each design's
    independent stages running as separate segment tasks.  ``<= 1`` keeps
    the historical serial build loop.  Artifacts land under the same
    content-addressed keys either way, so outcomes and warm restarts are
    byte-identical to serial builds."""
    with_physical: bool = False
    """Include the physical back-end (pack/place/route, bitstream) in the
    offline artifact — the paper's full §IV-A stage.  Currently limited to
    combinational designs (the TPaR back-end does not yet route latches)."""
    intra_design_workers: int = 0
    """Intra-design parallelism.  ``0`` (default) keeps the historical
    serial algorithms.  ``>= 1`` turns on the intra-parallel algorithms:
    level-wave priority-cut mapping in the generic prefix (initial-map
    and tcon-map, byte-identical to serial — see
    :mod:`repro.mapping.parallel`) and, with ``with_physical``, the
    region-parallel annealer (cache-keyed as ``place_regions=8``) plus
    the round-parallel router (byte-identical to serial).  All waves fan
    onto the campaign's one shared worker pool with this many slots;
    ``1`` runs the same algorithms in-process.  Campaign outcomes are
    therefore byte-identical across any ``>= 1`` setting — only the wall
    clock changes."""
    max_turns: int = 48
    """Per-scenario budget of debugging turns for the localization walk."""
    lane_width: int = 64
    """Scenarios packed per emulation batch (≥ 1; widths beyond 64 span
    multiple ``uint64`` words — lane *k* is word ``k // 64``, bit
    ``k % 64``).  Scenarios sharing an offline artifact and a horizon are
    batched into lanes of one packed :class:`~repro.engine.LaneEngine`;
    ``1`` runs the historical one-session-per-scenario path.  Outcomes
    are byte-identical at every width — only the throughput changes."""
    interpreted: bool = False
    """Run the online phase on the reference per-gate interpreter instead
    of the compiled simulation kernels — the escape hatch, and the
    baseline ``benchmarks/bench_kernels.py`` measures the compiled path
    against.  Outcomes are bit-identical either way."""
    backend: str | None = None
    """Compiled-kernel backend for the online phase: ``"python"`` (big-int
    kernels), ``"numpy"`` (vectorized whole-array kernels, the wide-lane
    fast path) or ``None``/``"auto"`` to pick by lane width — see
    :func:`repro.netlist.compiled.resolve_backend`.  Outcomes are
    byte-identical across backends (``tests/test_backend_parity.py``);
    only throughput changes.  Ignored when ``interpreted`` is set."""
    schedule: str = "dataflow"
    """Execution discipline: ``"dataflow"`` (default) overlaps offline
    builds with online lane batches across designs on one shared worker
    pool — a design's lane batches launch as soon as its artifact lands;
    ``"barrier"`` keeps the historical offline-then-online phase
    ordering.  Outcomes and cache statistics are identical either way —
    only the wall-clock changes."""
    task_timeout_s: float | None = None
    """Wall-clock budget per pooled task attempt (offline segment or
    online lane batch).  ``None`` (default) never times out.  A timed-out
    task is retried up to ``task_retries`` times with deterministic
    backoff, then reported as an error result — outcomes depend only on
    whether the work eventually succeeded, never on the elapsed time."""
    task_retries: int = 1
    """Extra attempts for a pooled task that timed out or raised.  Stage
    bodies marshal their own exceptions into error *results*, so
    deterministic failures do not burn retries — only supervision-level
    faults (hangs, worker loss, marshalling errors) do."""
    fail_fast: bool = False
    """Abort the whole campaign at the first failing design: pending
    scenarios complete as ``status="error"`` placeholders (not journaled,
    so a later ``resume`` recomputes them).  Default ``False`` ("keep
    going"): a failure is isolated to its own design's scenarios."""
    campaign_id: str | None = None
    """Enable the checkpoint journal under this identity (requires a
    cache with a persistent ``cache_dir``).  Every finished scenario is
    appended to ``<cache_dir>/journal/<campaign_id>.jsonl``; see
    ``resume``."""
    resume: bool = False
    """Replay finished scenarios from ``campaign_id``'s journal and run
    only the remainder.  The resumed campaign's deterministic outcomes
    are byte-identical to an uninterrupted run's; a journal written by a
    different scenario list or flow config is refused."""
    journal_fsync: bool = False
    """fsync the journal after every appended line (crash-consistent even
    against power loss, at a per-scenario I/O cost)."""


#: One pool task: a stripped offline artifact, the scenarios of one lane
#: batch (or serial chunk), the turn budget, the lane width, the
#: interpreted-simulator flag and the kernel backend.  Each distinct
#: artifact is pickled once per payload instead of once per scenario.
GroupPayload = tuple[
    OfflineStage, "list[tuple[int, DebugScenario]]", int, int, bool,
    "str | None",
]


def _online_group_worker(
    payload: GroupPayload, store=None
) -> list[tuple[int, ScenarioResult]]:
    offline, items, max_turns, lane_width, interpreted, backend = payload
    if lane_width > 1:
        batch_results = run_scenario_batch(
            [sc for _idx, sc in items],
            offline,
            max_turns=max_turns,
            interpreted=interpreted,
            store=store,
            backend=backend,
        )
        return [
            (idx, result)
            for (idx, _sc), result in zip(items, batch_results)
        ]
    return [
        (
            idx,
            run_scenario(
                sc,
                offline,
                max_turns=max_turns,
                interpreted=interpreted,
                store=store,
                backend=backend,
            ),
        )
        for idx, sc in items
    ]


def _lane_batch_key(sc: DebugScenario, stage: OfflineStage) -> tuple:
    """The finest grouping under which scenarios can share lanes: one
    offline artifact, one golden design, one replay horizon."""
    return (
        stage.cache_key or id(stage),
        sc.spec,
        sc.design_seed,
        sc.horizon,
    )


def _group_payloads(
    resolved: "list[tuple[int, DebugScenario, OfflineStage]]",
    max_turns: int,
    workers: int,
    lane_width: int,
    interpreted: bool = False,
    backend: "str | None" = None,
) -> list[GroupPayload]:
    """Group scenarios into lane batches (or serial chunks) per payload.

    With ``lane_width > 1``, scenarios are grouped by
    :func:`_lane_batch_key` and split into batches of at most
    ``lane_width`` lanes; each batch is one payload (one engine, one
    worker task).  With ``lane_width == 1`` the historical scheme
    applies: scenarios sharing a cache key are split into at most
    ``workers`` chunks so pool parallelism is preserved.  Either way the
    artifact is stripped of its physical stage **once** per group — the
    online loop runs against the virtual PConf.
    """
    groups: dict[object, list[tuple[int, DebugScenario, OfflineStage]]] = {}
    for idx, sc, stage in resolved:
        key = (
            _lane_batch_key(sc, stage)
            if lane_width > 1
            else (stage.cache_key or id(stage))
        )
        groups.setdefault(key, []).append((idx, sc, stage))
    payloads: list[GroupPayload] = []
    for items in groups.values():
        # the online loop runs against the virtual PConf; don't ship the
        # physical stage (MBs of placement/routing state) to workers
        stripped = replace(items[0][2], physical=None)
        if lane_width > 1:
            for base in range(0, len(items), lane_width):
                chunk = items[base : base + lane_width]
                payloads.append(
                    (
                        stripped,
                        [(idx, sc) for idx, sc, _ in chunk],
                        max_turns,
                        lane_width,
                        interpreted,
                        backend,
                    )
                )
        else:
            n_chunks = max(1, min(workers, len(items)))
            for c in range(n_chunks):
                chunk = items[c::n_chunks]
                payloads.append(
                    (
                        stripped,
                        [(idx, sc) for idx, sc, _ in chunk],
                        max_turns,
                        1,
                        interpreted,
                        backend,
                    )
                )
    return payloads


def _make_pool(n: int):
    # resolved through the module global so tests that monkeypatch
    # ProcessPoolExecutor on this module intercept pool creation
    return ProcessPoolExecutor(max_workers=n)


def _offline_group_key(
    net,
    flow: DebugFlowConfig,
    with_physical: bool,
    extras: tuple = (),
) -> str:
    """The identity under which scenarios share one offline build.

    ``extras`` carries additional algorithm discriminators — e.g.
    ``"place_regions=8"`` when the intra-parallel back-end is selected,
    whose placement is a different (keyed) trajectory from serial.
    """
    extra = (("physical",) if with_physical else ()) + extras
    return offline_cache_key(net, flow, extra=extra)


def _offline_error(sc: DebugScenario, message: str) -> ScenarioResult:
    return ScenarioResult(
        scenario=sc.name,
        design=sc.spec.name,
        kind=sc.kind,
        status="error",
        offline_ok=False,
        error=f"offline stage failed: {message}",
    )


def _accumulate_stage_s(into: dict[str, float], totals: dict) -> None:
    for name, secs in totals.items():
        into[name] = into.get(name, 0.0) + float(secs)


def _submit_design_build(
    sched: DataflowScheduler,
    net,
    flow: DebugFlowConfig,
    with_physical: bool,
    cache: CacheLike,
    gkey: str,
    *,
    pooled: bool,
    params: "dict | None" = None,
    intra=None,
    timeout_s: "float | None" = None,
    max_retries: int = 0,
    on_complete,
) -> list[ScheduledTask]:
    """Register one design's offline build as dataflow tasks.

    Probes the cache **now**, in the parent, with single-read lookups
    (:meth:`~repro.pipeline.ArtifactStore.get_if_present` behind
    ``store.get`` / ``OfflineCache.get``) — counted exactly like a serial
    resolution, with no warmth pre-probe doubling the disk reads.  Warm
    designs fire ``on_complete(stage, True, {}, None)`` synchronously and
    create no task; cold designs become fused segment tasks
    (:func:`~repro.pipeline.scheduler.submit_compile`) whose completion
    assembles the artifact, lands it in the cache parent-side, and fires
    ``on_complete(stage, False, stage_seconds, None)``.  Failures fire
    ``on_complete(None, False, {}, message)``.  Returns the created
    tasks (empty when the design resolved warm or failed to plan).
    """
    from repro.pipeline import (
        DEBUG_FLOW_GRAPH,
        GENERIC_STAGES,
        PHYSICAL_STAGES,
        assemble_offline,
    )
    from repro.pipeline.graph import source_key

    stages = (
        GENERIC_STAGES + PHYSICAL_STAGES if with_physical else GENERIC_STAGES
    )

    def fail(exc: BaseException) -> None:
        on_complete(None, False, {}, f"{type(exc).__name__}: {exc}")

    if isinstance(cache, ArtifactStore):
        # stage-granular: the probe inside submit_compile is the lookup
        try:
            plan = DEBUG_FLOW_GRAPH.plan(net, flow, params=params, stages=stages)
        except Exception as exc:  # noqa: BLE001 — one bad design ≠ dead campaign
            fail(exc)
            return []

        def complete(result, err):
            if err is not None:
                on_complete(None, False, {}, err)
                return
            try:
                stage = assemble_offline(result)
            except Exception as exc:  # noqa: BLE001
                fail(exc)
                return
            on_complete(
                stage, result.full_hit, dict(result.timers.totals), None
            )

        return submit_compile(
            sched,
            DEBUG_FLOW_GRAPH,
            net,
            plan,
            store=cache,
            pooled=pooled,
            label=gkey[:12],
            intra=intra,
            timeout_s=timeout_s,
            max_retries=max_retries,
            on_complete=complete,
        )

    if isinstance(cache, OfflineCache):
        # whole-artifact: one counted lookup, then (on miss) a cold build
        try:
            found = cache.get(gkey, group=source_key(net))
        except Exception as exc:  # noqa: BLE001
            fail(exc)
            return []
        if found is not None:
            on_complete(found, True, {}, None)
            return []

    try:
        plan = DEBUG_FLOW_GRAPH.plan(net, flow, params=params, stages=stages)
    except Exception as exc:  # noqa: BLE001
        fail(exc)
        return []

    def complete_cold(result, err):
        if err is not None:
            on_complete(None, False, {}, err)
            return
        try:
            stage = assemble_offline(result)
            if isinstance(cache, OfflineCache):
                stage = cache.put(gkey, stage)
        except Exception as exc:  # noqa: BLE001
            fail(exc)
            return
        on_complete(stage, False, dict(result.timers.totals), None)

    return submit_compile(
        sched,
        DEBUG_FLOW_GRAPH,
        net,
        plan,
        store=None,
        pooled=pooled,
        label=gkey[:12],
        intra=intra,
        timeout_s=timeout_s,
        max_retries=max_retries,
        on_complete=complete_cold,
    )


def prebuild_offline(
    nets: "Sequence[object]",
    *,
    flow: DebugFlowConfig | None = None,
    cache: CacheLike = None,
    with_physical: bool = False,
    workers: int = 1,
    intra_workers: int = 0,
    notes: "list[str] | None" = None,
) -> "dict[str, OfflineStage]":
    """Warm the cache with offline artifacts for ``nets``, concurrently.

    The same scheduler path the campaign's offline work rides, exposed
    for callers that need artifacts *before* a campaign exists — e.g.
    stuck-at scenario screening, which needs each design's tap directory
    to pick fault sites.  Designs are deduped by offline cache key; warm
    keys resolve in-process with one counted lookup, cold keys build as
    segment tasks on a process pool of up to ``workers`` (in-process
    when ``workers <= 1`` or the pool is unavailable), and every
    artifact lands in ``cache`` under the same content-addressed keys a
    serial :func:`~repro.campaign.cache.resolve_offline` call would use —
    later resolutions of the same design are pure hits.

    Returns ``{offline cache key: artifact}`` for every design that
    built (or resolved warm) — the map the CLI's screening step consumes
    directly instead of re-probing the cache.  Failed designs are simply
    absent; callers decide whether to retry without the physical stage
    or surface the error.  ``notes``, when given, collects
    human-readable fallback messages (pool unavailable etc.).

    ``intra_workers >= 1`` selects the intra-parallel algorithms
    (level-wave mapping always; region-parallel placement and
    round-parallel routing with ``with_physical``) — see
    :attr:`CampaignConfig.intra_design_workers` for the semantics.
    """
    flow = flow or DebugFlowConfig()
    if notes is None:
        notes = []
    intra_enabled = intra_workers >= 1
    # place_regions=8 (a keyed, different algorithm) only applies to the
    # physical back-end; generic-prefix waves need no key discriminator
    phys_intra = intra_enabled and with_physical
    extras = ("place_regions=8",) if phys_intra else ()
    params = {"place_regions": 8} if phys_intra else None
    keyed: "dict[str, object]" = {}
    for net in nets:
        keyed.setdefault(
            _offline_group_key(net, flow, with_physical, extras), net
        )
    out: "dict[str, OfflineStage]" = {}
    sched = DataflowScheduler(
        pool_size=max(
            min(max(1, workers), max(1, len(keyed))),
            intra_workers if intra_enabled else 1,
        ),
        executor_factory=_make_pool,
    )
    intra = None
    if intra_enabled:
        from repro.util.intra import IntraPool

        intra = IntraPool(intra_workers, acquire=sched._acquire_pool)
    try:
        for key, net in keyed.items():

            def done(stage, _hit, _totals, err, key=key):
                if err is None and stage is not None:
                    out[key] = stage

            _submit_design_build(
                sched,
                net,
                flow,
                with_physical,
                cache,
                key,
                pooled=workers > 1,
                params=params,
                intra=intra,
                on_complete=done,
            )
        sched.run()
    finally:
        sched.shutdown()
    if sched.pool_broken:
        notes.append(
            "offline prebuild pool unavailable "
            f"({type(sched.pool_error).__name__}); built cold design(s) "
            "in-process"
        )
    if intra is not None and intra.broken:
        notes.append(
            "intra-design pool unavailable; mapping/place/route waves ran "
            "in-process"
        )
    return out


def run_campaign(
    scenarios: Sequence[DebugScenario],
    *,
    config: CampaignConfig | None = None,
    cache: CacheLike = None,
) -> CampaignReport:
    """Run a debug campaign over ``scenarios``.

    Parameters
    ----------
    scenarios:
        The (design, bug) pairs to localize — see
        :mod:`repro.workloads.scenarios` for generators.
    config:
        Orchestration knobs; defaults to serial execution, generic-only
        offline artifacts, dataflow scheduling and a 48-turn
        localization budget.
    cache:
        Offline-artifact cache: an :class:`~repro.pipeline.ArtifactStore`
        for stage-granular reuse, an
        :class:`~repro.campaign.cache.OfflineCache` for whole-artifact
        reuse, or ``None`` to run *cold* — every scenario pays its own
        offline stage, the conventional-recompile baseline the caches'
        amortization is measured against
        (``benchmarks/bench_campaign.py``, ``bench_incremental.py``).

    Scenario outcomes are deterministic — the same scenarios and flow
    config produce the same statuses, suspects and turn counts whether
    the phases run serially, across a worker pool, overlapped under the
    dataflow schedule or behind the historical barrier.
    """
    config = config or CampaignConfig()
    notes: list[str] = []
    t_wall = time.perf_counter()
    workers = max(1, config.workers)
    lane_width = max(1, config.lane_width)
    barrier = config.schedule == "barrier"
    intra_enabled = config.intra_design_workers >= 1
    # the region-parallel annealer is a different (keyed) algorithm, so
    # intra-enabled *physical* builds live under their own group keys and
    # params; the generic prefix's level-wave mapping is byte-identical to
    # serial, so without the physical back-end nothing is keyed
    phys_intra = intra_enabled and config.with_physical
    extras = ("place_regions=8",) if phys_intra else ()
    build_params = {"place_regions": 8} if phys_intra else None
    # offline build unit: one per distinct design when pooled (builds
    # dedupe across duplicate scenarios), one per scenario when serial —
    # the historical granularities, now just two task layouts.  Intra-
    # parallel builds always take the dedup path: only the segment-task
    # layout can thread the intra pool into place/route stage bodies.
    dedup = config.offline_workers > 1 or intra_enabled

    # -- checkpoint journal ----------------------------------------------------
    journal = None
    resumed: dict[int, ScenarioResult] = {}
    if config.campaign_id:
        from repro.campaign.journal import (
            CampaignJournal,
            campaign_fingerprint,
            journal_path,
        )

        cache_dir = getattr(cache, "cache_dir", None)
        if cache_dir is None:
            if config.resume:
                raise ValueError(
                    "resume requires a persistent cache directory "
                    "(the journal lives under cache_dir/journal/)"
                )
            notes.append(
                "journal disabled: no persistent cache directory "
                f"(campaign id {config.campaign_id!r})"
            )
        else:
            fp = campaign_fingerprint(scenarios, config)
            jpath = journal_path(cache_dir, config.campaign_id)
            if config.resume:
                # the previous run may have died mid-put; readers never
                # touch .tmp files, so sweeping the leftovers is safe here
                # (no concurrent writer exists yet)
                store = cache if isinstance(cache, ArtifactStore) else cache.store
                store.sweep_stale_tmp()
                journal, done_records = CampaignJournal.resume(
                    jpath, fingerprint=fp, fsync=config.journal_fsync
                )
                resumed = {
                    idx: ScenarioResult(**rec)
                    for idx, rec in done_records.items()
                    if 0 <= idx < len(scenarios)
                }
                notes.append(
                    f"resumed {len(resumed)} of {len(scenarios)} "
                    f"scenario(s) from journal"
                )
            else:
                journal = CampaignJournal.start(
                    jpath,
                    campaign_id=config.campaign_id,
                    fingerprint=fp,
                    n_scenarios=len(scenarios),
                    fsync=config.journal_fsync,
                )

    offline_s: dict[int, float] = {}
    hits: dict[int, bool] = {}
    failed: dict[int, ScenarioResult] = {}
    offline_stage_s: dict[str, float] = {}
    resolved: list[tuple[int, DebugScenario, OfflineStage]] = []
    indexed: list[tuple[int, ScenarioResult]] = []
    payloads: list[GroupPayload] = []
    aborted: dict = {"err": None}

    def checkpoint(idx: int, result: ScenarioResult) -> None:
        """Journal a finished scenario the moment its outcome is final.

        Timing/hit fields are attached now (they are known by the time
        any outcome exists) so the journaled record is the full record a
        resumed campaign replays."""
        if journal is None:
            return
        result.offline_s = offline_s.get(idx, 0.0)
        result.offline_cache_hit = hits.get(idx, False)
        journal.append_scenario(idx, result.as_record())

    # -- registration: design identity per scenario ----------------------------
    t_offline = time.perf_counter()
    groups: dict[str, list[tuple[int, DebugScenario]]] = {}
    group_net: dict[str, object] = {}
    nets: dict[int, object] = {}
    lane_key_of: dict[int, object] = {}
    for idx, sc in enumerate(scenarios):
        if idx in resumed:
            continue
        t0 = time.perf_counter()
        try:
            net = sc.debug_network()
            gkey = _offline_group_key(
                net, config.flow, config.with_physical, extras
            )
        except Exception as exc:  # noqa: BLE001
            failed[idx] = _offline_error(sc, f"{type(exc).__name__}: {exc}")
            offline_s[idx] = time.perf_counter() - t0
            hits[idx] = False
            checkpoint(idx, failed[idx])
            if config.fail_fast and aborted["err"] is None:
                aborted["err"] = failed[idx].error
            continue
        offline_s[idx] = time.perf_counter() - t0
        groups.setdefault(gkey, []).append((idx, sc))
        group_net.setdefault(gkey, net)
        nets[idx] = net
        # within one campaign the flow config is fixed, so this key is
        # equivalent to _lane_batch_key over the resolved artifacts —
        # known *before* any artifact exists, which is what lets online
        # batches trigger the moment their builds land
        lane_key_of[idx] = (
            (gkey, sc.spec, sc.design_seed, sc.horizon)
            if lane_width > 1
            else gkey
        )

    # -- lane-group bookkeeping: when can each batch launch? -------------------
    lane_groups: dict[object, dict] = {}
    for idx in lane_key_of:
        lg = lane_groups.setdefault(
            lane_key_of[idx], {"pending": 0, "n": 0, "triples": []}
        )
        lg["n"] += 1
    if dedup:
        for gkey, items in groups.items():
            for lkey in dict.fromkeys(lane_key_of[idx] for idx, _sc in items):
                lane_groups[lkey]["pending"] += 1
    else:
        for idx in lane_key_of:
            lane_groups[lane_key_of[idx]]["pending"] += 1

    expected_payloads = 0
    for lg in lane_groups.values():
        if lane_width > 1:
            expected_payloads += (lg["n"] + lane_width - 1) // lane_width
        else:
            expected_payloads += max(1, min(workers, lg["n"]))
    # a pool only pays for itself when there is more than one payload to
    # spread: a single lane batch would ride one worker anyway, while the
    # parent still paid pool startup plus artifact pickling — the
    # "pooled slower than serial" regression BENCH_campaign.json recorded
    use_online_pool = workers > 1 and expected_payloads > 1
    if workers > 1 and expected_payloads == 1:
        notes.append(
            "worker pool skipped: 1 online payload (serial is cheaper than "
            f"pool startup; requested {workers} workers)"
        )

    sched = DataflowScheduler(executor_factory=_make_pool)
    intra = None
    if intra_enabled:
        from repro.util.intra import IntraPool

        intra = IntraPool(
            config.intra_design_workers, acquire=sched._acquire_pool
        )
    # compiled programs persist in the stage store when one is in play —
    # worker processes compile their own (the store isn't shipped), but
    # in-parent runs and warm restarts skip compilation entirely
    program_store = cache if isinstance(cache, ArtifactStore) else None

    def fail_fast_abort(err: str) -> None:
        if not config.fail_fast or aborted["err"] is not None:
            return
        aborted["err"] = err
        sched.abort()

    def online_done(out: "list[tuple[int, ScenarioResult]]") -> None:
        for idx, res in out:
            indexed.append((idx, res))
            checkpoint(idx, res)

    def online_failed(payload: GroupPayload, msg: str) -> None:
        # supervision gave up on this lane batch (timeout/retries
        # exhausted).  The error message is wall-clock-dependent, so the
        # results are NOT journaled — a resumed campaign re-runs them.
        for idx, sc in payload[1]:
            indexed.append(
                (
                    idx,
                    ScenarioResult(
                        scenario=sc.name,
                        design=sc.spec.name,
                        kind=sc.kind,
                        status="error",
                        error=f"online stage failed: {msg}",
                    ),
                )
            )
        fail_fast_abort(msg)

    def submit_online(payload: GroupPayload) -> None:
        if aborted["err"] is not None:
            return
        payloads.append(payload)
        sched.add(
            ScheduledTask(
                kind="online",
                label=f"lanes[{len(payload[1])}]",
                worker_fn=_online_group_worker,
                payload=payload,
                inline_fn=lambda p=payload: _online_group_worker(
                    p, store=program_store
                ),
                pooled=use_online_pool,
                on_done=lambda _task, out: online_done(out),
                on_fail=lambda _task, msg, p=payload: online_failed(p, msg),
                timeout_s=config.task_timeout_s,
                max_retries=max(0, config.task_retries),
                key=f"online:{payload[1][0][0]}",
            )
        )

    def lane_unit_done(lkey: object) -> None:
        lg = lane_groups[lkey]
        lg["pending"] -= 1
        if lg["pending"] > 0:
            return
        triples = sorted(lg["triples"], key=lambda t: t[0])
        resolved.extend(triples)
        if barrier or not triples:
            return
        for payload in _group_payloads(
            triples,
            config.max_turns,
            workers,
            lane_width,
            config.interpreted,
            config.backend,
        ):
            submit_online(payload)

    # -- offline tasks ---------------------------------------------------------
    n_cold = 0
    if dedup:

        def design_done(gkey, stage, hit, totals, err):
            items = groups[gkey]
            first_idx = items[0][0]
            if err is not None:
                for idx, sc in items:
                    failed[idx] = _offline_error(sc, err)
                    hits[idx] = False
                    checkpoint(idx, failed[idx])
                fail_fast_abort(err)
            else:
                _accumulate_stage_s(offline_stage_s, totals)
                offline_s[first_idx] += sum(totals.values())
                # duplicates of a built design ride the group's artifact:
                # a cache hit when a cache holds it, plain build sharing
                # when running cold (outcomes are unaffected, only the
                # redundant rebuilds go away)
                dup_hit = cache is not None
                for idx, sc in items:
                    hits[idx] = hit if idx == first_idx else dup_hit
                    lane_groups[lane_key_of[idx]]["triples"].append(
                        (idx, sc, stage)
                    )
            for lkey in dict.fromkeys(lane_key_of[idx] for idx, _sc in items):
                lane_unit_done(lkey)

        for gkey, items in groups.items():
            if aborted["err"] is not None:
                break
            first_idx = items[0][0]
            t0 = time.perf_counter()
            created = _submit_design_build(
                sched,
                group_net[gkey],
                config.flow,
                config.with_physical,
                cache,
                gkey,
                pooled=config.offline_workers > 1,
                params=build_params,
                intra=intra,
                timeout_s=config.task_timeout_s,
                max_retries=max(0, config.task_retries),
                on_complete=(
                    lambda stage, hit, totals, err, g=gkey: design_done(
                        g, stage, hit, totals, err
                    )
                ),
            )
            offline_s[first_idx] += time.perf_counter() - t0
            if created:
                n_cold += 1
    else:

        def submit_scenario_resolve(idx: int, sc: DebugScenario) -> None:
            def inline():
                t0 = time.perf_counter()
                try:
                    stage, hit = resolve_offline(
                        nets[idx],
                        config.flow,
                        cache=cache,
                        with_physical=config.with_physical,
                    )
                except Exception as exc:  # noqa: BLE001
                    return (
                        "err",
                        f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - t0,
                    )
                return ("ok", stage, hit, time.perf_counter() - t0)

            def done(_task, out):
                if out[0] == "err":
                    failed[idx] = _offline_error(sc, out[1])
                    offline_s[idx] += out[2]
                    hits[idx] = False
                    checkpoint(idx, failed[idx])
                    fail_fast_abort(out[1])
                else:
                    _tag, stage, hit, secs = out
                    offline_s[idx] += secs
                    hits[idx] = hit
                    if not hit:
                        _accumulate_stage_s(
                            offline_stage_s, stage.timers.totals
                        )
                    lane_groups[lane_key_of[idx]]["triples"].append(
                        (idx, sc, stage)
                    )
                lane_unit_done(lane_key_of[idx])

            sched.add(
                ScheduledTask(
                    kind="offline",
                    label=f"offline:{sc.name}",
                    inline_fn=inline,
                    on_done=done,
                )
            )

        for idx in sorted(nets):
            if aborted["err"] is not None:
                break
            submit_scenario_resolve(idx, scenarios[idx])

    t_probes_done = time.perf_counter()
    # one shared pool, sized for whichever phase needs more slots — the
    # pool is created lazily at the first pooled dispatch, so fully
    # inline configurations never pay process startup
    sched.pool_size = max(
        1,
        min(max(1, config.offline_workers), max(1, n_cold)) if dedup else 1,
        min(workers, expected_payloads) if use_online_pool else 1,
        # intra-parallel mapping/place/route waves ride the same pool;
        # size it for the widest wave only when there is cold build work
        config.intra_design_workers if intra_enabled and n_cold else 1,
    )

    # -- drain -----------------------------------------------------------------
    try:
        sched.run()
        if barrier:
            resolved.sort(key=lambda t: t[0])
            for payload in _group_payloads(
                resolved,
                config.max_turns,
                workers,
                lane_width,
                config.interpreted,
                config.backend,
            ):
                submit_online(payload)
            sched.run()
    finally:
        sched.shutdown()
        if journal is not None:
            journal.close()

    # -- fallback notes + effective parallelism --------------------------------
    if "offline" in sched.inline_fallbacks:
        notes.append(
            "offline build pool unavailable "
            f"({type(sched.pool_error).__name__}); built remaining cold "
            "design(s) in-process"
        )
    if intra is not None and intra.broken:
        notes.append(
            "intra-design pool unavailable; mapping/place/route waves ran "
            "in-process"
        )
    online_fell_back = "online" in sched.inline_fallbacks
    if online_fell_back:
        notes.append(
            f"worker pool unavailable ({type(sched.pool_error).__name__}); "
            f"fell back to serial execution (effective workers: 1, requested "
            f"{workers})"
        )
    effective_workers = (
        min(workers, len(payloads))
        if use_online_pool and payloads and not online_fell_back
        else 1
    )
    offline_workers_eff = (
        min(max(1, config.offline_workers), max(1, n_cold))
        if dedup and "offline" not in sched.inline_fallbacks
        else 1
    )

    # -- critical-path metrics -------------------------------------------------
    off_ends = [e for k, _s, e in sched.intervals if k == "offline"]
    offline_wall_s = max([t_probes_done, *off_ends]) - t_offline
    sched_wall_s = sched.sched_wall_s
    overlap = sched.overlap_s("offline", "online")
    overlap_ratio = overlap / sched_wall_s if sched_wall_s > 0 else 0.0
    stage_concurrency = sched.stage_concurrency()
    online_spans = [(s, e) for k, s, e in sched.intervals if k == "online"]
    if online_spans:
        busy = sum(e - s for s, e in online_spans)
        lo = min(s for s, _ in online_spans)
        hi = max(e for _, e in online_spans)
        stage_concurrency["online"] = (
            round(busy / (hi - lo), 3) if hi > lo else 1.0
        )

    if aborted["err"] is not None:
        notes.append(f"campaign aborted (fail-fast): {aborted['err']}")

    # re-interleave results — journal replays, offline-failure and
    # fail-fast placeholders — in scenario order
    by_idx = dict(indexed)
    results: list[ScenarioResult] = []
    for idx in range(len(scenarios)):
        if idx in failed:
            results.append(failed[idx])
        elif idx in resumed:
            results.append(resumed[idx])
        elif idx in by_idx:
            results.append(by_idx[idx])
        else:
            # cancelled by a fail-fast abort before any outcome existed;
            # deliberately not journaled (a resume recomputes it)
            sc = scenarios[idx]
            results.append(
                ScenarioResult(
                    scenario=sc.name,
                    design=sc.spec.name,
                    kind=sc.kind,
                    status="error",
                    error=f"aborted (fail-fast): {aborted['err']}",
                )
            )

    for idx, r in enumerate(results):
        if idx in resumed:
            continue  # replayed records keep their original accounting
        r.offline_s = offline_s.get(idx, 0.0)
        r.offline_cache_hit = hits.get(idx, False)

    return CampaignReport(
        results=results,
        wall_s=time.perf_counter() - t_wall,
        workers=effective_workers,
        offline_workers=offline_workers_eff,
        offline_total_s=sum(offline_s.values()),
        offline_wall_s=offline_wall_s,
        offline_stage_s=offline_stage_s,
        online_total_s=sum(r.online_s for r in results),
        cache_stats=cache.stats.as_dict() if cache is not None else None,
        lane_width=lane_width,
        lane_batches=[len(p[1]) for p in payloads] if lane_width > 1 else [],
        intra_design_workers=(
            config.intra_design_workers if intra_enabled else 0
        ),
        notes=notes,
        schedule=config.schedule,
        sched_wall_s=sched_wall_s,
        overlap_ratio=overlap_ratio,
        stage_concurrency=stage_concurrency,
        retries=sched.n_retries,
        timeouts=sched.n_timeouts,
        pool_respawns=sched.pool_respawns,
        resumed_scenarios=len(resumed),
        journal_path=journal.path if journal is not None else "",
    )
