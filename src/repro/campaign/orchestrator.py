"""Batch campaign orchestration: offline amortization + online fan-out.

:func:`run_campaign` drives a whole batch of (design, bug-scenario) pairs
through the two-stage debug flow:

* **Offline phase** (parent process, serial): every scenario's
  design-under-debug is materialized and resolved through the
  :class:`~repro.campaign.cache.OfflineCache` — structurally identical
  designs share one artifact, so a campaign of N stuck-at scenarios on one
  design pays the generic stage (and, with ``with_physical``, the full
  pack/place/route back-end) exactly once.
* **Online phase**: each scenario's debug loop
  (:func:`~repro.campaign.runner.run_scenario`) runs independently — in a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``workers > 1``,
  with an automatic serial fallback when process pools are unavailable
  (sandboxes, restricted containers).  Physical-stage payloads are
  stripped before dispatch: the online loop only needs the virtual PConf.

Results aggregate into a :class:`~repro.campaign.results.CampaignReport`.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.campaign.cache import OfflineCache
from repro.campaign.results import CampaignReport, ScenarioResult
from repro.campaign.runner import run_scenario
from repro.core.flow import (
    DebugFlowConfig,
    OfflineStage,
    run_generic_stage,
    run_physical_stage,
)
from repro.netlist.network import LogicNetwork
from repro.workloads.scenarios import DebugScenario

__all__ = ["CampaignConfig", "run_campaign"]


@dataclass
class CampaignConfig:
    """Knobs of a campaign run."""

    flow: DebugFlowConfig = field(default_factory=DebugFlowConfig)
    workers: int = 1
    """Online-phase parallelism; ``<= 1`` runs scenarios serially."""
    with_physical: bool = False
    """Include the physical back-end (pack/place/route, bitstream) in the
    offline artifact — the paper's full §IV-A stage.  Currently limited to
    combinational designs (the TPaR back-end does not yet route latches)."""
    max_turns: int = 48
    """Per-scenario budget of debugging turns for the localization walk."""


def _build_offline(
    net: LogicNetwork, config: DebugFlowConfig, with_physical: bool
) -> OfflineStage:
    stage = run_generic_stage(net, config)
    if with_physical:
        run_physical_stage(stage)
    return stage


def _online_worker(
    payload: tuple[DebugScenario, OfflineStage, int],
) -> ScenarioResult:
    scenario, offline, max_turns = payload
    return run_scenario(scenario, offline, max_turns=max_turns)


def run_campaign(
    scenarios: Sequence[DebugScenario],
    *,
    config: CampaignConfig | None = None,
    cache: OfflineCache | None = None,
) -> CampaignReport:
    """Run a debug campaign over ``scenarios``.

    Parameters
    ----------
    scenarios:
        The (design, bug) pairs to localize — see
        :mod:`repro.workloads.scenarios` for generators.
    config:
        Orchestration knobs; defaults to serial execution, generic-only
        offline artifacts and a 48-turn localization budget.
    cache:
        Offline-artifact cache.  ``None`` runs *cold*: every scenario pays
        its own offline stage, the baseline the cache's amortization is
        measured against (``benchmarks/bench_campaign.py``).

    Scenario outcomes are deterministic — the same scenarios and flow
    config produce the same statuses, suspects and turn counts whether the
    online phase runs serially or across a worker pool.
    """
    config = config or CampaignConfig()
    notes: list[str] = []
    t_wall = time.perf_counter()

    # -- offline phase: one artifact per distinct design content ---------------
    extra = ("physical",) if config.with_physical else ()
    payloads: list[tuple[DebugScenario, OfflineStage, int]] = []
    offline_s: list[float] = []
    hits: list[bool] = []
    failed: dict[int, ScenarioResult] = {}
    for idx, sc in enumerate(scenarios):
        t0 = time.perf_counter()
        try:
            net = sc.debug_network()
            if cache is not None:
                stage, hit = cache.get_or_run(
                    net,
                    config.flow,
                    extra=extra,
                    builder=lambda n, c: _build_offline(
                        n, c, config.with_physical
                    ),
                )
            else:
                stage = _build_offline(net, config.flow, config.with_physical)
                hit = False
        except Exception as exc:  # noqa: BLE001 — one bad design ≠ dead campaign
            failed[idx] = ScenarioResult(
                scenario=sc.name,
                design=sc.spec.name,
                kind=sc.kind,
                status="error",
                offline_ok=False,
                error=f"offline stage failed: {type(exc).__name__}: {exc}",
            )
            offline_s.append(time.perf_counter() - t0)
            hits.append(False)
            continue
        offline_s.append(time.perf_counter() - t0)
        hits.append(hit)
        # the online loop runs against the virtual PConf; don't ship the
        # physical stage (MBs of placement/routing state) to workers
        payloads.append(
            (sc, replace(stage, physical=None), config.max_turns)
        )

    # -- online phase: independent debug loops ---------------------------------
    online: list[ScenarioResult]
    if config.workers > 1 and payloads:
        try:
            with ProcessPoolExecutor(max_workers=config.workers) as pool:
                online = list(pool.map(_online_worker, payloads))
        except (OSError, PermissionError, BrokenExecutor) as exc:
            notes.append(
                f"worker pool unavailable ({type(exc).__name__}); "
                "fell back to serial execution"
            )
            online = [_online_worker(p) for p in payloads]
    else:
        online = [_online_worker(p) for p in payloads]

    # re-interleave offline-failure placeholders at their scenario positions
    results: list[ScenarioResult] = []
    it = iter(online)
    for idx in range(len(scenarios)):
        results.append(failed[idx] if idx in failed else next(it))

    for r, secs, hit in zip(results, offline_s, hits):
        r.offline_s = secs
        r.offline_cache_hit = hit

    return CampaignReport(
        results=results,
        wall_s=time.perf_counter() - t_wall,
        workers=max(1, config.workers),
        offline_total_s=sum(offline_s),
        online_total_s=sum(r.online_s for r in results),
        cache_stats=cache.stats.as_dict() if cache is not None else None,
        notes=notes,
    )
