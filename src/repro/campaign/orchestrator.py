"""Batch campaign orchestration: offline amortization + online fan-out.

:func:`run_campaign` drives a whole batch of (design, bug-scenario) pairs
through the two-stage debug flow:

* **Offline phase** (parent process, serial): every scenario's
  design-under-debug is materialized and resolved through
  :func:`~repro.campaign.cache.resolve_offline` — against a
  whole-artifact :class:`~repro.campaign.cache.OfflineCache`, a
  stage-granular :class:`~repro.pipeline.ArtifactStore` (each compile
  stage reused independently under its content-addressed key), or cold.
  Structurally identical designs share artifacts, so a campaign of N
  stuck-at scenarios on one design pays the generic stage (and, with
  ``with_physical``, the full pack/place/route back-end) exactly once.
* **Online phase**: scenarios are first grouped by **lane batch** — the
  finest key that lets them share one packed emulation: the offline
  artifact's cache key plus the golden design's identity and the horizon.
  Each batch of up to ``lane_width`` scenarios (64 per packed word,
  words added beyond that) runs as the lanes of
  a single :class:`~repro.engine.LaneEngine`
  (:func:`~repro.campaign.runner.run_scenario_batch`) — one packed golden
  pass, one packed detection run, and a batched frontier walk that
  advances every still-active lane per turn.  ``lane_width=1`` falls back
  to the historical per-scenario :func:`~repro.campaign.runner.
  run_scenario` path (the serial baseline the CI equivalence job diffs
  against).  Batches dispatch to a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``workers > 1``,
  with an automatic serial fallback when process pools are unavailable
  (sandboxes, restricted containers); each payload ships one stripped
  copy of its artifact (the online loop only needs the virtual PConf).

Results aggregate into a :class:`~repro.campaign.results.CampaignReport`,
whose ``workers`` field reports the *effective* parallelism (1 when the
pool fell back to serial) and whose ``lane_batches`` field records the
per-batch lane occupancy.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.campaign.cache import ArtifactStore, OfflineCache, resolve_offline
from repro.campaign.results import CampaignReport, ScenarioResult
from repro.campaign.runner import run_scenario, run_scenario_batch
from repro.core.flow import DebugFlowConfig, OfflineStage
from repro.workloads.scenarios import DebugScenario

__all__ = ["CampaignConfig", "run_campaign"]

CacheLike = OfflineCache | ArtifactStore | None


@dataclass
class CampaignConfig:
    """Knobs of a campaign run."""

    flow: DebugFlowConfig = field(default_factory=DebugFlowConfig)
    workers: int = 1
    """Online-phase parallelism; ``<= 1`` runs scenarios serially."""
    with_physical: bool = False
    """Include the physical back-end (pack/place/route, bitstream) in the
    offline artifact — the paper's full §IV-A stage.  Currently limited to
    combinational designs (the TPaR back-end does not yet route latches)."""
    max_turns: int = 48
    """Per-scenario budget of debugging turns for the localization walk."""
    lane_width: int = 64
    """Scenarios packed per emulation batch (≥ 1; widths beyond 64 span
    multiple ``uint64`` words — lane *k* is word ``k // 64``, bit
    ``k % 64``).  Scenarios sharing an offline artifact and a horizon are
    batched into lanes of one packed :class:`~repro.engine.LaneEngine`;
    ``1`` runs the historical one-session-per-scenario path.  Outcomes
    are byte-identical at every width — only the throughput changes."""
    interpreted: bool = False
    """Run the online phase on the reference per-gate interpreter instead
    of the compiled simulation kernels — the escape hatch, and the
    baseline ``benchmarks/bench_kernels.py`` measures the compiled path
    against.  Outcomes are bit-identical either way."""


#: One pool task: a stripped offline artifact, the scenarios of one lane
#: batch (or serial chunk), the turn budget, the lane width and the
#: interpreted-simulator flag.  Each distinct artifact is pickled once
#: per payload instead of once per scenario.
GroupPayload = tuple[
    OfflineStage, "list[tuple[int, DebugScenario]]", int, int, bool
]


def _online_group_worker(
    payload: GroupPayload, store=None
) -> list[tuple[int, ScenarioResult]]:
    offline, items, max_turns, lane_width, interpreted = payload
    if lane_width > 1:
        batch_results = run_scenario_batch(
            [sc for _idx, sc in items],
            offline,
            max_turns=max_turns,
            interpreted=interpreted,
            store=store,
        )
        return [
            (idx, result)
            for (idx, _sc), result in zip(items, batch_results)
        ]
    return [
        (
            idx,
            run_scenario(
                sc,
                offline,
                max_turns=max_turns,
                interpreted=interpreted,
                store=store,
            ),
        )
        for idx, sc in items
    ]


def _lane_batch_key(sc: DebugScenario, stage: OfflineStage) -> tuple:
    """The finest grouping under which scenarios can share lanes: one
    offline artifact, one golden design, one replay horizon."""
    return (
        stage.cache_key or id(stage),
        sc.spec,
        sc.design_seed,
        sc.horizon,
    )


def _group_payloads(
    resolved: "list[tuple[int, DebugScenario, OfflineStage]]",
    max_turns: int,
    workers: int,
    lane_width: int,
    interpreted: bool = False,
) -> list[GroupPayload]:
    """Group scenarios into lane batches (or serial chunks) per payload.

    With ``lane_width > 1``, scenarios are grouped by
    :func:`_lane_batch_key` and split into batches of at most
    ``lane_width`` lanes; each batch is one payload (one engine, one
    worker task).  With ``lane_width == 1`` the historical scheme
    applies: scenarios sharing a cache key are split into at most
    ``workers`` chunks so pool parallelism is preserved.  Either way the
    artifact is stripped of its physical stage **once** per group — the
    online loop runs against the virtual PConf.
    """
    groups: dict[object, list[tuple[int, DebugScenario, OfflineStage]]] = {}
    for idx, sc, stage in resolved:
        key = (
            _lane_batch_key(sc, stage)
            if lane_width > 1
            else (stage.cache_key or id(stage))
        )
        groups.setdefault(key, []).append((idx, sc, stage))
    payloads: list[GroupPayload] = []
    for items in groups.values():
        # the online loop runs against the virtual PConf; don't ship the
        # physical stage (MBs of placement/routing state) to workers
        stripped = replace(items[0][2], physical=None)
        if lane_width > 1:
            for base in range(0, len(items), lane_width):
                chunk = items[base : base + lane_width]
                payloads.append(
                    (
                        stripped,
                        [(idx, sc) for idx, sc, _ in chunk],
                        max_turns,
                        lane_width,
                        interpreted,
                    )
                )
        else:
            n_chunks = max(1, min(workers, len(items)))
            for c in range(n_chunks):
                chunk = items[c::n_chunks]
                payloads.append(
                    (
                        stripped,
                        [(idx, sc) for idx, sc, _ in chunk],
                        max_turns,
                        1,
                        interpreted,
                    )
                )
    return payloads


def run_campaign(
    scenarios: Sequence[DebugScenario],
    *,
    config: CampaignConfig | None = None,
    cache: CacheLike = None,
) -> CampaignReport:
    """Run a debug campaign over ``scenarios``.

    Parameters
    ----------
    scenarios:
        The (design, bug) pairs to localize — see
        :mod:`repro.workloads.scenarios` for generators.
    config:
        Orchestration knobs; defaults to serial execution, generic-only
        offline artifacts and a 48-turn localization budget.
    cache:
        Offline-artifact cache: an :class:`~repro.pipeline.ArtifactStore`
        for stage-granular reuse, an
        :class:`~repro.campaign.cache.OfflineCache` for whole-artifact
        reuse, or ``None`` to run *cold* — every scenario pays its own
        offline stage, the conventional-recompile baseline the caches'
        amortization is measured against
        (``benchmarks/bench_campaign.py``, ``bench_incremental.py``).

    Scenario outcomes are deterministic — the same scenarios and flow
    config produce the same statuses, suspects and turn counts whether the
    online phase runs serially or across a worker pool.
    """
    config = config or CampaignConfig()
    notes: list[str] = []
    t_wall = time.perf_counter()

    # -- offline phase: one artifact per distinct design content ---------------
    resolved: list[tuple[int, DebugScenario, OfflineStage]] = []
    offline_s: list[float] = []
    hits: list[bool] = []
    failed: dict[int, ScenarioResult] = {}
    for idx, sc in enumerate(scenarios):
        t0 = time.perf_counter()
        try:
            net = sc.debug_network()
            stage, hit = resolve_offline(
                net,
                config.flow,
                cache=cache,
                with_physical=config.with_physical,
            )
        except Exception as exc:  # noqa: BLE001 — one bad design ≠ dead campaign
            failed[idx] = ScenarioResult(
                scenario=sc.name,
                design=sc.spec.name,
                kind=sc.kind,
                status="error",
                offline_ok=False,
                error=f"offline stage failed: {type(exc).__name__}: {exc}",
            )
            offline_s.append(time.perf_counter() - t0)
            hits.append(False)
            continue
        offline_s.append(time.perf_counter() - t0)
        hits.append(hit)
        resolved.append((idx, sc, stage))

    # -- online phase: lane-batched debug loops, payloads deduped per key ------
    workers = max(1, config.workers)
    lane_width = max(1, config.lane_width)
    payloads = _group_payloads(
        resolved, config.max_turns, workers, lane_width, config.interpreted
    )
    # compiled programs persist in the stage store when one is in play —
    # worker processes compile their own (the store isn't shipped), but
    # serial runs and warm restarts skip compilation entirely
    program_store = cache if isinstance(cache, ArtifactStore) else None
    indexed: list[tuple[int, ScenarioResult]] = []
    effective_workers = 1
    if workers > 1 and payloads:
        effective_workers = min(workers, len(payloads))
        try:
            with ProcessPoolExecutor(max_workers=effective_workers) as pool:
                for batch in pool.map(_online_group_worker, payloads):
                    indexed.extend(batch)
        except (OSError, PermissionError, BrokenExecutor) as exc:
            effective_workers = 1
            notes.append(
                f"worker pool unavailable ({type(exc).__name__}); fell back "
                f"to serial execution (effective workers: 1, requested "
                f"{workers})"
            )
            indexed = [
                r
                for p in payloads
                for r in _online_group_worker(p, store=program_store)
            ]
    else:
        indexed = [
            r
            for p in payloads
            for r in _online_group_worker(p, store=program_store)
        ]

    # re-interleave results (and offline-failure placeholders) in scenario order
    by_idx = dict(indexed)
    results: list[ScenarioResult] = []
    for idx in range(len(scenarios)):
        results.append(failed[idx] if idx in failed else by_idx[idx])

    for r, secs, hit in zip(results, offline_s, hits):
        r.offline_s = secs
        r.offline_cache_hit = hit

    return CampaignReport(
        results=results,
        wall_s=time.perf_counter() - t_wall,
        workers=effective_workers,
        offline_total_s=sum(offline_s),
        online_total_s=sum(r.online_s for r in results),
        cache_stats=cache.stats.as_dict() if cache is not None else None,
        lane_width=lane_width,
        lane_batches=[len(p[1]) for p in payloads] if lane_width > 1 else [],
        notes=notes,
    )
