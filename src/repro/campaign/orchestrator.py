"""Batch campaign orchestration: offline amortization + online fan-out.

:func:`run_campaign` drives a whole batch of (design, bug-scenario) pairs
through the two-stage debug flow:

* **Offline phase**: every scenario's design-under-debug is materialized
  and resolved through :func:`~repro.campaign.cache.resolve_offline` —
  against a whole-artifact :class:`~repro.campaign.cache.OfflineCache`, a
  stage-granular :class:`~repro.pipeline.ArtifactStore` (each compile
  stage reused independently under its content-addressed key), or cold.
  Structurally identical designs share artifacts, so a campaign of N
  stuck-at scenarios on one design pays the generic stage (and, with
  ``with_physical``, the full pack/place/route back-end) exactly once.
  With ``offline_workers > 1``, *distinct* cold designs build
  concurrently in a process pool: scenarios are grouped by offline cache
  key, groups already warm in the cache resolve in-process, and each
  remaining group becomes one worker task running the stage graph of
  :mod:`repro.pipeline` — against an
  :class:`~repro.pipeline.ArtifactStore` on the shared ``cache_dir``
  when the campaign store is disk-backed (so every stage artifact lands
  under its existing content-addressed key and warm restarts are
  unchanged), or returned to the parent for backfill when the store is
  memory-only.  Outcomes are byte-identical to serial offline builds —
  the scheduler only changes *where* artifacts are built, never their
  keys or content.
* **Online phase**: scenarios are first grouped by **lane batch** — the
  finest key that lets them share one packed emulation: the offline
  artifact's cache key plus the golden design's identity and the horizon.
  Each batch of up to ``lane_width`` scenarios (64 per packed word,
  words added beyond that) runs as the lanes of
  a single :class:`~repro.engine.LaneEngine`
  (:func:`~repro.campaign.runner.run_scenario_batch`) — one packed golden
  pass, one packed detection run, and a batched frontier walk that
  advances every still-active lane per turn.  ``lane_width=1`` falls back
  to the historical per-scenario :func:`~repro.campaign.runner.
  run_scenario` path (the serial baseline the CI equivalence job diffs
  against).  Batches dispatch to a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``workers > 1``,
  with an automatic serial fallback when process pools are unavailable
  (sandboxes, restricted containers); each payload ships one stripped
  copy of its artifact (the online loop only needs the virtual PConf).

Results aggregate into a :class:`~repro.campaign.results.CampaignReport`,
whose ``workers`` field reports the *effective* parallelism (1 when the
pool fell back to serial) and whose ``lane_batches`` field records the
per-batch lane occupancy.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.campaign.cache import ArtifactStore, OfflineCache, resolve_offline
from repro.campaign.results import CampaignReport, ScenarioResult
from repro.campaign.runner import run_scenario, run_scenario_batch
from repro.core.flow import DebugFlowConfig, OfflineStage, offline_cache_key
from repro.workloads.scenarios import DebugScenario

__all__ = ["CampaignConfig", "prebuild_offline", "run_campaign"]

CacheLike = OfflineCache | ArtifactStore | None


@dataclass
class CampaignConfig:
    """Knobs of a campaign run."""

    flow: DebugFlowConfig = field(default_factory=DebugFlowConfig)
    workers: int = 1
    """Online-phase parallelism; ``<= 1`` runs scenarios serially."""
    offline_workers: int = 1
    """Offline-phase parallelism: distinct cold designs (unique offline
    cache keys) build concurrently in a process pool.  ``<= 1`` keeps the
    historical serial build loop.  Artifacts land under the same
    content-addressed keys either way, so outcomes and warm restarts are
    byte-identical to serial builds."""
    with_physical: bool = False
    """Include the physical back-end (pack/place/route, bitstream) in the
    offline artifact — the paper's full §IV-A stage.  Currently limited to
    combinational designs (the TPaR back-end does not yet route latches)."""
    max_turns: int = 48
    """Per-scenario budget of debugging turns for the localization walk."""
    lane_width: int = 64
    """Scenarios packed per emulation batch (≥ 1; widths beyond 64 span
    multiple ``uint64`` words — lane *k* is word ``k // 64``, bit
    ``k % 64``).  Scenarios sharing an offline artifact and a horizon are
    batched into lanes of one packed :class:`~repro.engine.LaneEngine`;
    ``1`` runs the historical one-session-per-scenario path.  Outcomes
    are byte-identical at every width — only the throughput changes."""
    interpreted: bool = False
    """Run the online phase on the reference per-gate interpreter instead
    of the compiled simulation kernels — the escape hatch, and the
    baseline ``benchmarks/bench_kernels.py`` measures the compiled path
    against.  Outcomes are bit-identical either way."""
    backend: str | None = None
    """Compiled-kernel backend for the online phase: ``"python"`` (big-int
    kernels), ``"numpy"`` (vectorized whole-array kernels, the wide-lane
    fast path) or ``None``/``"auto"`` to pick by lane width — see
    :func:`repro.netlist.compiled.resolve_backend`.  Outcomes are
    byte-identical across backends (``tests/test_backend_parity.py``);
    only throughput changes.  Ignored when ``interpreted`` is set."""


#: One pool task: a stripped offline artifact, the scenarios of one lane
#: batch (or serial chunk), the turn budget, the lane width, the
#: interpreted-simulator flag and the kernel backend.  Each distinct
#: artifact is pickled once per payload instead of once per scenario.
GroupPayload = tuple[
    OfflineStage, "list[tuple[int, DebugScenario]]", int, int, bool,
    "str | None",
]


def _online_group_worker(
    payload: GroupPayload, store=None
) -> list[tuple[int, ScenarioResult]]:
    offline, items, max_turns, lane_width, interpreted, backend = payload
    if lane_width > 1:
        batch_results = run_scenario_batch(
            [sc for _idx, sc in items],
            offline,
            max_turns=max_turns,
            interpreted=interpreted,
            store=store,
            backend=backend,
        )
        return [
            (idx, result)
            for (idx, _sc), result in zip(items, batch_results)
        ]
    return [
        (
            idx,
            run_scenario(
                sc,
                offline,
                max_turns=max_turns,
                interpreted=interpreted,
                store=store,
                backend=backend,
            ),
        )
        for idx, sc in items
    ]


def _lane_batch_key(sc: DebugScenario, stage: OfflineStage) -> tuple:
    """The finest grouping under which scenarios can share lanes: one
    offline artifact, one golden design, one replay horizon."""
    return (
        stage.cache_key or id(stage),
        sc.spec,
        sc.design_seed,
        sc.horizon,
    )


def _group_payloads(
    resolved: "list[tuple[int, DebugScenario, OfflineStage]]",
    max_turns: int,
    workers: int,
    lane_width: int,
    interpreted: bool = False,
    backend: "str | None" = None,
) -> list[GroupPayload]:
    """Group scenarios into lane batches (or serial chunks) per payload.

    With ``lane_width > 1``, scenarios are grouped by
    :func:`_lane_batch_key` and split into batches of at most
    ``lane_width`` lanes; each batch is one payload (one engine, one
    worker task).  With ``lane_width == 1`` the historical scheme
    applies: scenarios sharing a cache key are split into at most
    ``workers`` chunks so pool parallelism is preserved.  Either way the
    artifact is stripped of its physical stage **once** per group — the
    online loop runs against the virtual PConf.
    """
    groups: dict[object, list[tuple[int, DebugScenario, OfflineStage]]] = {}
    for idx, sc, stage in resolved:
        key = (
            _lane_batch_key(sc, stage)
            if lane_width > 1
            else (stage.cache_key or id(stage))
        )
        groups.setdefault(key, []).append((idx, sc, stage))
    payloads: list[GroupPayload] = []
    for items in groups.values():
        # the online loop runs against the virtual PConf; don't ship the
        # physical stage (MBs of placement/routing state) to workers
        stripped = replace(items[0][2], physical=None)
        if lane_width > 1:
            for base in range(0, len(items), lane_width):
                chunk = items[base : base + lane_width]
                payloads.append(
                    (
                        stripped,
                        [(idx, sc) for idx, sc, _ in chunk],
                        max_turns,
                        lane_width,
                        interpreted,
                        backend,
                    )
                )
        else:
            n_chunks = max(1, min(workers, len(items)))
            for c in range(n_chunks):
                chunk = items[c::n_chunks]
                payloads.append(
                    (
                        stripped,
                        [(idx, sc) for idx, sc, _ in chunk],
                        max_turns,
                        1,
                        interpreted,
                        backend,
                    )
                )
    return payloads


#: One offline build task: the design network, the flow config, whether
#: to run the physical back-end, and the disk directory of the shared
#: stage store (``None`` builds against a throwaway in-process store and
#: returns every artifact for parent-side backfill).
OfflinePayload = tuple["object", DebugFlowConfig, bool, "str | None"]


def _offline_build_worker(payload: OfflinePayload):
    """Build one design's offline artifact in a worker process.

    Runs the stage graph against an :class:`ArtifactStore` rooted at the
    campaign's ``cache_dir`` when one is given — every stage artifact is
    persisted under its existing content-addressed key, exactly as a
    serial build would, so warm restarts can't tell the difference.
    Returns ``("ok", stage, secs, entries, stage_s)`` where ``entries``
    are the freshly built ``(stage name, key, value)`` triples (for
    backfilling a memory-only parent store) and ``stage_s`` the per-stage
    build seconds; or ``("err", message)`` — one bad design must not
    kill the whole campaign.
    """
    net, flow, with_physical, cache_dir = payload
    try:
        from repro.pipeline import assemble_offline, compile_design

        store = ArtifactStore(cache_dir=cache_dir) if cache_dir else None
        t0 = time.perf_counter()
        result = compile_design(
            net, flow, store=store, with_physical=with_physical
        )
        stage = assemble_offline(result)
        secs = time.perf_counter() - t0
        entries = (
            None
            if cache_dir
            else [
                (name, a.key, a.value)
                for name, a in result.artifacts.items()
                if not a.hit
            ]
        )
        return ("ok", stage, secs, entries, dict(result.timers.totals))
    except Exception as exc:  # noqa: BLE001 — marshalled to a per-scenario error
        return ("err", f"{type(exc).__name__}: {exc}")


def _offline_group_key(net, flow: DebugFlowConfig, with_physical: bool) -> str:
    """The identity under which scenarios share one offline build."""
    extra = ("physical",) if with_physical else ()
    return offline_cache_key(net, flow, extra=extra)


def _store_is_warm(cache: CacheLike, net, flow, with_physical: bool) -> bool:
    """Probe (without stats traffic) whether ``net`` resolves fully warm."""
    if isinstance(cache, OfflineCache):
        key = _offline_group_key(net, flow, with_physical)
        return cache.store.contains("offline", key)
    if isinstance(cache, ArtifactStore):
        from repro.pipeline.stages import (
            DEBUG_FLOW_GRAPH,
            GENERIC_STAGES,
            PHYSICAL_STAGES,
        )

        stages = (
            GENERIC_STAGES + PHYSICAL_STAGES if with_physical else GENERIC_STAGES
        )
        keys = DEBUG_FLOW_GRAPH.stage_keys(net, flow, stages=stages)
        return all(cache.contains(name, keys[name]) for name in stages)
    return False


def _offline_error(sc: DebugScenario, message: str) -> ScenarioResult:
    return ScenarioResult(
        scenario=sc.name,
        design=sc.spec.name,
        kind=sc.kind,
        status="error",
        offline_ok=False,
        error=f"offline stage failed: {message}",
    )


def _accumulate_stage_s(into: dict[str, float], totals: dict) -> None:
    for name, secs in totals.items():
        into[name] = into.get(name, 0.0) + float(secs)


def prebuild_offline(
    nets: "Sequence[object]",
    *,
    flow: DebugFlowConfig | None = None,
    cache: CacheLike = None,
    with_physical: bool = False,
    workers: int = 1,
    notes: "list[str] | None" = None,
) -> "dict[str, OfflineStage]":
    """Warm the cache with offline artifacts for ``nets``, concurrently.

    The same warm-probe → pool → cache-landing path the campaign's
    ``offline_workers`` phase uses, exposed for callers that need
    artifacts *before* a campaign exists — e.g. stuck-at scenario
    screening, which needs each design's tap directory to pick fault
    sites.  Designs are deduped by offline cache key; warm keys resolve
    in-process, cold keys build in a process pool of up to ``workers``
    (serially when ``workers <= 1`` or the pool is unavailable), and
    every artifact lands in ``cache`` under the same content-addressed
    keys a serial :func:`~repro.campaign.cache.resolve_offline` call
    would use — later resolutions of the same design are pure hits.

    Returns ``{offline cache key: artifact}`` for every design that
    built (or resolved warm); failed designs are simply absent — callers
    decide whether to retry without the physical stage or surface the
    error.  ``notes``, when given, collects human-readable fallback
    messages (pool unavailable etc.).
    """
    flow = flow or DebugFlowConfig()
    if notes is None:
        notes = []
    keyed: "dict[str, object]" = {}
    for net in nets:
        keyed.setdefault(_offline_group_key(net, flow, with_physical), net)
    out: "dict[str, OfflineStage]" = {}
    cold: list[str] = []
    for key, net in keyed.items():
        if _store_is_warm(cache, net, flow, with_physical):
            try:
                out[key], _hit = resolve_offline(
                    net, flow, cache=cache, with_physical=with_physical
                )
            except Exception:  # noqa: BLE001 — treated as a failed design
                pass
        else:
            cold.append(key)
    if not cold:
        return out
    cache_dir = getattr(cache, "cache_dir", None)
    shared_dir = cache_dir if isinstance(cache, ArtifactStore) else None
    payloads = {
        key: (keyed[key], flow, with_physical, shared_dir) for key in cold
    }
    built: dict[str, tuple] = {}
    n_workers = min(max(1, workers), len(cold))
    if n_workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(_offline_build_worker, p): key
                    for key, p in payloads.items()
                }
                for fut in as_completed(futures):
                    built[futures[fut]] = fut.result()
        except (OSError, PermissionError, BrokenExecutor) as exc:
            notes.append(
                f"offline prebuild pool unavailable ({type(exc).__name__}); "
                f"building {len(cold) - len(built)} design(s) serially"
            )
    for key in cold:
        outcome = built.get(key)
        if outcome is None:
            outcome = _offline_build_worker(payloads[key])
        if outcome[0] == "err":
            continue
        _tag, stage, _secs, entries, _totals = outcome
        if isinstance(cache, OfflineCache):
            stage = cache.put(key, stage)
        elif isinstance(cache, ArtifactStore) and entries:
            from repro.pipeline.graph import source_key

            group = source_key(keyed[key])
            for name, skey, value in entries:
                cache.put(name, skey, value, group=group)
        out[key] = stage
    return out


def _offline_phase_parallel(
    scenarios: Sequence[DebugScenario],
    config: CampaignConfig,
    cache: CacheLike,
    notes: list[str],
):
    """Offline phase with cross-design parallel builds.

    Scenarios are grouped by offline cache key; warm groups resolve
    in-process (a cache lookup), cold groups fan out to a process pool —
    one task per *distinct design*, the unit the paper amortizes over.
    Falls back to the serial loop when the pool is unavailable.  Returns
    the same ``(resolved, offline_s, hits, failed, stage_s, workers)``
    shape the serial phase produces.
    """
    resolved: list[tuple[int, DebugScenario, OfflineStage]] = []
    offline_s: dict[int, float] = {}
    hits: dict[int, bool] = {}
    failed: dict[int, ScenarioResult] = {}
    stage_s: dict[str, float] = {}

    # group scenarios by build identity
    groups: dict[str, list[tuple[int, DebugScenario]]] = {}
    group_net: dict[str, object] = {}
    for idx, sc in enumerate(scenarios):
        t0 = time.perf_counter()
        try:
            net = sc.debug_network()
            key = _offline_group_key(net, config.flow, config.with_physical)
        except Exception as exc:  # noqa: BLE001
            failed[idx] = _offline_error(sc, f"{type(exc).__name__}: {exc}")
            offline_s[idx] = time.perf_counter() - t0
            hits[idx] = False
            continue
        offline_s[idx] = time.perf_counter() - t0
        groups.setdefault(key, []).append((idx, sc))
        group_net.setdefault(key, net)

    # split warm from cold via a stats-free probe
    cold: list[str] = []
    artifact: dict[str, OfflineStage] = {}
    group_hit: dict[str, bool] = {}
    for key, items in groups.items():
        if _store_is_warm(cache, group_net[key], config.flow, config.with_physical):
            idx0, sc0 = items[0]
            t0 = time.perf_counter()
            try:
                stage, hit = resolve_offline(
                    group_net[key],
                    config.flow,
                    cache=cache,
                    with_physical=config.with_physical,
                )
            except Exception as exc:  # noqa: BLE001
                message = f"{type(exc).__name__}: {exc}"
                for idx, sc in items:
                    failed[idx] = _offline_error(sc, message)
                    hits[idx] = False
                offline_s[idx0] += time.perf_counter() - t0
                continue
            offline_s[idx0] += time.perf_counter() - t0
            artifact[key] = stage
            group_hit[key] = hit
        else:
            cold.append(key)

    n_workers = min(max(1, config.offline_workers), max(1, len(cold)))
    failed_keys: dict[str, str] = {}
    if cold:
        cache_dir = getattr(cache, "cache_dir", None)
        shared_dir = cache_dir if isinstance(cache, ArtifactStore) else None
        payloads = {
            key: (group_net[key], config.flow, config.with_physical, shared_dir)
            for key in cold
        }
        built: dict[str, tuple] = {}
        if n_workers > 1:
            try:
                with ProcessPoolExecutor(max_workers=n_workers) as pool:
                    futures = {
                        pool.submit(_offline_build_worker, p): key
                        for key, p in payloads.items()
                    }
                    for fut in as_completed(futures):
                        built[futures[fut]] = fut.result()
            except (OSError, PermissionError, BrokenExecutor) as exc:
                # results collected before the pool broke are kept; only
                # the designs still missing rebuild serially below
                notes.append(
                    f"offline build pool unavailable ({type(exc).__name__}); "
                    f"building {len(cold) - len(built)} remaining cold "
                    "design(s) serially"
                )
                n_workers = 1

        for key in cold:
            outcome = built.get(key)
            if outcome is None:
                # serial fallback (or pool-less run): build in-process
                outcome = _offline_build_worker(payloads[key])
            if outcome[0] == "err":
                failed_keys[key] = outcome[1]
                continue
            _tag, stage, secs, entries, totals = outcome
            idx0 = groups[key][0][0]
            offline_s[idx0] += secs
            _accumulate_stage_s(stage_s, totals)
            # land the artifacts in the parent cache under their existing
            # content-addressed keys, so duplicates and warm restarts
            # behave exactly as after a serial build
            if isinstance(cache, OfflineCache):
                stage = cache.put(key, stage)
            elif isinstance(cache, ArtifactStore) and entries:
                from repro.pipeline.graph import source_key

                group = source_key(group_net[key])
                for name, skey, value in entries:
                    cache.put(name, skey, value, group=group)
            artifact[key] = stage
            group_hit[key] = False

    for key, items in groups.items():
        if key in failed_keys:
            for idx, sc in items:
                failed[idx] = _offline_error(sc, failed_keys[key])
                hits[idx] = False
            continue
        if key not in artifact:
            continue  # warm probe group that failed to resolve
        stage = artifact[key]
        first_idx = items[0][0]
        # duplicates of a built design ride the group's artifact: a cache
        # hit when a cache holds it, plain build sharing when running
        # cold (cold parallel campaigns dedupe per distinct design —
        # outcomes are unaffected, only the redundant rebuilds go away)
        dup_hit = cache is not None
        for idx, sc in items:
            hits[idx] = group_hit[key] if idx == first_idx else dup_hit
            offline_s.setdefault(idx, 0.0)
            resolved.append((idx, sc, stage))

    resolved.sort(key=lambda t: t[0])
    return resolved, offline_s, hits, failed, stage_s, n_workers


def _offline_phase_serial(
    scenarios: Sequence[DebugScenario],
    config: CampaignConfig,
    cache: CacheLike,
):
    """The historical serial offline loop (``offline_workers <= 1``)."""
    resolved: list[tuple[int, DebugScenario, OfflineStage]] = []
    offline_s: dict[int, float] = {}
    hits: dict[int, bool] = {}
    failed: dict[int, ScenarioResult] = {}
    stage_s: dict[str, float] = {}
    for idx, sc in enumerate(scenarios):
        t0 = time.perf_counter()
        try:
            net = sc.debug_network()
            stage, hit = resolve_offline(
                net,
                config.flow,
                cache=cache,
                with_physical=config.with_physical,
            )
        except Exception as exc:  # noqa: BLE001 — one bad design ≠ dead campaign
            failed[idx] = _offline_error(sc, f"{type(exc).__name__}: {exc}")
            offline_s[idx] = time.perf_counter() - t0
            hits[idx] = False
            continue
        offline_s[idx] = time.perf_counter() - t0
        hits[idx] = hit
        if not hit:
            _accumulate_stage_s(stage_s, stage.timers.totals)
        resolved.append((idx, sc, stage))
    return resolved, offline_s, hits, failed, stage_s, 1


def run_campaign(
    scenarios: Sequence[DebugScenario],
    *,
    config: CampaignConfig | None = None,
    cache: CacheLike = None,
) -> CampaignReport:
    """Run a debug campaign over ``scenarios``.

    Parameters
    ----------
    scenarios:
        The (design, bug) pairs to localize — see
        :mod:`repro.workloads.scenarios` for generators.
    config:
        Orchestration knobs; defaults to serial execution, generic-only
        offline artifacts and a 48-turn localization budget.
    cache:
        Offline-artifact cache: an :class:`~repro.pipeline.ArtifactStore`
        for stage-granular reuse, an
        :class:`~repro.campaign.cache.OfflineCache` for whole-artifact
        reuse, or ``None`` to run *cold* — every scenario pays its own
        offline stage, the conventional-recompile baseline the caches'
        amortization is measured against
        (``benchmarks/bench_campaign.py``, ``bench_incremental.py``).

    Scenario outcomes are deterministic — the same scenarios and flow
    config produce the same statuses, suspects and turn counts whether the
    online phase runs serially or across a worker pool.
    """
    config = config or CampaignConfig()
    notes: list[str] = []
    t_wall = time.perf_counter()

    # -- offline phase: one artifact per distinct design content ---------------
    t_offline = time.perf_counter()
    if config.offline_workers > 1:
        (
            resolved,
            offline_s,
            hits,
            failed,
            offline_stage_s,
            offline_workers,
        ) = _offline_phase_parallel(scenarios, config, cache, notes)
    else:
        (
            resolved,
            offline_s,
            hits,
            failed,
            offline_stage_s,
            offline_workers,
        ) = _offline_phase_serial(scenarios, config, cache)
    offline_wall_s = time.perf_counter() - t_offline

    # -- online phase: lane-batched debug loops, payloads deduped per key ------
    workers = max(1, config.workers)
    lane_width = max(1, config.lane_width)
    payloads = _group_payloads(
        resolved,
        config.max_turns,
        workers,
        lane_width,
        config.interpreted,
        config.backend,
    )
    # compiled programs persist in the stage store when one is in play —
    # worker processes compile their own (the store isn't shipped), but
    # serial runs and warm restarts skip compilation entirely
    program_store = cache if isinstance(cache, ArtifactStore) else None
    indexed: list[tuple[int, ScenarioResult]] = []
    effective_workers = 1
    # a pool only pays for itself when there is more than one payload to
    # spread: a single lane batch would ride one worker anyway, while the
    # parent still paid pool startup plus artifact pickling — the
    # "pooled slower than serial" regression BENCH_campaign.json recorded
    use_pool = workers > 1 and len(payloads) > 1
    if workers > 1 and payloads and not use_pool:
        notes.append(
            "worker pool skipped: 1 online payload (serial is cheaper than "
            f"pool startup; requested {workers} workers)"
        )
    if use_pool:
        effective_workers = min(workers, len(payloads))
        try:
            with ProcessPoolExecutor(max_workers=effective_workers) as pool:
                for batch in pool.map(_online_group_worker, payloads):
                    indexed.extend(batch)
        except (OSError, PermissionError, BrokenExecutor) as exc:
            effective_workers = 1
            notes.append(
                f"worker pool unavailable ({type(exc).__name__}); fell back "
                f"to serial execution (effective workers: 1, requested "
                f"{workers})"
            )
            indexed = [
                r
                for p in payloads
                for r in _online_group_worker(p, store=program_store)
            ]
    else:
        indexed = [
            r
            for p in payloads
            for r in _online_group_worker(p, store=program_store)
        ]

    # re-interleave results (and offline-failure placeholders) in scenario order
    by_idx = dict(indexed)
    results: list[ScenarioResult] = []
    for idx in range(len(scenarios)):
        results.append(failed[idx] if idx in failed else by_idx[idx])

    for idx, r in enumerate(results):
        r.offline_s = offline_s.get(idx, 0.0)
        r.offline_cache_hit = hits.get(idx, False)

    return CampaignReport(
        results=results,
        wall_s=time.perf_counter() - t_wall,
        workers=effective_workers,
        offline_workers=offline_workers,
        offline_total_s=sum(offline_s.values()),
        offline_wall_s=offline_wall_s,
        offline_stage_s=offline_stage_s,
        online_total_s=sum(r.online_s for r in results),
        cache_stats=cache.stats.as_dict() if cache is not None else None,
        lane_width=lane_width,
        lane_batches=[len(p[1]) for p in payloads] if lane_width > 1 else [],
        notes=notes,
    )
