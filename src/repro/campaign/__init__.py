"""Batch debug-campaign orchestration (the scaling layer over §IV).

The paper's economics are asymmetric: the *offline* generic stage
(synthesis, signal parameterization, TCON mapping and — physically —
pack/place/route) is expensive and runs once per design, while each
*online* debugging turn costs a microsecond-scale respecialization.  This
package exploits that asymmetry at batch scale:

* :func:`resolve_offline` — one entry point resolving a design's offline
  artifact through any cache flavor: a stage-granular
  :class:`~repro.pipeline.ArtifactStore` (each compile stage reused
  independently under its content-addressed key — a warm config-knob
  change rebuilds only the invalidated stages), a whole-artifact
  :class:`OfflineCache` (design ⊕ flow config keyed), or cold;
* :mod:`~repro.workloads.scenarios` — deterministic (design, bug) scenario
  generators: emulation-level stuck-at faults (shared offline artifact)
  and netlist mutations (per-revision artifacts);
* :func:`run_scenario` / :func:`localize_divergence` — the automated
  online loop: detect the failure at the primary outputs, then walk the
  divergence back through observable-frontier batches to the bug region;
* :func:`run_campaign` — the orchestrator: serial offline resolution
  through the cache, then a process-pool (or serial-fallback) online
  fan-out, aggregated into a :class:`CampaignReport`;
* ``python -m repro.campaign`` — the CLI front-end.

Quick start::

    from repro.campaign import OfflineCache, run_campaign
    from repro.workloads import stuck_at_scenarios

    scenarios = stuck_at_scenarios("stereov.", 4)
    report = run_campaign(scenarios, cache=OfflineCache())
    print(report.render())
"""

from repro.campaign.cache import (
    ArtifactStore,
    CacheStats,
    OfflineCache,
    StoreStats,
    resolve_offline,
)
from repro.campaign.localize import (
    GoldenOracle,
    Localization,
    divergence_walk,
    golden_signal_traces,
    localize_divergence,
)
from repro.campaign.orchestrator import CampaignConfig, run_campaign
from repro.campaign.results import STATUSES, CampaignReport, ScenarioResult
from repro.campaign.runner import run_scenario, run_scenario_batch
from repro.engine import LaneEngine
from repro.workloads.scenarios import (
    DebugScenario,
    campaign_spec,
    mutation_scenarios,
    stuck_at_scenarios,
)

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "OfflineCache",
    "StoreStats",
    "resolve_offline",
    "GoldenOracle",
    "LaneEngine",
    "Localization",
    "divergence_walk",
    "golden_signal_traces",
    "localize_divergence",
    "CampaignConfig",
    "run_campaign",
    "STATUSES",
    "CampaignReport",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_batch",
    "DebugScenario",
    "campaign_spec",
    "mutation_scenarios",
    "stuck_at_scenarios",
]
