"""Automatic bug localization over a debug session.

This is the campaign-grade version of the hunt ``examples/bug_hunt.py``
narrates: starting from a failing primary output, repeatedly observe the
suspect's *observable fan-in frontier* (the nearest tapped signals, crossing
gates the mapper absorbed into LUT cones), compare the captured waveforms
against a golden reference simulation, and walk to the first diverging
frontier signal until the divergence has no diverging inputs — that signal
roots the bug region.  Every frontier batch costs one debugging turn
(an online respecialization), never a recompilation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.debug import DebugSession
from repro.netlist.network import LogicNetwork

__all__ = [
    "GoldenOracle",
    "Localization",
    "divergence_walk",
    "golden_signal_traces",
    "localize_divergence",
    "mapped_frontier_fn",
    "observable_frontier",
    "untapped_region",
]


@dataclass(frozen=True)
class Localization:
    """Outcome of one localization walk."""

    suspect: str
    """The tapped signal rooting the divergence."""
    region: frozenset[str]
    """The suspect plus its un-tapped fan-in cone — the mapped netlist's
    observability granularity: gates absorbed into the suspect's LUT cone
    are not individually visible, so the hunt cannot narrow further."""
    turns: int
    """Debugging turns (online respecializations) the walk spent."""
    signals_checked: int
    """Frontier signals whose waveforms were compared against golden."""
    exhausted: bool = False
    """True when the walk stopped on its turn budget, not on convergence."""


class GoldenOracle:
    """Replays stimulus on the golden design, reading any internal signal.

    The golden design is the *specification*: a plain simulation with full
    visibility, standing in for the reference model an engineer diffs
    waveforms against.
    """

    def __init__(self, net: LogicNetwork) -> None:
        self.net = net

    def signals(
        self, stim: list[dict[str, int]], names: list[str]
    ) -> dict[str, np.ndarray]:
        """Golden traces (one uint8 array per signal) for ``names``."""
        return golden_signal_traces(self.net, stim, names)


def golden_signal_traces(
    net: LogicNetwork,
    stim: list[dict[str, int]],
    names: list[str],
    *,
    interpreted: bool = False,
) -> dict[str, np.ndarray]:
    """Simulate ``net`` under ``stim`` recording the named signals.

    One simulation pass serves any number of signals, so campaign runners
    precompute the golden traces of *every* observable tap once per
    scenario instead of re-simulating per frontier batch.  Delegates to
    :func:`repro.workloads.scenarios.signal_traces` — the same loop PO
    traces use, so golden and observed packing can never diverge.
    """
    from repro.workloads.scenarios import signal_traces

    return signal_traces(net, stim, names, interpreted=interpreted)


def _frontier_walk(net: LogicNetwork, is_tap, nid: int) -> list[str]:
    """Backward DFS from ``nid`` to the nearest nodes where ``is_tap``
    holds, crossing everything in between (latch boundaries are crossed
    through the latch's D input, so the walk follows divergence backward
    through sequential logic as well)."""
    latch_by_q = {latch.q: latch for latch in net.latches}
    out: list[str] = []
    seen: set[int] = set()
    stack = list(net.fanins(nid))
    if nid in latch_by_q:
        stack.append(latch_by_q[nid].driver)
    while stack:
        p = stack.pop()
        if p in seen:
            continue
        seen.add(p)
        if is_tap(p):
            out.append(net.node_name(p))
        else:
            stack.extend(net.fanins(p))
            if p in latch_by_q:
                stack.append(latch_by_q[p].driver)
    return out


def observable_frontier(
    net: LogicNetwork, tapped: set[int], nid: int
) -> list[str]:
    """Nearest tapped signals feeding ``nid``, crossing untapped ones."""
    return _frontier_walk(net, tapped.__contains__, nid)


def mapped_frontier_fn(session):
    """Observable fan-in frontier over the *mapped* LUT network.

    Netlist-level bugs propagate along source connectivity, but an
    emulation-level forced fault lives on a mapped root: LUT cones that
    absorbed copies of the faulted signal's logic never see the override,
    so the divergence flows strictly along mapped LUT fan-ins.  Walking
    the source graph can then stall one hop short (a source-frontier tap
    whose LUT swallowed the fault site reads clean).  Use this frontier
    for ``stuck_at`` scenarios; the source-level
    :func:`observable_frontier` remains right for mutations.

    ``session`` is anything exposing ``mapped_net`` and ``design`` — a
    :class:`~repro.core.debug.DebugSession` or a
    :class:`~repro.engine.LaneEngine`.
    """
    mapped = session.mapped_net
    design = session.design
    tap_names = {
        design.network.node_name(t) for t in design.taps
    }

    def frontier(name: str) -> list[str]:
        nid = mapped.find(name)
        if nid is None:
            return []
        return _frontier_walk(
            mapped,
            lambda p: mapped.node_name(p) in tap_names
            and mapped.node_name(p) != name,
            nid,
        )

    return frontier


def untapped_region(
    net: LogicNetwork, tapped: set[int], suspect: str
) -> frozenset[str]:
    """The suspect plus its un-tapped fan-in cone (the bug region)."""
    region: set[str] = set()
    stack = [net.require(suspect)]
    while stack:
        nid = stack.pop()
        name = net.node_name(nid)
        if name in region:
            continue
        region.add(name)
        for p in net.fanins(nid):
            if p not in tapped:
                stack.append(p)
    return frozenset(region)


def divergence_walk(
    design,
    golden_traces: dict[str, np.ndarray],
    failing_po: str,
    n_cycles: int,
    *,
    max_turns: int = 48,
    frontier_fn=None,
):
    """The frontier walk as a generator: yield observations, receive waves.

    Each ``yield`` hands back one collision-free batch of tapped signals
    to observe — exactly one debugging turn.  The driver observes the
    batch, replays the stimulus from reset, and ``send``\\ s the captured
    waveforms (``{signal: uint8 array}``) back in; the generator's return
    value (via ``StopIteration``) is the :class:`Localization`.

    Decoupling the walk's *decisions* from its *execution* is what lets
    one code path serve both drivers: :func:`localize_divergence` runs a
    single session turn per yield, while the lane-parallel batch runner
    (:func:`repro.campaign.runner.run_scenario_batch`) advances up to 64
    of these generators against one packed emulation — every still-active
    lane gets one turn per emulation replay, and lanes retire as their
    generators converge.  Because both drivers execute the identical
    decision sequence, lane-batched campaigns produce byte-identical
    outcomes to serial ones.
    """
    net = design.network
    tapped = set(design.taps)
    if frontier_fn is None:
        frontier_fn = lambda name: observable_frontier(  # noqa: E731
            net, tapped, net.require(name)
        )

    turns = 0
    checked = 0
    scored: dict[str, bool] = {}
    # Walk-level verdict memo: frontiers of successive suspects overlap
    # through shared fan-in, and re-observing an already-judged signal
    # would burn debugging turns from the budget for no information.
    budget_hit = False

    def diverges(signals: list[str]):
        """Observe signals (in collision-free batches) vs the golden model."""
        nonlocal turns, checked, budget_hit
        out: dict[str, bool] = {s: scored[s] for s in signals if s in scored}
        remaining = [
            s
            for s in signals
            if s not in scored
            and net.find(s) is not None
            and net.find(s) in tapped
        ]
        while remaining:
            if turns >= max_turns:
                # unscored signals stay unscored — flag it so the walk
                # reports exhaustion instead of a false convergence
                budget_hit = True
                break
            batch: list[str] = []
            used: set[int] = set()
            rest: list[str] = []
            for s in remaining:
                g = design.group_of(net.require(s))
                if g.index in used:
                    rest.append(s)
                else:
                    used.add(g.index)
                    batch.append(s)
            turns += 1
            waves = yield batch
            for s in batch:
                checked += 1
                exp = golden_traces.get(s)
                got = waves.get(s)
                if exp is None or got is None:
                    verdict = False
                else:
                    # the trace buffer keeps the LAST `depth` of the
                    # n_cycles run — align the golden slice to that window
                    ref = exp[:n_cycles]
                    ref = ref[max(0, len(ref) - len(got)) :]
                    verdict = not np.array_equal(got[: len(ref)], ref)
                out[s] = scored[s] = verdict
            remaining = rest
        return out

    suspect = failing_po
    visited: set[str] = set()
    exhausted = False
    while True:
        if turns >= max_turns:
            exhausted = True
            break
        visited.add(suspect)
        frontier = [s for s in frontier_fn(suspect) if s not in visited]
        verdicts = yield from diverges(frontier)
        bad = [s for s in frontier if verdicts.get(s)]
        if not bad:
            if budget_hit:
                exhausted = True
            break
        suspect = bad[0]

    return Localization(
        suspect=suspect,
        region=untapped_region(net, tapped, suspect),
        turns=turns,
        signals_checked=checked,
        exhausted=exhausted,
    )


def localize_divergence(
    session: DebugSession,
    golden_traces: dict[str, np.ndarray],
    failing_po: str,
    stim: list[dict[str, int]],
    *,
    max_turns: int = 48,
    frontier_fn=None,
) -> Localization:
    """Walk the divergence from ``failing_po`` back to its root cause.

    A driver over :func:`divergence_walk`: every batch the walk yields
    costs one observe + replay turn on ``session``.

    Parameters
    ----------
    session:
        An online debug session on the design under test; any active
        :meth:`~repro.core.debug.DebugSession.force` faults stay in effect,
        so emulation-level bug scenarios localize with the same machinery
        as netlist-level ones.
    golden_traces:
        Reference waveforms for (at least) every tapped signal the walk may
        touch — see :func:`golden_signal_traces`.
    failing_po:
        Name of the primary output where the failure was first seen.
    stim:
        Per-cycle stimulus up to and including the failure cycle.
    max_turns:
        Budget of debugging turns; the walk reports ``exhausted=True``
        instead of looping when a pathological design exceeds it.
    frontier_fn:
        ``name -> [frontier signal names]`` override; defaults to the
        source-level :func:`observable_frontier`.  Pass
        :func:`mapped_frontier_fn` for emulation-level faults.
    """
    n_cycles = len(stim)
    walk = divergence_walk(
        session.design,
        golden_traces,
        failing_po,
        n_cycles,
        max_turns=max_turns,
        frontier_fn=frontier_fn,
    )
    waves = None
    while True:
        try:
            batch = walk.send(waves)
        except StopIteration as stop:
            return stop.value
        session.observe(batch)
        session.reset()
        session.run(n_cycles, stimulus=lambda c: stim[c])
        waves = session.waveforms()
