"""Content-keyed caching of offline-stage artifacts.

The paper's amortization argument (§IV-A) is that the expensive generic
stage runs *once per design* while every debugging turn pays only the
microsecond-scale online specialization.  :class:`OfflineCache` lifts that
from "once per process" to "once per design content": artifacts are keyed
by :func:`repro.core.flow.offline_cache_key` (a SHA-256 over the canonical
BLIF, the flow configuration and the flow version), held in memory and
optionally persisted to a directory, so repeated campaigns — or several
scenarios targeting the same design inside one campaign — never re-run
synthesis, mapping or place-and-route.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.flow import (
    DebugFlowConfig,
    OfflineStage,
    offline_cache_key,
    run_generic_stage,
)
from repro.netlist.network import LogicNetwork

__all__ = ["CacheStats", "OfflineCache"]

Builder = Callable[[LogicNetwork, DebugFlowConfig], OfflineStage]


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`OfflineCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    """Subset of ``hits`` served by unpickling a persisted artifact."""
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class OfflineCache:
    """Two-level (memory, disk) cache of :class:`OfflineStage` artifacts.

    Parameters
    ----------
    cache_dir:
        Optional directory for persistence across processes and campaign
        invocations; created on demand.  ``None`` keeps the cache purely
        in-memory.
    keep_in_memory:
        Whether disk-loaded and freshly built artifacts are retained in the
        in-process map (the default; disable to bound memory on very large
        campaigns while still deduplicating via disk).

    Entries never expire: a key embeds the full design content, the flow
    configuration and :data:`~repro.core.flow.FLOW_CACHE_VERSION`, so a
    stale entry is unreachable rather than wrong.
    """

    cache_dir: str | None = None
    keep_in_memory: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: dict[str, OfflineStage] = field(default_factory=dict)

    def key(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        extra: tuple = (),
    ) -> str:
        """The content key for ``(net, config, extra)``."""
        return offline_cache_key(net, config, extra=extra)

    def get(self, key: str) -> OfflineStage | None:
        """Look up an artifact by key; ``None`` on miss (stats updated)."""
        stage = self._memory.get(key)
        if stage is not None:
            self.stats.hits += 1
            return stage
        stage = self._load_from_disk(key)
        if stage is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            if self.keep_in_memory:
                self._memory[key] = stage
            return stage
        self.stats.misses += 1
        return None

    def put(self, key: str, stage: OfflineStage) -> OfflineStage:
        """Store ``stage`` under ``key`` (memory and, if configured, disk)."""
        stage = replace(stage, cache_key=key)
        if self.keep_in_memory:
            self._memory[key] = stage
        if self.cache_dir is not None:
            self._store_to_disk(key, stage)
        self.stats.stores += 1
        return stage

    def get_or_run(
        self,
        net: LogicNetwork,
        config: DebugFlowConfig | None = None,
        *,
        extra: tuple = (),
        builder: Builder | None = None,
    ) -> tuple[OfflineStage, bool]:
        """Return the cached artifact for ``net``, building it on a miss.

        ``builder`` defaults to :func:`~repro.core.flow.run_generic_stage`;
        the campaign orchestrator passes a builder that additionally runs
        the physical back-end (with a matching ``extra`` discriminator).
        Returns ``(artifact, was_hit)``.
        """
        config = config or DebugFlowConfig()
        key = self.key(net, config, extra=extra)
        stage = self.get(key)
        if stage is not None:
            return stage, True
        stage = (builder or run_generic_stage)(net, config)
        return self.put(key, stage), False

    def as_offline_fn(self) -> Builder:
        """Adapter for :func:`repro.analysis.experiments.run_benchmark_columns`.

        Lets the experiment drivers share this cache's artifacts instead of
        re-running the generic stage per process.
        """

        def fn(net: LogicNetwork, config: DebugFlowConfig) -> OfflineStage:
            return self.get_or_run(net, config)[0]

        return fn

    def clear(self) -> None:
        """Drop in-memory entries (persisted files are left untouched)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk layer ------------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _load_from_disk(self, key: str) -> OfflineStage | None:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                stage = pickle.load(fh)
        except Exception:
            # best-effort load: a corrupt, truncated or stale pickle (e.g.
            # referencing a renamed module) degrades to a miss and rebuild
            return None
        return stage if isinstance(stage, OfflineStage) else None

    def _store_to_disk(self, key: str, stage: OfflineStage) -> None:
        assert self.cache_dir is not None
        # best-effort: persistence is an optimization, so any failure
        # (disk full, unpicklable member, ...) degrades to memory-only
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            # atomic publish: concurrent campaigns over one directory see
            # either nothing (and rebuild) or a complete artifact, never a
            # torn file
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(stage, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
